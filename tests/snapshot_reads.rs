//! End-to-end checks for TL2-style snapshot reads (DESIGN.md §4.10):
//! the O(1) `version <= read_ver` acceptance, timestamp extension in
//! place of aborts, the read-only no-validation commit, and the
//! bounded-wait fallback on in-flight writers. The headline property —
//! read-only transactions are abort-free under writer churn with
//! `snapshot_reads` on, and demonstrably not with it off — is what the
//! E5c experiment measures at scale.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use omt::heap::{ClassDesc, Heap, ObjRef, Word};
use omt::stm::{Stm, StmConfig, TxError};
use omt::util::rng::StdRng;

const COLD_CELLS: usize = 24;

fn snapshot_config() -> StmConfig {
    StmConfig {
        snapshot_reads: true,
        // The zero-abort guarantee needs foreign owners waited out, not
        // fallen back from: give the bounded wait real headroom.
        doom_wait_spins: 1 << 20,
        ..StmConfig::default()
    }
}

/// One hot cell (index 0) plus `COLD_CELLS` cold cells, pre-filled
/// outside the STM so the clock starts at zero.
fn setup(config: StmConfig) -> (Arc<Heap>, Arc<Stm>, Vec<ObjRef>) {
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
    let stm = Arc::new(Stm::with_config(heap.clone(), config));
    let cells: Vec<_> = (0..1 + COLD_CELLS).map(|_| heap.alloc(class).unwrap()).collect();
    for (i, c) in cells.iter().enumerate() {
        heap.store(*c, 0, Word::from_scalar(i as i64));
    }
    (heap, stm, cells)
}

fn churn_hot(stm: &Stm, hot: ObjRef) {
    stm.atomically(|tx| {
        let v = tx.read(hot, 0)?.as_scalar().unwrap();
        tx.write(hot, 0, Word::from_scalar(v + 1))
    });
}

/// The deterministic teeth of the feature: a read-only transaction
/// whose read set straddles a foreign commit — hot cell read *before*
/// the commit, cold cells read *after*. Without snapshot reads the
/// commit-time scan finds the hot entry stale and aborts; with them,
/// every cold read is covered by `read_ver` and the sandwich-verified
/// read-only commit skips validation entirely.
fn straddling_reader(config: StmConfig) -> Result<(), TxError> {
    let (_heap, stm, cells) = setup(config);
    let hot = cells[0];

    let mut tx = stm.begin();
    tx.read(hot, 0)?;
    churn_hot(&stm, hot);
    for &cold in &cells[1..] {
        tx.read(cold, 0)?;
    }
    tx.commit()
}

#[test]
fn straddling_readonly_commit_aborts_without_snapshot_reads() {
    assert_eq!(straddling_reader(StmConfig::default()), Err(TxError::INVALID));
}

#[test]
fn straddling_readonly_commit_succeeds_with_snapshot_reads() {
    assert_eq!(straddling_reader(snapshot_config()), Ok(()));
}

#[test]
fn too_new_version_extends_instead_of_aborting() {
    let (_heap, stm, cells) = setup(snapshot_config());
    let hot = cells[0];

    // Begin first, so `read_ver` predates the commit below.
    let mut tx = stm.begin();
    stm.atomically(|t| t.write(hot, 0, Word::from_scalar(7)));

    // The hot cell's timestamp is now ahead of read_ver: the read must
    // extend (revalidate the — empty — read set and advance read_ver)
    // and return the *committed* value, not abort.
    let v = tx.read(hot, 0).expect("extension must succeed on an empty read set");
    assert_eq!(v.as_scalar().unwrap(), 7);
    let counters = tx.counters();
    assert_eq!(counters.ts_extensions, 1, "exactly one extension");
    assert_eq!(counters.extension_failures, 0);
    assert_eq!(counters.snapshot_read_hits, 1, "the retry after extending is a hit");

    // Cold cells are still covered by the extended read_ver.
    for &cold in &cells[1..] {
        tx.read(cold, 0).unwrap();
    }
    assert_eq!(tx.commit(), Ok(()));

    let stats = stm.stats();
    assert_eq!(stats.ts_extensions, 1);
    assert_eq!(stats.readonly_aborts, 0);
    assert_eq!(stats.readonly_commits, 1, "the writer is not read-only; the reader is");
}

#[test]
fn genuinely_conflicting_extension_aborts() {
    let (_heap, stm, cells) = setup(snapshot_config());
    let (x, y) = (cells[0], cells[1]);

    let mut tx = stm.begin();
    tx.read(x, 0).unwrap();
    // A foreign commit moves *both* cells the reader cares about.
    stm.atomically(|t| {
        t.write(x, 0, Word::from_scalar(100))?;
        t.write(y, 0, Word::from_scalar(100))
    });
    // Reading y finds it too new; the extension's revalidation catches
    // the stale x entry — this conflict is genuine and must abort.
    let err = tx.read(y, 0).expect_err("extension must fail: x moved after being read");
    assert_eq!(err, TxError::INVALID);
    let counters = tx.counters();
    assert_eq!(counters.ts_extensions, 0);
    assert_eq!(counters.extension_failures, 1);
    tx.abort();
    assert_eq!(stm.stats().extension_failures, 1);
}

/// Satellite property test: under a seeded writer-churn storm, readers
/// that touch the hot cell first and cold cells afterwards — and whose
/// lifetime provably straddles at least one churn commit — never abort
/// with snapshot reads on, and *always* abort with them off (the hot
/// entry is stale by commit time in every round).
fn churn_storm(config: StmConfig, seed: u64) -> (u64, u64) {
    const READERS: usize = 4;
    const ROUNDS: usize = 50;

    let (_heap, stm, cells) = setup(config);
    let hot = cells[0];
    let done = Arc::new(AtomicBool::new(false));
    let churns = Arc::new(AtomicU64::new(0));

    thread::scope(|s| {
        s.spawn(|| {
            while !done.load(Ordering::Acquire) {
                churn_hot(&stm, hot);
                churns.fetch_add(1, Ordering::Release);
            }
        });
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let stm = &stm;
                let cells = &cells;
                let churns = &churns;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed + r as u64);
                    for _ in 0..ROUNDS {
                        let mut tx = stm.begin();
                        let round = (|| {
                            tx.read(hot, 0)?;
                            let before = churns.load(Ordering::Acquire);
                            for _ in 0..rng.gen_range(4..COLD_CELLS) {
                                let cold = cells[rng.gen_range(1..cells.len())];
                                tx.read(cold, 0)?;
                            }
                            // Guarantee the straddle: at least one churn
                            // commit lands between our hot read and commit.
                            while churns.load(Ordering::Acquire) <= before {
                                std::hint::spin_loop();
                            }
                            Ok::<_, TxError>(())
                        })();
                        match round {
                            Ok(()) => {
                                let _ = tx.commit();
                            }
                            Err(_) => tx.abort(),
                        }
                    }
                })
            })
            .collect();
        for reader in readers {
            reader.join().unwrap();
        }
        // Only after every reader finished may the churner stop: each
        // round blocks on one more churn commit landing.
        done.store(true, Ordering::Release);
    });
    let stats = stm.stats();
    (stats.readonly_commits, stats.readonly_aborts)
}

#[test]
fn churn_storm_readonly_aborts_are_zero_with_snapshot_reads() {
    let (commits, aborts) = churn_storm(snapshot_config(), 0x5EED_0001);
    assert_eq!(aborts, 0, "snapshot reads must make read-only transactions abort-free");
    assert_eq!(commits, 4 * 50);
}

#[test]
fn churn_storm_readonly_aborts_are_nonzero_without_snapshot_reads() {
    let (commits, aborts) = churn_storm(StmConfig::default(), 0x5EED_0002);
    assert_eq!(aborts, 4 * 50, "every straddling round must fail validation");
    assert_eq!(commits, 0);
}

/// Satellite §4.7 audit companion: force the in-flight-writer window.
/// A writer parks mid-transaction owning the hot cell with a dirty
/// in-place store; the snapshot reader's bounded wait expires, it falls
/// back to optimistic logging of the `Owned` word, and its commit must
/// fail validation — the dirty value can be *returned* (direct-update
/// STM) but never *committed*.
#[test]
fn in_flight_writer_forces_fallback_and_fails_validation() {
    let (_heap, stm, cells) = setup(StmConfig {
        doom_wait_spins: 4, // expire the wait budget fast
        ..snapshot_config()
    });
    let hot = cells[0];
    let (to_reader, from_writer) = mpsc::channel();
    let (to_writer, from_reader) = mpsc::channel();

    thread::scope(|s| {
        let writer_stm = &stm;
        s.spawn(move || {
            let mut tx = writer_stm.begin();
            tx.open_for_update(hot).unwrap();
            tx.log_for_undo(hot, 0);
            tx.store_direct(hot, 0, Word::from_scalar(99)); // dirty, uncommitted
            to_reader.send(()).unwrap();
            from_reader.recv().unwrap();
            tx.abort();
        });

        from_writer.recv().unwrap();
        let mut tx = stm.begin();
        let observed = tx.read(hot, 0).expect("fallback read returns, possibly dirty");
        let counters = tx.counters();
        assert_eq!(counters.snapshot_read_hits, 0, "an owned word is never a snapshot hit");
        assert!(counters.cm_spins >= 4, "the bounded wait ran to its budget");
        let result = tx.commit();
        assert_eq!(
            result,
            Err(TxError::INVALID),
            "a read that observed a foreign owner cannot validate (saw {observed:?})"
        );
        to_writer.send(()).unwrap();
    });

    // After the writer's abort the dirty store is rolled back.
    assert_eq!(stm.atomically(|tx| tx.read(hot, 0)).as_scalar().unwrap(), 0);
    assert_eq!(stm.stats().snapshot_read_hits, 1, "only the post-abort audit read hits");
}
