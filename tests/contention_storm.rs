//! Livelock-freedom under a contention storm: every thread hammers the
//! same cell, and every thread must commit *all* of its increments
//! under every contention-management policy, with the serial-mode
//! fallback as the progress backstop.

use std::sync::Arc;

use omt::heap::Heap;
use omt::stm::failpoint::sites;
use omt::stm::{CmPolicy, FailAction, Stm, StmConfig, Trigger};
use omt::workloads::{run_contention_storm, CounterArray};

const THREADS: usize = 8;
const PER_THREAD: usize = 400;

fn storm(cm: CmPolicy, serial_after_aborts: Option<u32>) {
    let stm = Arc::new(Stm::with_config(
        Arc::new(Heap::new()),
        StmConfig { cm, serial_after_aborts, ..StmConfig::default() },
    ));
    let counters = CounterArray::new(stm, 1);
    let outcome = run_contention_storm(&counters, THREADS, PER_THREAD);
    assert_eq!(
        outcome.per_thread,
        vec![PER_THREAD as u64; THREADS],
        "{cm}: a thread failed to commit all of its increments"
    );
    assert_eq!(outcome.total(), (THREADS * PER_THREAD) as u64);
    assert_eq!(counters.total(), (THREADS * PER_THREAD) as i64);
}

#[test]
fn abort_self_with_serial_fallback_never_livelocks() {
    storm(CmPolicy::AbortSelf, Some(4));
}

#[test]
fn spin_policy_never_livelocks() {
    storm(CmPolicy::Spin { max_spins: 64 }, Some(8));
}

#[test]
fn oldest_wins_never_livelocks() {
    storm(CmPolicy::OldestWins, Some(8));
}

#[test]
fn karma_never_livelocks() {
    storm(CmPolicy::Karma, Some(8));
}

#[test]
fn storm_completes_even_without_the_fallback() {
    // Randomized backoff alone must also drain an 8-thread storm; the
    // fallback is a guarantee, not a crutch.
    storm(CmPolicy::default(), None);
}

/// Deterministic check that the fallback actually escalates: with every
/// commit forced to abort, `try_atomically` runs its first attempts in
/// shared mode and every attempt past the threshold in serial mode.
#[test]
fn serial_entries_count_attempts_past_the_threshold() {
    let stm = Stm::with_config(
        Arc::new(Heap::new()),
        StmConfig {
            cm: CmPolicy::AbortSelf,
            serial_after_aborts: Some(2),
            max_retries: 5,
            ..StmConfig::default()
        },
    );
    stm.failpoints().set(sites::COMMIT_BEFORE_VALIDATE, FailAction::Abort, Trigger::Always);
    let result = stm.try_atomically(|_tx| Ok(()));
    assert!(result.is_err(), "every attempt is forced to abort");
    // 6 attempts total; attempts 3..=6 run after 2+ consecutive aborts.
    assert_eq!(stm.stats().serial_entries, 4);
}
