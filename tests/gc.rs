//! GC/STM integration across crates: collections interleaved with
//! transactional workloads and VM execution.

use std::sync::Arc;

use omt::heap::{ClassDesc, Heap, RootSet, Word};
use omt::opt::{compile, OptLevel};
use omt::stm::Stm;
use omt::vm::{BackendKind, SyncBackend, Vm};
use omt::workloads::{ConcurrentSet, StmSortedList};

#[test]
fn churn_workload_with_periodic_collection_reclaims_removed_nodes() {
    let heap = Arc::new(Heap::new());
    let stm = Arc::new(Stm::new(heap.clone()));
    let list = StmSortedList::new(stm.clone());

    // Roots: only the list's sentinel. Everything else must be
    // discovered through the heap graph.
    let sentinel_root = {
        // The sentinel is the only object allocated before any insert.
        let mut roots = RootSet::new();
        heap.for_each_live(|r| roots.push(r));
        roots
    };

    let mut peak = 0;
    for round in 0..10 {
        for k in 0..200 {
            list.insert(k);
        }
        for k in 0..200 {
            if k % 2 == round % 2 {
                list.remove(k);
            }
        }
        peak = peak.max(heap.live_objects());
        let outcome = heap.collect(&sentinel_root, &[stm.gc_participant()]);
        assert_eq!(
            heap.live_objects(),
            list.len() + 1, // nodes + sentinel
            "round {round}: live objects must match list content ({outcome})"
        );
    }
    assert!(peak > heap.live_objects(), "collection reclaimed churn garbage");
    assert!(heap.stats().snapshot().reuses > 0, "swept slots are recycled");
}

#[test]
fn collection_between_vm_runs_keeps_program_data_alive() {
    const SRC: &str = "
        class Node { val key: int; var next: Node; }
        fn build(n: int) -> Node {
            let head: Node = null;
            let i = 0;
            while i < n { head = new Node(i, head); i = i + 1; }
            return head;
        }
        fn sum(h: Node) -> int {
            let t = 0;
            atomic {
                let p = h;
                while p != null { t = t + p.key; p = p.next; }
            }
            return t;
        }
    ";
    let (ir, _) = compile(SRC, OptLevel::O4).unwrap();
    let heap = Arc::new(Heap::new());
    let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
    let vm = Vm::new(Arc::new(ir), heap.clone(), backend.clone());

    let head = vm.run("build", &[Word::from_scalar(500)]).unwrap().unwrap();
    // Garbage: an unreachable second list.
    vm.run("build", &[Word::from_scalar(300)]).unwrap();

    let stm = backend.as_stm().unwrap();
    let outcome =
        heap.collect(&RootSet::from(vec![head.as_ref().unwrap()]), &[stm.gc_participant()]);
    assert_eq!(outcome.swept, 300);

    // The kept list is fully intact.
    let total = vm.run("sum", &[head]).unwrap().unwrap();
    assert_eq!(total.as_scalar(), Some((0..500).sum::<i64>()));
}

#[test]
fn aborted_transactions_leave_only_garbage_behind() {
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Blob", &["a", "b", "c"]));
    let stm = Stm::new(heap.clone());

    for _ in 0..50 {
        let mut tx = stm.begin();
        for _ in 0..10 {
            tx.alloc(class).unwrap();
        }
        tx.abort();
    }
    assert_eq!(heap.live_objects(), 500);
    let outcome = heap.collect(&RootSet::new(), &[stm.gc_participant()]);
    assert_eq!(outcome.swept, 500);
    assert_eq!(heap.live_objects(), 0);
}

#[test]
fn log_trimming_shrinks_long_transactions() {
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
    let stm = Stm::new(heap.clone());

    let keeper = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    // Read 1000 objects that immediately become garbage.
    for _ in 0..1000 {
        let o = heap.alloc(class).unwrap();
        tx.read(o, 0).unwrap();
    }
    tx.read(keeper, 0).unwrap();
    assert_eq!(tx.read_set_size(), 1001);
    let bytes_before = stm.registry().total_log_bytes();

    heap.collect(&RootSet::from(vec![keeper]), &[stm.gc_participant()]);
    assert_eq!(tx.read_set_size(), 1, "dead entries trimmed");
    assert!(stm.registry().total_log_bytes() < bytes_before);
    assert!(stm.stats().gc_trimmed_entries >= 1000);
    tx.commit().unwrap();
}
