//! End-to-end checks for the hot-path scalability work: sharded
//! statistics must aggregate to *exact* event totals under cross-thread
//! load (sharding trades contention for aggregation cost, never
//! accuracy), the `record_stats` gate must silence accounting without
//! changing results, and orphan recovery must keep working now that the
//! registry is lock-striped.

use std::sync::Arc;

use omt::heap::{ClassDesc, Heap, Word};
use omt::stm::failpoint::sites;
use omt::stm::{FailAction, Stm, StmConfig, Trigger};
use omt::workloads::{run_counter_throughput, CounterArray, CounterCells};

const THREADS: usize = 8;
const PER_THREAD: usize = 500;

#[test]
fn sharded_stats_aggregate_to_exact_event_totals() {
    // Threads record into different stat shards; the snapshot must sum
    // to precisely the number of events that happened — one commit per
    // increment plus one for the audit, no more, no fewer.
    let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
    let counters = CounterArray::new(stm.clone(), 64);
    run_counter_throughput(&counters, THREADS, PER_THREAD, 7);
    assert_eq!(CounterCells::total(&counters), (THREADS * PER_THREAD) as i64);

    let stats = stm.stats();
    let committed = (THREADS * PER_THREAD) as u64 + 1; // + the audit
    assert_eq!(stats.commits, committed, "commit count drifted under sharding");
    assert!(stats.begins >= stats.commits, "every commit began");
    assert_eq!(stats.begins, stats.commits + stats.aborts(), "outcomes partition begins");
    // Each committed increment updated one cell and the audit read 64;
    // aborted attempts may add more on top, never fewer.
    assert!(stats.open_update_ops >= (THREADS * PER_THREAD) as u64);
    assert!(stats.open_read_ops >= (THREADS * PER_THREAD + 64) as u64);
}

#[test]
fn disabled_stats_change_accounting_not_behaviour() {
    let stm = Arc::new(Stm::with_config(
        Arc::new(Heap::new()),
        StmConfig { record_stats: false, ..StmConfig::default() },
    ));
    let counters = CounterArray::new(stm.clone(), 16);
    run_counter_throughput(&counters, 4, PER_THREAD, 11);
    assert_eq!(CounterCells::total(&counters), (4 * PER_THREAD) as i64, "results must not change");
    let stats = stm.stats();
    assert_eq!(stats.begins, 0, "gated stats must record nothing");
    assert_eq!(stats.commits, 0);
    assert_eq!(stats.open_read_ops, 0);
}

#[test]
fn orphan_recovery_survives_the_striped_registry() {
    // Kill a transaction mid-flight while it owns an object, then let a
    // concurrent transaction collide with the corpse: recovery must
    // replay the undo log and release ownership, exactly as before the
    // registry was sharded.
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
    let cell = heap.alloc(class).expect("heap full");
    heap.store(cell, 0, Word::from_scalar(40));
    let stm = Stm::new(heap.clone());

    stm.failpoints().set(sites::COMMIT_BEFORE_RELEASE, FailAction::Kill, Trigger::Once);
    let mut doomed = stm.begin();
    let v = doomed.read(cell, 0).unwrap().as_scalar().unwrap();
    doomed.write(cell, 0, Word::from_scalar(v + 1)).unwrap();
    assert!(doomed.commit().is_err(), "kill failpoint fires at commit");

    // The orphan holds ownership of `cell`; this transaction must
    // recover it (roll the update back) and then succeed.
    stm.atomically(|tx| {
        let v = tx.read(cell, 0)?.as_scalar().unwrap();
        tx.write(cell, 0, Word::from_scalar(v + 2))
    });
    assert_eq!(heap.load(cell, 0).as_scalar(), Some(42), "undo replay then +2");
    let stats = stm.stats();
    assert_eq!(stats.txs_killed, 1);
    assert_eq!(stats.orphans_recovered, 1);
    assert_eq!(stm.registry().orphan_count(), 0, "no corpse left behind");
}

#[test]
fn transaction_reuse_keeps_many_sequential_transactions_exact() {
    // Thousands of back-to-back transactions on one thread exercise the
    // pooled-context fast path (reuse, O(1) filter clear) — results and
    // accounting must both stay exact.
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
    let cell = heap.alloc(class).expect("heap full");
    let stm = Stm::new(heap.clone());
    const ROUNDS: u64 = 5_000;
    for _ in 0..ROUNDS {
        stm.atomically(|tx| {
            let v = tx.read(cell, 0)?.as_scalar().unwrap_or(0);
            // Re-read and re-write the same field so the recycled
            // filter must suppress the duplicates of *this*
            // transaction only.
            let again = tx.read(cell, 0)?.as_scalar().unwrap_or(0);
            assert_eq!(v, again);
            tx.write(cell, 0, Word::from_scalar(v + 1))?;
            tx.write(cell, 0, Word::from_scalar(v + 1))
        });
    }
    assert_eq!(heap.load(cell, 0).as_scalar(), Some(ROUNDS as i64));
    let stats = stm.stats();
    assert_eq!(stats.commits, ROUNDS);
    assert_eq!(stats.read_entries, ROUNDS, "one read entry per transaction");
    assert_eq!(stats.read_filtered, ROUNDS, "duplicate read suppressed every round");
    assert_eq!(stats.undo_entries, ROUNDS, "one undo entry per transaction");
    assert_eq!(stats.undo_filtered, ROUNDS, "duplicate undo suppressed every round");
}
