//! Cross-crate integration: source → type check → lower → optimize →
//! execute, with semantic equivalence across optimization levels and
//! synchronization backends.

use std::sync::Arc;

use omt::heap::{Heap, Word};
use omt::ir::verify;
use omt::opt::{compile, OptLevel};
use omt::vm::{BackendKind, SyncBackend, Vm};

/// A program exercising most language features: classes with `val`
/// fields, nested calls inside transactions, loops, short-circuit
/// logic, allocation inside transactions, and recursion.
const KITCHEN_SINK: &str = "
    class Node { val key: int; var count: int; var next: Node; }
    class Summary { var total: int; var distinct: int; }

    fn find(head: Node, key: int) -> Node {
        let p = head;
        while p != null {
            if p.key == key { return p; }
            p = p.next;
        }
        return null;
    }

    fn record(head: Node, summary: Summary, key: int) -> Node {
        atomic {
            let hit = find(head, key);
            if hit != null {
                hit.count = hit.count + 1;
            } else {
                head.next = new Node(key, 1, head.next);
                summary.distinct = summary.distinct + 1;
            }
            summary.total = summary.total + 1;
        }
        return head;
    }

    fn digest(head: Node) -> int {
        let acc = 0;
        atomic {
            let p = head.next;
            while p != null {
                acc = acc + p.key * p.count;
                p = p.next;
            }
        }
        return acc;
    }

    fn gcd(a: int, b: int) -> int {
        if b == 0 { return a; }
        return gcd(b, a % b);
    }

    fn main(n: int) -> int {
        let head = new Node(0 - 1, 0, null); // sentinel
        let summary = new Summary();
        let i = 0;
        while i < n {
            record(head, summary, i % 7);
            i = i + 1;
        }
        return digest(head) * 1000 + summary.distinct * 10 + gcd(summary.total, n);
    }
";

fn expected(n: i64) -> i64 {
    // Mirror of the TxIL program in plain Rust.
    let mut counts = std::collections::HashMap::new();
    for i in 0..n {
        *counts.entry(i % 7).or_insert(0i64) += 1;
    }
    let digest: i64 = counts.iter().map(|(k, c)| k * c).sum();
    let distinct = counts.len() as i64;
    fn gcd(a: i64, b: i64) -> i64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    digest * 1000 + distinct * 10 + gcd(n, n)
}

#[test]
fn all_levels_and_backends_compute_the_same_answer() {
    let want = expected(100);
    for level in OptLevel::ALL {
        let (ir, _) = compile(KITCHEN_SINK, level).expect("compiles");
        verify(&ir).expect("valid IR at every level");
        let ir = Arc::new(ir);
        for kind in BackendKind::ALL {
            let heap = Arc::new(Heap::new());
            let backend = Arc::new(SyncBackend::new(kind, heap.clone()));
            let vm = Vm::new(ir.clone(), heap, backend);
            let got = vm
                .run("main", &[Word::from_scalar(100)])
                .unwrap_or_else(|e| panic!("{level}/{kind}: {e}"))
                .unwrap()
                .as_scalar()
                .unwrap();
            assert_eq!(got, want, "wrong answer at {level} under {kind}");
        }
    }
}

#[test]
fn static_and_dynamic_barrier_counts_shrink_together() {
    let mut static_totals = Vec::new();
    let mut dynamic_totals = Vec::new();
    for level in OptLevel::ALL {
        let (ir, report) = compile(KITCHEN_SINK, level).expect("compiles");
        let (r, u, n) = report.static_barriers;
        static_totals.push(r + u + n);

        let heap = Arc::new(Heap::new());
        let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
        let vm = Vm::new(Arc::new(ir), heap, backend);
        vm.run("main", &[Word::from_scalar(100)]).expect("runs");
        dynamic_totals.push(vm.counters().total_barriers());
    }
    for w in static_totals.windows(2) {
        assert!(w[1] <= w[0], "static barriers grew: {static_totals:?}");
    }
    for w in dynamic_totals.windows(2) {
        assert!(w[1] <= w[0], "dynamic barriers grew: {dynamic_totals:?}");
    }
    assert!(
        (dynamic_totals[4] as f64) < dynamic_totals[0] as f64 * 0.8,
        "O4 should remove a substantial fraction of dynamic barriers: {dynamic_totals:?}"
    );
}

#[test]
fn optimized_code_still_retries_correctly_under_contention() {
    const COUNTER: &str = "
        class Counter { var hits: int; }
        fn make() -> Counter { return new Counter(); }
        fn bump(c: Counter, n: int) -> int {
            let i = 0;
            while i < n { atomic { c.hits = c.hits + 1; } i = i + 1; }
            return c.hits;
        }
    ";
    for level in OptLevel::ALL {
        let (ir, _) = compile(COUNTER, level).expect("compiles");
        let ir = Arc::new(ir);
        let heap = Arc::new(Heap::new());
        let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
        let setup = Vm::new(ir.clone(), heap.clone(), backend.clone());
        let counter = setup.run("make", &[]).unwrap().unwrap();

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ir = ir.clone();
                let heap = heap.clone();
                let backend = backend.clone();
                scope.spawn(move || {
                    let vm = Vm::new(ir, heap, backend);
                    vm.run("bump", &[counter, Word::from_scalar(250)]).expect("no trap");
                });
            }
        });
        assert_eq!(
            heap.load(counter.as_ref().unwrap(), 0).as_scalar(),
            Some(1000),
            "lost updates at {level}"
        );
    }
}

#[test]
fn front_end_rejects_bad_programs_with_useful_messages() {
    let cases = [
        ("fn f() -> int { atomic { return 1; } }", "not allowed inside"),
        ("fn f() { x = 1; }", "unknown variable"),
        ("class A { val k: int; } fn f(a: A) { a.k = 2; }", "immutable field"),
        ("fn f() { g(1); }", "unknown function"),
    ];
    for (src, needle) in cases {
        let err = compile(src, OptLevel::O2).expect_err("must be rejected");
        assert!(err.to_string().contains(needle), "missing `{needle}` in: {err}");
    }
}
