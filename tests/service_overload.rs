//! Overload robustness of the transactional service, end to end: a
//! stalled transaction turns into a typed deadline error (not a hung
//! request), a contention storm is shed at the door without ever
//! breaking the conservation invariant, and a transaction killed
//! mid-flight — ownership records in place — leaves a service that
//! keeps serving and a ledger that still balances.

use std::time::Duration;

use omt::server::{run_open_loop, Request, Service, ServiceConfig, ServiceError, TrafficConfig};
use omt::stm::failpoint::sites;
use omt::stm::{FailAction, Trigger};

#[test]
fn stalled_transaction_surfaces_as_a_deadline_error_and_money_is_conserved() {
    let service = Service::new(ServiceConfig {
        accounts: 8,
        deadline: Duration::from_millis(5),
        admission: false,
        ..ServiceConfig::default()
    });
    // The stall widens every update attempt past the deadline; the
    // abort keeps the attempt from committing regardless, so the only
    // way out is the deadline path.
    service.stm().failpoints().set(
        sites::OPEN_UPDATE_AFTER_ACQUIRE,
        FailAction::Delay(2_000_000),
        Trigger::Always,
    );
    service.stm().failpoints().set(
        sites::COMMIT_BEFORE_VALIDATE,
        FailAction::Abort,
        Trigger::Always,
    );

    let mut session = service.session();
    let result = session.call(&Request::Transfer { from: 0, to: 1, amount: 10 });
    match result {
        Err(ServiceError::DeadlineExceeded { attempts }) => {
            assert!(attempts >= 1, "gave up without trying");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(service.stm().stats().deadlines_exceeded >= 1);

    // Every attempt rolled back: the ledger still balances and the
    // service still serves once the fault is cleared.
    service.stm().failpoints().reset();
    assert_eq!(service.audit_total(), service.expected_total());
    session.call(&Request::Transfer { from: 0, to: 1, amount: 10 }).expect("service recovered");
    assert_eq!(service.audit_total(), service.expected_total());
}

#[test]
fn contention_storm_is_shed_without_breaking_the_invariant() {
    // A single-slot admission gate under a multi-worker open loop
    // forces concurrent arrivals to shed; tiny ledger + zipf keeps the
    // admitted ones fighting over the same hot accounts.
    let service = Service::new(ServiceConfig {
        accounts: 8,
        deadline: Duration::from_millis(5),
        max_inflight: 1,
        ..ServiceConfig::default()
    });
    let outcome = run_open_loop(
        &service,
        &TrafficConfig {
            sessions: 128,
            workers: 4,
            arrival_rate: 40_000.0,
            duration: Duration::from_millis(200),
            zipf_exponent: 1.0,
            read_fraction: 0.2,
            audit_period: Some(Duration::from_millis(2)),
            seed: 7,
        },
    );

    assert!(outcome.shed > 0, "storm never tripped admission control");
    assert!(outcome.completed > 0, "shedding starved the service completely");
    assert_eq!(outcome.invariant_violations, 0, "an audit saw a broken ledger mid-storm");
    assert!(outcome.audits > 0, "auditor never ran");
    assert!(outcome.final_audit_ok, "ledger did not balance after the storm");
    assert_eq!(
        outcome.offered,
        outcome.completed + outcome.shed + outcome.deadline_misses + outcome.retry_exhausted,
        "a request went unaccounted for"
    );
}

#[test]
fn mid_transaction_kill_is_recovered_and_the_service_keeps_serving() {
    let service =
        Service::new(ServiceConfig { accounts: 8, admission: false, ..ServiceConfig::default() });
    // Kill exactly one transaction at the worst moment: right after it
    // acquired ownership, before it finished its updates.
    service.stm().failpoints().set(
        sites::OPEN_UPDATE_AFTER_ACQUIRE,
        FailAction::Kill,
        Trigger::Once,
    );

    let mut session = service.session();
    // The killed attempt's retry collides with the orphan's still-held
    // ownership, recovers it, and commits.
    session.call(&Request::Transfer { from: 0, to: 1, amount: 25 }).expect("retry commits");

    let stats = service.stm().stats();
    assert_eq!(stats.txs_killed, 1, "the kill failpoint never fired");
    assert!(stats.orphans_recovered >= 1, "nobody recovered the orphan");
    assert_eq!(service.stm().registry().orphan_count(), 0, "orphan still parked");

    // Life goes on: the service keeps serving and conservation holds.
    service.stm().failpoints().reset();
    for i in 0..32 {
        session
            .call(&Request::Transfer { from: i % 8, to: (i + 1) % 8, amount: 5 })
            .expect("post-recovery traffic");
    }
    assert_eq!(service.audit_total(), service.expected_total());
}
