//! Property-style tests: the STM against a sequential model, encodings
//! against round-trips, and the optimizer against an interpreter
//! oracle.
//!
//! Cases are generated from an explicitly seeded deterministic RNG
//! (`omt_util::rng::StdRng`) with bounded case counts, so every CI run
//! exercises exactly the same inputs. Each assertion carries the case
//! seed so a failure is reproducible by construction.

use std::collections::HashMap;
use std::sync::Arc;

use omt::heap::{ClassDesc, Heap, ObjRef, Word};
use omt::util::rng::StdRng;

/// Savepoint paired with the model state it captured.
type SavedState = (omt::stm::Savepoint, HashMap<(usize, usize), i64>);
use omt::opt::{compile, OptLevel};
use omt::stm::{Stm, StmConfig};
use omt::vm::{BackendKind, SyncBackend, Vm};

#[derive(Debug, Clone)]
enum TxOp {
    Read { obj: usize, field: usize },
    Write { obj: usize, field: usize, value: i64 },
    Savepoint,
    RollbackToLastSavepoint,
}

fn random_tx_op(rng: &mut StdRng) -> TxOp {
    match rng.gen_range(0..4u32) {
        0 => TxOp::Read { obj: rng.gen_range(0..8usize), field: rng.gen_range(0..2usize) },
        1 => TxOp::Write {
            obj: rng.gen_range(0..8usize),
            field: rng.gen_range(0..2usize),
            value: rng.gen_range(-1000..1000i64),
        },
        2 => TxOp::Savepoint,
        _ => TxOp::RollbackToLastSavepoint,
    }
}

/// A single-threaded transaction with savepoints and a final
/// commit-or-abort behaves exactly like a HashMap model.
#[test]
fn stm_matches_model() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x57A7_E000 + case);
        let ops: Vec<TxOp> = {
            let n = rng.gen_range(0..60usize);
            (0..n).map(|_| random_tx_op(&mut rng)).collect()
        };
        let commit = rng.gen_bool(0.5);
        let filter = rng.gen_bool(0.5);

        let heap = Arc::new(Heap::new());
        let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["a", "b"]));
        let stm = Stm::with_config(
            heap.clone(),
            StmConfig { runtime_filter: filter, ..StmConfig::default() },
        );
        let objs: Vec<ObjRef> = (0..8).map(|_| heap.alloc(class).unwrap()).collect();

        // Model: committed state and in-tx state with savepoint stack.
        let committed: HashMap<(usize, usize), i64> = HashMap::new();
        let mut current = committed.clone();
        let mut saves: Vec<SavedState> = Vec::new();

        let mut tx = stm.begin();
        for op in &ops {
            match op {
                TxOp::Read { obj, field } => {
                    let got = tx.read(objs[*obj], *field).unwrap().as_scalar().unwrap();
                    let want = current.get(&(*obj, *field)).copied().unwrap_or(0);
                    assert_eq!(got, want, "read mismatch (case {case})");
                }
                TxOp::Write { obj, field, value } => {
                    tx.write(objs[*obj], *field, Word::from_scalar(*value)).unwrap();
                    current.insert((*obj, *field), *value);
                }
                TxOp::Savepoint => {
                    saves.push((tx.savepoint(), current.clone()));
                }
                TxOp::RollbackToLastSavepoint => {
                    if let Some((sp, model)) = saves.pop() {
                        tx.rollback_to(sp);
                        current = model;
                    }
                }
            }
        }
        if commit {
            tx.commit().unwrap();
        } else {
            tx.abort();
            current = committed;
        }
        for (obj, r) in objs.iter().enumerate() {
            for field in 0..2 {
                let got = heap.load(*r, field).as_scalar().unwrap();
                let want = current.get(&(obj, field)).copied().unwrap_or(0);
                assert_eq!(got, want, "final state mismatch at ({obj}, {field}), case {case}");
            }
        }
    }
}

/// Word encodings round-trip for all scalars in range.
#[test]
fn word_scalars_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x1207D);
    let check = |v: i64| {
        assert_eq!(Word::from_scalar(v).as_scalar(), Some(v));
        assert_eq!(Word::from_bits(Word::from_scalar(v).to_bits()).as_scalar(), Some(v));
    };
    for boundary in [0, 1, -1, i64::MIN >> 1, i64::MAX >> 1] {
        check(boundary);
    }
    for _ in 0..512 {
        check(rng.gen_range((i64::MIN >> 1)..=(i64::MAX >> 1)));
    }
}

/// Sequences of set operations on the STM hash set match a model
/// `BTreeSet` (single-threaded linearizability baseline).
#[test]
fn hash_set_matches_btreeset() {
    use omt::workloads::{ConcurrentSet, StmHashSet};
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x5E7_5E7 + case);
        let set = StmHashSet::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 8);
        let mut model = std::collections::BTreeSet::new();
        let n = rng.gen_range(0..200usize);
        for _ in 0..n {
            let op = rng.gen_range(0..3u8);
            let key = rng.gen_range(0..64i64);
            match op {
                0 => assert_eq!(set.insert(key), model.insert(key), "insert {key}, case {case}"),
                1 => assert_eq!(set.remove(key), model.remove(&key), "remove {key}, case {case}"),
                _ => {
                    assert_eq!(
                        set.contains(key),
                        model.contains(&key),
                        "contains {key}, case {case}"
                    )
                }
            }
        }
        assert_eq!(set.len(), model.len(), "length mismatch, case {case}");
    }
}

/// Random (but structurally valid) TxIL programs: whatever the
/// optimizer does, O0 and O4 must compute the same result. Programs are
/// built from a template with random constants, operators, and loop
/// bounds to keep them well-typed by construction.
#[derive(Debug, Clone)]
struct ProgramShape {
    a: i64,
    b: i64,
    loops: u8,
    use_mul: bool,
    branch_on: u8,
}

fn random_shape(rng: &mut StdRng) -> ProgramShape {
    ProgramShape {
        a: rng.gen_range(-50..50i64),
        b: rng.gen_range(-50..50i64),
        loops: rng.gen_range(0..6u8),
        use_mul: rng.gen_bool(0.5),
        branch_on: rng.gen_range(0..3u8),
    }
}

fn render(shape: &ProgramShape) -> String {
    let op = if shape.use_mul { "*" } else { "+" };
    format!(
        "
        class Acc {{ var x: int; var y: int; }}
        fn main() -> int {{
            let acc = new Acc({a}, {b});
            let i = 0;
            atomic {{
                while i < {loops} {{
                    if acc.x % 3 == {branch} {{
                        acc.x = acc.x {op} 2;
                    }} else {{
                        acc.y = acc.y + acc.x;
                    }}
                    i = i + 1;
                }}
                acc.x = acc.x + acc.y;
            }}
            return acc.x * 1000 + acc.y;
        }}
        ",
        a = shape.a,
        b = shape.b,
        loops = shape.loops,
        branch = shape.branch_on,
        op = op,
    )
}

#[test]
fn optimizer_preserves_semantics() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x0971_3173 + case);
        let shape = random_shape(&mut rng);
        let src = render(&shape);
        let mut results = Vec::new();
        for level in [OptLevel::O0, OptLevel::O2, OptLevel::O4] {
            let (ir, _) = compile(&src, level).expect("valid by construction");
            let heap = Arc::new(Heap::new());
            let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
            let vm = Vm::new(Arc::new(ir), heap, backend);
            results.push(vm.run("main", &[]).unwrap().unwrap().as_scalar().unwrap());
        }
        assert_eq!(results[0], results[1], "O2 diverged (case {case}) on {src}");
        assert_eq!(results[0], results[2], "O4 diverged (case {case}) on {src}");
    }
}
