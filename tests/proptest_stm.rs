//! Property-based tests: the STM against a sequential model, encodings
//! against round-trips, and the optimizer against an interpreter
//! oracle.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use omt::heap::{ClassDesc, Heap, ObjRef, Word};

/// Savepoint paired with the model state it captured.
type SavedState = (omt::stm::Savepoint, HashMap<(usize, usize), i64>);
use omt::opt::{compile, OptLevel};
use omt::stm::{Stm, StmConfig};
use omt::vm::{BackendKind, SyncBackend, Vm};

#[derive(Debug, Clone)]
enum TxOp {
    Read { obj: usize, field: usize },
    Write { obj: usize, field: usize, value: i64 },
    Savepoint,
    RollbackToLastSavepoint,
}

fn tx_op() -> impl Strategy<Value = TxOp> {
    prop_oneof![
        (0..8usize, 0..2usize).prop_map(|(obj, field)| TxOp::Read { obj, field }),
        (0..8usize, 0..2usize, -1000i64..1000).prop_map(|(obj, field, value)| TxOp::Write {
            obj,
            field,
            value
        }),
        Just(TxOp::Savepoint),
        Just(TxOp::RollbackToLastSavepoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A single-threaded transaction with savepoints and a final
    /// commit-or-abort behaves exactly like a HashMap model.
    #[test]
    fn stm_matches_model(ops in proptest::collection::vec(tx_op(), 0..60), commit: bool, filter: bool) {
        let heap = Arc::new(Heap::new());
        let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["a", "b"]));
        let stm = Stm::with_config(
            heap.clone(),
            StmConfig { runtime_filter: filter, ..StmConfig::default() },
        );
        let objs: Vec<ObjRef> = (0..8).map(|_| heap.alloc(class).unwrap()).collect();

        // Model: committed state and in-tx state with savepoint stack.
        let committed: HashMap<(usize, usize), i64> = HashMap::new();
        let mut current = committed.clone();
        let mut saves: Vec<SavedState> = Vec::new();

        let mut tx = stm.begin();
        for op in &ops {
            match op {
                TxOp::Read { obj, field } => {
                    let got = tx.read(objs[*obj], *field).unwrap().as_scalar().unwrap();
                    let want = current.get(&(*obj, *field)).copied().unwrap_or(0);
                    prop_assert_eq!(got, want, "read mismatch");
                }
                TxOp::Write { obj, field, value } => {
                    tx.write(objs[*obj], *field, Word::from_scalar(*value)).unwrap();
                    current.insert((*obj, *field), *value);
                }
                TxOp::Savepoint => {
                    saves.push((tx.savepoint(), current.clone()));
                    // keep types simple: store savepoint alongside model
                }
                TxOp::RollbackToLastSavepoint => {
                    if let Some((sp, model)) = saves.pop() {
                        tx.rollback_to(sp);
                        current = model;
                    }
                }
            }
        }
        if commit {
            tx.commit().unwrap();
        } else {
            tx.abort();
            current = committed;
        }
        for (obj, r) in objs.iter().enumerate() {
            for field in 0..2 {
                let got = heap.load(*r, field).as_scalar().unwrap();
                let want = current.get(&(obj, field)).copied().unwrap_or(0);
                prop_assert_eq!(got, want, "final state mismatch at ({}, {})", obj, field);
            }
        }
    }

    /// Word encodings round-trip for all scalars in range.
    #[test]
    fn word_scalars_round_trip(v in (i64::MIN >> 1)..=(i64::MAX >> 1)) {
        prop_assert_eq!(Word::from_scalar(v).as_scalar(), Some(v));
        prop_assert_eq!(Word::from_bits(Word::from_scalar(v).to_bits()).as_scalar(), Some(v));
    }

    /// Sequences of set operations on the STM hash set match a model
    /// `BTreeSet` (single-threaded linearizability baseline).
    #[test]
    fn hash_set_matches_btreeset(ops in proptest::collection::vec((0..3u8, 0..64i64), 0..200)) {
        use omt::workloads::{ConcurrentSet, StmHashSet};
        let set = StmHashSet::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 8);
        let mut model = std::collections::BTreeSet::new();
        for (op, key) in ops {
            match op {
                0 => prop_assert_eq!(set.insert(key), model.insert(key)),
                1 => prop_assert_eq!(set.remove(key), model.remove(&key)),
                _ => prop_assert_eq!(set.contains(key), model.contains(&key)),
            }
        }
        prop_assert_eq!(set.len(), model.len());
    }
}

/// Random (but structurally valid) TxIL programs: whatever the
/// optimizer does, O0 and O4 must compute the same result. Programs are
/// built from a template with random constants, operators, and loop
/// bounds to keep them well-typed by construction.
#[derive(Debug, Clone)]
struct ProgramShape {
    a: i64,
    b: i64,
    loops: u8,
    use_mul: bool,
    branch_on: u8,
}

fn program_shape() -> impl Strategy<Value = ProgramShape> {
    (-50i64..50, -50i64..50, 0u8..6, any::<bool>(), 0u8..3).prop_map(
        |(a, b, loops, use_mul, branch_on)| ProgramShape { a, b, loops, use_mul, branch_on },
    )
}

fn render(shape: &ProgramShape) -> String {
    let op = if shape.use_mul { "*" } else { "+" };
    format!(
        "
        class Acc {{ var x: int; var y: int; }}
        fn main() -> int {{
            let acc = new Acc({a}, {b});
            let i = 0;
            atomic {{
                while i < {loops} {{
                    if acc.x % 3 == {branch} {{
                        acc.x = acc.x {op} 2;
                    }} else {{
                        acc.y = acc.y + acc.x;
                    }}
                    i = i + 1;
                }}
                acc.x = acc.x + acc.y;
            }}
            return acc.x * 1000 + acc.y;
        }}
        ",
        a = shape.a,
        b = shape.b,
        loops = shape.loops,
        branch = shape.branch_on,
        op = op,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimizer_preserves_semantics(shape in program_shape()) {
        let src = render(&shape);
        let mut results = Vec::new();
        for level in [OptLevel::O0, OptLevel::O2, OptLevel::O4] {
            let (ir, _) = compile(&src, level).expect("valid by construction");
            let heap = Arc::new(Heap::new());
            let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
            let vm = Vm::new(Arc::new(ir), heap, backend);
            results.push(vm.run("main", &[]).unwrap().unwrap().as_scalar().unwrap());
        }
        prop_assert_eq!(results[0], results[1], "O2 diverged on {}", src);
        prop_assert_eq!(results[0], results[2], "O4 diverged on {}", src);
    }
}
