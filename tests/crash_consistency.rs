//! Crash-consistency tests built on the deterministic failpoint layer:
//! transactions are killed *while holding ownership*, and the suite
//! checks that (a) the undo log restores the exact pre-kill state,
//! (b) concurrent transactions detect the dead owner, recover its
//! orphaned logs, and keep making progress, and (c) seeded
//! probabilistic fault injection reproduces exactly.

use std::sync::Arc;

use omt::heap::{ClassDesc, Heap, ObjRef, Word};
use omt::stm::failpoint::sites;
use omt::stm::{FailAction, Stm, Trigger};

fn cells(stm: &Stm, values: &[i64]) -> Vec<ObjRef> {
    let class = stm.heap().define_class(ClassDesc::with_var_fields("Cell", &["value"]));
    values
        .iter()
        .map(|&v| {
            let obj = stm.heap().alloc(class).expect("heap full");
            stm.heap().store(obj, 0, Word::from_scalar(v));
            obj
        })
        .collect()
}

fn scalar(heap: &Heap, obj: ObjRef) -> i64 {
    heap.load(obj, 0).as_scalar().expect("scalar field")
}

/// The headline crash test: a transaction doubles four cells in place,
/// then its thread "dies" at commit time — after updating the heap,
/// while still owning every cell. Recovery must restore the exact
/// pre-kill values (the sequential oracle in which the killed
/// transaction never ran), after which later increments apply cleanly.
#[test]
fn kill_at_commit_restores_exact_pre_state() {
    let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
    let initial = [10i64, 20, 30, 40];
    let objs = cells(&stm, &initial);

    let mut victim = stm.begin();
    for (&obj, &v) in objs.iter().zip(&initial) {
        victim.write(obj, 0, Word::from_scalar(v * 2)).unwrap();
    }
    // Direct-access STM: the doubled values are already in the heap.
    for (&obj, &v) in objs.iter().zip(&initial) {
        assert_eq!(scalar(stm.heap(), obj), v * 2, "updates must be in place before commit");
    }

    stm.failpoints().set(sites::COMMIT_BEFORE_VALIDATE, FailAction::Kill, Trigger::Once);
    assert!(victim.commit().is_err(), "killed transaction cannot commit");

    // The heap is torn and the dead transaction still owns the cells.
    assert_eq!(scalar(stm.heap(), objs[0]), 20, "torn state visible after the kill");

    // Any later transaction touching a cell recovers the orphan first.
    for &obj in &objs {
        stm.atomically(|tx| {
            tx.open_for_update(obj)?;
            let v = tx.read(obj, 0)?.as_scalar().unwrap();
            tx.write(obj, 0, Word::from_scalar(v + 1))
        });
    }

    // Sequential oracle: the killed transaction never happened, the
    // four increments did.
    for (&obj, &v) in objs.iter().zip(&initial) {
        assert_eq!(scalar(stm.heap(), obj), v + 1, "undo log must restore the pre-kill value");
    }
    let stats = stm.stats();
    assert_eq!(stats.txs_killed, 1);
    assert_eq!(stats.orphans_recovered, 1, "one orphan, recovered exactly once");
}

/// Kill a transaction right after `OpenForUpdate` acquired ownership —
/// before it logged or wrote anything — and check that concurrently
/// running threads clean up the dead owner and all complete their work.
#[test]
fn killed_owner_does_not_block_other_transactions() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 300;

    let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
    let obj = cells(&stm, &[0])[0];
    stm.failpoints().set(sites::OPEN_UPDATE_AFTER_ACQUIRE, FailAction::Kill, Trigger::Once);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let stm = stm.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    stm.atomically(|tx| {
                        let v = tx.read(obj, 0)?.as_scalar().unwrap();
                        tx.write(obj, 0, Word::from_scalar(v + 1))
                    });
                }
            });
        }
    });

    // The killed attempt was retried, so no increment is lost.
    assert_eq!(scalar(stm.heap(), obj), (THREADS * PER_THREAD) as i64);
    let stats = stm.stats();
    assert_eq!(stats.txs_killed, 1);
    assert_eq!(stats.orphans_recovered, 1);
}

/// Kill a transaction at the top of its own rollback: the orphan is
/// parked with its speculative updates still in the heap, and recovery
/// must undo them too.
#[test]
fn kill_during_rollback_is_still_recoverable() {
    let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
    let obj = cells(&stm, &[7])[0];

    let mut victim = stm.begin();
    victim.write(obj, 0, Word::from_scalar(99)).unwrap();
    stm.failpoints().set(sites::ABORT_BEFORE_UNDO, FailAction::Kill, Trigger::Once);
    victim.abort();
    assert_eq!(scalar(stm.heap(), obj), 99, "rollback was killed before the undo replay");

    stm.atomically(|tx| {
        tx.open_for_update(obj)?;
        let v = tx.read(obj, 0)?.as_scalar().unwrap();
        tx.write(obj, 0, Word::from_scalar(v + 1))
    });
    assert_eq!(scalar(stm.heap(), obj), 8, "recovery undoes the orphan's write");
    assert_eq!(stm.stats().orphans_recovered, 1);
}

/// `Delay` failpoints widen race windows but must never change
/// results.
#[test]
fn delays_do_not_change_semantics() {
    const THREADS: usize = 2;
    const PER_THREAD: usize = 200;

    let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
    let obj = cells(&stm, &[0])[0];
    stm.failpoints().set(sites::COMMIT_BEFORE_RELEASE, FailAction::Delay(400), Trigger::Always);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let stm = stm.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    stm.atomically(|tx| {
                        let v = tx.read(obj, 0)?.as_scalar().unwrap();
                        tx.write(obj, 0, Word::from_scalar(v + 1))
                    });
                }
            });
        }
    });
    assert_eq!(scalar(stm.heap(), obj), (THREADS * PER_THREAD) as i64);
    assert_eq!(stm.stats().txs_killed, 0);
}

/// A seeded probabilistic trigger must fire at the same operations on
/// every run: two identical single-threaded runs produce identical
/// abort and fire counts, and a different seed produces a different
/// (but internally consistent) schedule.
#[test]
fn seeded_fault_schedules_reproduce_exactly() {
    let run = |seed: u64| -> (u64, u64, i64) {
        let stm = Stm::new(Arc::new(Heap::new()));
        let obj = cells(&stm, &[0])[0];
        stm.failpoints().set(
            sites::COMMIT_BEFORE_VALIDATE,
            FailAction::Abort,
            Trigger::Prob { p: 0.25, seed },
        );
        for _ in 0..200 {
            stm.atomically(|tx| {
                let v = tx.read(obj, 0)?.as_scalar().unwrap();
                tx.write(obj, 0, Word::from_scalar(v + 1))
            });
        }
        let stats = stm.stats();
        (stats.failpoint_fires, stats.aborts_explicit, scalar(stm.heap(), obj))
    };

    let first = run(0xFEED);
    assert_eq!(first, run(0xFEED), "same seed, same fault schedule");
    assert_eq!(first.2, 200, "every increment eventually commits");
    assert!(first.0 > 0, "p=0.25 over 200+ commits must fire");
    let other = run(0xBEEF);
    assert_eq!(other.2, 200);
    assert_ne!(first.0, other.0, "different seeds should (here) fire differently");
}
