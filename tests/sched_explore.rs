//! Schedule-explorer sweep over the public STM API: oracles driven
//! through `omt-sched`'s bounded-preemption DFS (with sleep-set
//! pruning) and seeded random walks, plus the frozen schedules of the
//! cross-thread bugs this explorer found (see DESIGN.md §4.8).
//!
//! Scenario ground rules: contention management is `AbortSelf` (no
//! cooperative doom-wait spins) and retries are bounded, so every
//! virtual thread terminates under every schedule. Serial-mode
//! escalation is *allowed*: the gate's acquisitions go through
//! `block_until`, so an entrant waiting on the gate surfaces to the
//! scheduler as a blocked thread instead of wedging the baton — the
//! serial-gate and serial-storm oracles below run with
//! `serial_after_aborts: Some(_)`. Most scenarios still leave it `None`
//! because their oracles count aborts or commits exactly and escalation
//! would fold those counts into the gate's bookkeeping.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use omt_heap::{ClassDesc, Heap, ObjRef, Word};
use omt_sched::{Execution, Explorer, RunOutcome, SchedConfig, ThreadBody};
use omt_stm::failpoint::{sites, FailAction, Trigger};
use omt_stm::{ClockMode, CmPolicy, Stm, StmConfig, StmWord, TxError};
use omt_workloads::BoostedHashMap;

/// Baseline STM configuration (see module docs); the serial-mode
/// oracles override `serial_after_aborts`.
fn scenario_config() -> StmConfig {
    StmConfig {
        cm: CmPolicy::AbortSelf,
        serial_after_aborts: None,
        max_retries: 6,
        backoff_cap_log2: 1,
        ..StmConfig::default()
    }
}

fn explorer(max_schedules: usize, random_walks: usize) -> Explorer {
    Explorer::new(SchedConfig {
        preemption_bound: 2,
        max_schedules,
        random_walks,
        seed: 0x5EED,
        max_steps: 800,
        minimize: true,
        sleep_sets: true,
    })
}

fn new_cells(n: usize, init: &[i64]) -> (Arc<Heap>, Vec<ObjRef>) {
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["a", "b"]));
    let objs: Vec<ObjRef> = (0..n).map(|_| heap.alloc(class).unwrap()).collect();
    for (obj, v) in objs.iter().zip(init) {
        heap.store(*obj, 0, Word::from_scalar(*v));
    }
    (heap, objs)
}

fn scalar(heap: &Heap, obj: ObjRef, field: usize) -> i64 {
    heap.load(obj, field).as_scalar().expect("scalar field")
}

/// Coverage line per oracle (visible with `--nocapture`; the measured
/// numbers are quoted in EXPERIMENTS.md).
fn report_coverage(name: &str, report: &omt_sched::ExploreReport) {
    let frontier = report.dfs_schedules + report.sleep_pruned;
    let pruned_pct =
        if frontier == 0 { 0.0 } else { 100.0 * report.sleep_pruned as f64 / frontier as f64 };
    eprintln!(
        "{name}: {} schedules ({} dfs{}, {} random), {} step-limited, {} abandoned, \
         {} sleep-pruned ({pruned_pct:.0}% of the dfs frontier)",
        report.schedules_run,
        report.dfs_schedules,
        if report.exhausted { " — exhausted" } else { "" },
        report.random_schedules,
        report.step_limited,
        report.dfs_abandoned,
        report.sleep_pruned,
    );
}

/// All orderings of `items` (≤ 3! here, so brute force is fine).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (k, &head) in items.iter().enumerate() {
        let rest: Vec<usize> =
            items.iter().enumerate().filter(|&(j, _)| j != k).map(|(_, &x)| x).collect();
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Oracle 1: serializability of a 3-thread bank against the sequential
// reference — the committed transfers, applied in *some* order to the
// initial balances, must reproduce the final heap exactly.
// ---------------------------------------------------------------------

const BANK_INIT: [i64; 3] = [8, 4, 2];

/// Thread `i`'s transfer: move half of account `i` into account
/// `(i+1) % 3`. Integer division makes the transfers non-commutative,
/// so distinct commit orders give distinct final states.
fn bank_model_apply(balances: &mut [i64; 3], i: usize) {
    let amount = balances[i] / 2;
    balances[i] -= amount;
    balances[(i + 1) % 3] += amount;
}

fn bank_factory() -> Execution {
    let (heap, accts) = new_cells(3, &BANK_INIT);
    let stm = Arc::new(Stm::with_config(heap.clone(), scenario_config()));
    let committed = Arc::new(Mutex::new([false; 3]));

    let threads: Vec<ThreadBody> = (0..3)
        .map(|i| {
            let stm = stm.clone();
            let accts = accts.clone();
            let committed = committed.clone();
            Box::new(move || {
                let src = accts[i];
                let dst = accts[(i + 1) % 3];
                let result = stm.try_atomically(|tx| {
                    let s = tx.read(src, 0)?.as_scalar().unwrap();
                    let d = tx.read(dst, 0)?.as_scalar().unwrap();
                    let amount = s / 2;
                    tx.write(src, 0, Word::from_scalar(s - amount))?;
                    tx.write(dst, 0, Word::from_scalar(d + amount))?;
                    Ok(())
                });
                if result.is_ok() {
                    committed.lock().unwrap()[i] = true;
                }
            }) as ThreadBody
        })
        .collect();

    let check = Box::new(move || {
        let finals: Vec<i64> = accts.iter().map(|&a| scalar(&heap, a, 0)).collect();
        if finals.iter().sum::<i64>() != BANK_INIT.iter().sum::<i64>() {
            return Err(format!("money not conserved: {finals:?}"));
        }
        let done: Vec<usize> = (0..3).filter(|&i| committed.lock().unwrap()[i]).collect();
        let serializable = permutations(&done).iter().any(|order| {
            let mut model = BANK_INIT;
            for &i in order {
                bank_model_apply(&mut model, i);
            }
            model[..] == finals[..]
        });
        if serializable {
            Ok(())
        } else {
            Err(format!("no sequential order of committed transfers {done:?} yields {finals:?}"))
        }
    });
    Execution { threads, check }
}

#[test]
fn oracle_bank_serializability() {
    let report = explorer(4_000, 2_500).explore(&bank_factory);
    report_coverage("bank", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0, "scenario must be schedule-deterministic");
    assert!(report.schedules_run >= 2_500, "got {}", report.schedules_run);
}

// ---------------------------------------------------------------------
// Oracle 2: opacity / zombie containment — writers preserve x + y == C;
// a reader transaction may observe torn state mid-flight (this is a
// direct-update STM), but a *committed* read snapshot must be
// consistent.
// ---------------------------------------------------------------------

fn opacity_factory() -> Execution {
    const C: i64 = 10;
    let (heap, cells) = new_cells(2, &[C, 0]);
    let (x, y) = (cells[0], cells[1]);
    let stm = Arc::new(Stm::with_config(
        heap.clone(),
        StmConfig { validate_every: Some(1), ..scenario_config() },
    ));
    let snapshots = Arc::new(Mutex::new(Vec::<(i64, i64)>::new()));

    let mover = |from: ObjRef, to: ObjRef| {
        let stm = stm.clone();
        Box::new(move || {
            let _ = stm.try_atomically(|tx| {
                let f = tx.read(from, 0)?.as_scalar().unwrap();
                let t = tx.read(to, 0)?.as_scalar().unwrap();
                tx.write(from, 0, Word::from_scalar(f - 1))?;
                tx.write(to, 0, Word::from_scalar(t + 1))?;
                Ok(())
            });
        }) as ThreadBody
    };
    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let snapshots = snapshots.clone();
        move || {
            let mut tx = stm.begin();
            let pair = (|| -> Result<(i64, i64), TxError> {
                let a = tx.read(x, 0)?.as_scalar().unwrap();
                let b = tx.read(y, 0)?.as_scalar().unwrap();
                Ok((a, b))
            })();
            match pair {
                Ok(pair) => {
                    if tx.commit().is_ok() {
                        snapshots.lock().unwrap().push(pair);
                    }
                }
                Err(_) => tx.abort(),
            }
        }
    });

    let threads: Vec<ThreadBody> = vec![reader, mover(x, y), mover(y, x)];
    let check = Box::new(move || {
        for &(a, b) in snapshots.lock().unwrap().iter() {
            if a + b != C {
                return Err(format!("zombie snapshot committed: {a} + {b} != {C}"));
            }
        }
        let (a, b) = (scalar(&heap, x, 0), scalar(&heap, y, 0));
        if a + b != C {
            return Err(format!("writers broke the invariant: {a} + {b} != {C}"));
        }
        Ok(())
    });
    Execution { threads, check }
}

#[test]
fn oracle_opacity_zombie_containment() {
    let report = explorer(3_000, 2_000).explore(&opacity_factory);
    report_coverage("opacity", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0);
    assert!(report.schedules_run >= 2_000, "got {}", report.schedules_run);
}

// ---------------------------------------------------------------------
// Oracle 3: a transaction killed by the Kill failpoint mid-commit
// (updates in place, ownership held) must be recovered to its exact
// pre-state, under every interleaving with a racing contender.
// ---------------------------------------------------------------------

fn kill_recovery_factory() -> Execution {
    let (heap, cells) = new_cells(1, &[7]);
    let obj = cells[0];
    heap.store(obj, 1, Word::from_scalar(5));
    let stm = Arc::new(Stm::with_config(heap.clone(), scenario_config()));
    // Failpoints are global, so whichever transaction reaches its
    // commit's release phase first dies there — after validation, with
    // its in-place stores maximally visible. The oracle is symmetric:
    // either writer may be the victim.
    stm.failpoints().set(sites::COMMIT_BEFORE_RELEASE, FailAction::Kill, Trigger::Once);
    let committed = Arc::new(Mutex::new([false; 2]));

    // Writer `i` updates field `i` of the shared object (same object,
    // so they contend on ownership) and retries until it either commits
    // or is killed. Both loops terminate: the Kill fires exactly once,
    // and the survivor recovers the orphan and goes through.
    let threads: Vec<ThreadBody> = [99, 6]
        .into_iter()
        .enumerate()
        .map(|(i, value)| {
            let stm = stm.clone();
            let committed = committed.clone();
            Box::new(move || loop {
                let mut tx = stm.begin();
                match tx.read(obj, i).and_then(|_| tx.write(obj, i, Word::from_scalar(value))) {
                    Ok(()) => match tx.commit() {
                        Ok(()) => {
                            committed.lock().unwrap()[i] = true;
                            break;
                        }
                        // Simulated thread death while holding
                        // ownership: this thread is gone, it must not
                        // retry.
                        Err(TxError::DOOMED) => break,
                        Err(_) => continue,
                    },
                    Err(_) => tx.abort(),
                }
            }) as ThreadBody
        })
        .collect();

    let check = Box::new(move || {
        // The check runs on the harness thread (no hook installed).
        // Optimistic reads never recover orphans, so acquire the object
        // for update — that path recovers if nobody else did — then
        // abort cleanly (no stores, so values and version are kept).
        let mut cleanup = stm.begin();
        cleanup.open_for_update(obj).expect("cleanup acquisition");
        cleanup.abort();
        let s = stm.stats();
        if s.txs_killed != 1 {
            return Err(format!("expected exactly one kill, saw {}", s.txs_killed));
        }
        if s.orphans_recovered != 1 {
            return Err(format!("expected exactly one recovery, saw {}", s.orphans_recovered));
        }
        if stm.registry().orphan_count() != 0 {
            return Err("orphan left unrecovered".into());
        }
        let done = *committed.lock().unwrap();
        if done[0] && done[1] {
            return Err("both writers committed, yet one must have been killed".into());
        }
        let expected = [if done[0] { 99 } else { 7 }, if done[1] { 6 } else { 5 }];
        let finals = [scalar(&heap, obj, 0), scalar(&heap, obj, 1)];
        if finals != expected {
            return Err(format!(
                "state {finals:?} != {expected:?} for committed set {done:?} \
                 (killed writer's effects must be rolled back exactly)"
            ));
        }
        if StmWord::decode(heap.header_atomic(obj).load(Ordering::SeqCst)).is_owned() {
            return Err("header still owned at quiescence".into());
        }
        Ok(())
    });
    Execution { threads, check }
}

#[test]
fn oracle_kill_recovery_restores_pre_state() {
    let report = explorer(2_500, 1_500).explore(&kill_recovery_factory);
    report_coverage("kill-recovery", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0);
    assert!(report.schedules_run >= 1_500, "got {}", report.schedules_run);
}

// ---------------------------------------------------------------------
// Oracle 4: two-clock bookkeeping — at quiescence the acquisition
// clock equals the number of successful acquisitions and the
// commit-sequence clock equals the number of update-publishing commits,
// under every interleaving.
// ---------------------------------------------------------------------

fn quiescence_factory() -> Execution {
    quiescence_factory_with(ClockMode::Global)
}

/// The quiescence oracle generalized over the clock organizations of
/// DESIGN.md §4.11. Each mode gets the strongest invariant it
/// guarantees:
///
/// - every mode: the acquisition clock (global word or striped sum)
///   equals the number of successful acquisitions, exactly;
/// - `Global` / `Striped`: the commit clock equals the number of
///   update-publishing commits, exactly;
/// - `PassOnFail`: the commit word advances once per *successful* CAS,
///   so clock + adopted failures equals the publish count, and no mode
///   but this one may report CAS failures at all;
/// - `Deferred`: stamps are claimed off-clock and nothing in this
///   (snapshot-off) scenario raises the global word, so it stays at
///   zero while the striped acquisition sum still proves quiescence.
fn quiescence_factory_with(mode: ClockMode) -> Execution {
    let (heap, cells) = new_cells(2, &[0, 0]);
    let stm = Arc::new(Stm::with_config(
        heap.clone(),
        StmConfig { clock_mode: mode, ..scenario_config() },
    ));
    let commits = Arc::new(AtomicUsize::new(0));

    let writer = |obj: ObjRef| {
        let stm = stm.clone();
        let commits = commits.clone();
        Box::new(move || {
            let result = stm.try_atomically(|tx| {
                let v = tx.read(obj, 0)?.as_scalar().unwrap();
                tx.write(obj, 0, Word::from_scalar(v + 1))
            });
            if result.is_ok() {
                commits.fetch_add(1, Ordering::SeqCst);
            }
        }) as ThreadBody
    };
    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let cells = cells.clone();
        move || {
            let mut tx = stm.begin();
            let ok = tx.read(cells[0], 0).is_ok() && tx.read(cells[1], 0).is_ok();
            if ok {
                let _ = tx.commit();
            } else {
                tx.abort();
            }
        }
    });

    let threads: Vec<ThreadBody> = vec![reader, writer(cells[0]), writer(cells[1])];
    let check = Box::new(move || {
        let s = stm.stats();
        if stm.acquire_clock() != s.acquires {
            return Err(format!(
                "acquisition clock {} != successful acquisitions {}",
                stm.acquire_clock(),
                s.acquires
            ));
        }
        let published = commits.load(Ordering::SeqCst) as u64;
        match mode {
            ClockMode::Global | ClockMode::Striped => {
                if stm.commit_clock() != published {
                    return Err(format!(
                        "commit clock {} != update-publishing commits {published}",
                        stm.commit_clock()
                    ));
                }
            }
            ClockMode::PassOnFail => {
                if stm.commit_clock() + s.clock_cas_failures != published {
                    return Err(format!(
                        "commit clock {} + adopted failures {} != publishes {published}",
                        stm.commit_clock(),
                        s.clock_cas_failures
                    ));
                }
            }
            ClockMode::Deferred => {
                if stm.commit_clock() != 0 {
                    return Err(format!(
                        "nothing raises the deferred commit word here, yet it reads {}",
                        stm.commit_clock()
                    ));
                }
            }
        }
        if mode != ClockMode::PassOnFail && s.clock_cas_failures != 0 {
            return Err(format!(
                "mode {mode} must never CAS-contend the commit word, \
                 saw {} failures",
                s.clock_cas_failures
            ));
        }
        if s.validation_fast_path > s.validations {
            return Err("more fast paths than validations".into());
        }
        Ok(())
    });
    Execution { threads, check }
}

#[test]
fn oracle_two_clock_quiescence() {
    let report = explorer(2_500, 1_500).explore(&quiescence_factory);
    report_coverage("quiescence", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0);
    assert!(report.schedules_run >= 1_500, "got {}", report.schedules_run);
}

#[test]
fn oracle_decentralized_clock_quiescence() {
    // The same oracle under each decentralized mode (Global is the
    // sweep above): the per-mode invariants in
    // `quiescence_factory_with` must hold on every schedule.
    for mode in [ClockMode::PassOnFail, ClockMode::Striped, ClockMode::Deferred] {
        let factory = move || quiescence_factory_with(mode);
        let report = explorer(1_500, 1_000).explore(&factory);
        report_coverage(&format!("quiescence[{mode}]"), &report);
        assert!(report.passed(), "[{mode}] {}", report.counterexample.unwrap());
        assert_eq!(report.divergences, 0, "[{mode}]");
    }
}

// ---------------------------------------------------------------------
// Frozen regression schedules: the minimized counterexamples the
// explorer produced for the two cross-thread bugs this repository has
// fixed, replayed against the fixed tree. The step-by-step traces are
// documented in DESIGN.md §4.8. (The failing form of each schedule is
// pinned in `crates/stm/src/tests.rs::sched_regressions`, where
// test-only knobs can revert each fix.)
// ---------------------------------------------------------------------

/// One reader racing one aborting writer (the scenario both frozen
/// schedules run against). No transaction ever commits an update, so a
/// reader that commits a non-zero value observed rolled-back state.
fn zombie_read_factory() -> Execution {
    zombie_read_factory_with(scenario_config())
}

fn zombie_read_factory_with(config: StmConfig) -> Execution {
    let (heap, cells) = new_cells(1, &[0]);
    let obj = cells[0];
    let stm = Arc::new(Stm::with_config(heap.clone(), config));
    let committed_read = Arc::new(Mutex::new(None::<i64>));

    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let out = committed_read.clone();
        move || {
            let mut tx = stm.begin();
            match tx.read(obj, 0) {
                Ok(word) => {
                    let v = word.as_scalar().unwrap();
                    if tx.commit().is_ok() {
                        *out.lock().unwrap() = Some(v);
                    }
                }
                Err(_) => tx.abort(),
            }
        }
    });
    let writer: ThreadBody = Box::new({
        let stm = stm.clone();
        move || {
            let mut tx = stm.begin();
            let _ = tx.write(obj, 0, Word::from_scalar(1));
            tx.abort();
        }
    });
    let check = Box::new(move || match *committed_read.lock().unwrap() {
        Some(v) if v != 0 => {
            Err(format!("zombie commit: reader committed {v} from an aborted writer"))
        }
        _ => Ok(()),
    });
    Execution { threads: vec![reader, writer], check }
}

/// PR 3's two-clock bug: the reader validates while the aborting writer
/// still owns the cell; with the acquisition-clock check reverted, the
/// (quiescent) commit clock alone lets the fast path skip the scan.
const TWO_CLOCK_FAST_PATH_SCHEDULE: &[usize] = &[0, 0, 1, 1, 1, 1, 0, 0];

/// This PR's abort-ABA bug: the reader's data load lands on the
/// writer's in-place store, and its validation scan lands after the
/// abort released the header — at the *original* version before the
/// fix, making the stale read entry validate.
const ABORT_VERSION_ABA_SCHEDULE: &[usize] = &[0, 0, 1, 1, 1, 1, 0, 0, 1, 1];

#[test]
fn frozen_two_clock_schedule_passes_on_the_fixed_tree() {
    let outcome =
        explorer(1, 0).replay(&zombie_read_factory, &TWO_CLOCK_FAST_PATH_SCHEDULE.to_vec());
    assert_eq!(outcome, RunOutcome::Pass);
}

#[test]
fn frozen_abort_aba_schedule_passes_on_the_fixed_tree() {
    let outcome = explorer(1, 0).replay(&zombie_read_factory, &ABORT_VERSION_ABA_SCHEDULE.to_vec());
    assert_eq!(outcome, RunOutcome::Pass);
}

// ---------------------------------------------------------------------
// Snapshot reads (DESIGN.md §4.10): the same zombie-read probe and a
// two-cell torn-pair probe run with `snapshot_reads` on, proving
// opacity across the seqlock sandwich and timestamp extension. The
// failing forms (re-check skipped / extension without revalidation)
// are pinned in `crates/stm/src/tests.rs::sched_regressions`; the
// minimized counterexample schedules are frozen here against the fixed
// tree.
// ---------------------------------------------------------------------

/// The snapshot-mode scenario config. Must stay identical to
/// `sched_regressions::snapshot_config` in `crates/stm/src/tests.rs`:
/// the frozen schedules below were minimized against that tree, and a
/// config change would shift the yield-point step sequence.
fn snapshot_scenario_config() -> StmConfig {
    StmConfig {
        serial_after_aborts: None,
        snapshot_reads: true,
        doom_wait_spins: 3,
        ..StmConfig::default()
    }
}

/// The zombie-read probe under snapshot reads: one reader racing one
/// aborting writer. A sound snapshot read never returns the writer's
/// dirty store (the header re-check catches it), so a committed
/// non-zero read is a zombie.
fn snapshot_zombie_read_factory() -> Execution {
    snapshot_zombie_read_factory_with(snapshot_scenario_config())
}

fn snapshot_zombie_read_factory_with(config: StmConfig) -> Execution {
    let (heap, cells) = new_cells(1, &[0]);
    let obj = cells[0];
    let stm = Arc::new(Stm::with_config(heap.clone(), config));
    let committed_read = Arc::new(Mutex::new(None::<i64>));

    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let out = committed_read.clone();
        move || {
            let mut tx = stm.begin();
            match tx.read(obj, 0) {
                Ok(word) => {
                    let v = word.as_scalar().unwrap();
                    if tx.commit().is_ok() {
                        *out.lock().unwrap() = Some(v);
                    }
                }
                Err(_) => tx.abort(),
            }
        }
    });
    let writer: ThreadBody = Box::new({
        let stm = stm.clone();
        move || {
            let mut tx = stm.begin();
            let _ = tx.write(obj, 0, Word::from_scalar(1));
            tx.abort();
        }
    });
    let check = Box::new(move || match *committed_read.lock().unwrap() {
        Some(v) if v != 0 => {
            Err(format!("zombie commit: snapshot reader committed {v} from an aborted writer"))
        }
        _ => Ok(()),
    });
    Execution { threads: vec![reader, writer], check }
}

/// The torn-pair probe: a writer commits x=1, y=1 atomically from
/// (0, 0) while a snapshot reader reads both. The only serializable
/// read pairs are (0, 0) and (1, 1); a reader that catches y too new
/// must either extend successfully (having certified x) or abort —
/// never commit (0, 1).
fn snapshot_torn_pair_factory() -> Execution {
    snapshot_torn_pair_factory_with(snapshot_scenario_config())
}

fn snapshot_torn_pair_factory_with(config: StmConfig) -> Execution {
    let (heap, cells) = new_cells(2, &[0, 0]);
    let (x, y) = (cells[0], cells[1]);
    let stm = Arc::new(Stm::with_config(heap.clone(), config));
    let committed_pair = Arc::new(Mutex::new(None::<(i64, i64)>));

    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let out = committed_pair.clone();
        move || {
            let mut tx = stm.begin();
            let result = (|| {
                let a = tx.read(x, 0)?.as_scalar().unwrap();
                let b = tx.read(y, 0)?.as_scalar().unwrap();
                Ok::<_, TxError>((a, b))
            })();
            match result {
                Ok(pair) => {
                    if tx.commit().is_ok() {
                        *out.lock().unwrap() = Some(pair);
                    }
                }
                Err(_) => tx.abort(),
            }
        }
    });
    let writer: ThreadBody = Box::new({
        let stm = stm.clone();
        move || {
            let mut tx = stm.begin();
            let wrote = tx.write(x, 0, Word::from_scalar(1)).is_ok()
                && tx.write(y, 0, Word::from_scalar(1)).is_ok();
            if wrote {
                let _ = tx.commit();
            } else {
                tx.abort();
            }
        }
    });
    let check = Box::new(move || match *committed_pair.lock().unwrap() {
        Some((a, b)) if a != b => {
            Err(format!("torn snapshot: reader committed ({a}, {b}) across an atomic x/y publish"))
        }
        _ => Ok(()),
    });
    Execution { threads: vec![reader, writer], check }
}

/// Minimized counterexample from the re-check-skipped revert: the
/// reader resolves the header, the writer acquires and stores in
/// place, and the reader's data load hits the dirty value. With the
/// sandwich in place the re-check sees the `Owned` header and retries.
const SNAPSHOT_RECHECK_SCHEDULE: &[usize] = &[0, 0, 1, 1, 1, 1, 0, 0];

/// Minimized counterexample from the extension-without-revalidation
/// revert: the reader reads x=0, the writer publishes x and y, and the
/// reader finds y too new. A sound extension revalidates, catches x
/// having moved, and aborts instead of committing (0, 1).
const TORN_EXTENSION_SCHEDULE: &[usize] = &[0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];

#[test]
fn frozen_snapshot_recheck_schedule_passes_on_the_fixed_tree() {
    let outcome =
        explorer(1, 0).replay(&snapshot_zombie_read_factory, &SNAPSHOT_RECHECK_SCHEDULE.to_vec());
    assert_eq!(outcome, RunOutcome::Pass);
}

#[test]
fn frozen_torn_extension_schedule_passes_on_the_fixed_tree() {
    let outcome =
        explorer(1, 0).replay(&snapshot_torn_pair_factory, &TORN_EXTENSION_SCHEDULE.to_vec());
    assert_eq!(outcome, RunOutcome::Pass);
}

#[test]
fn oracle_snapshot_opacity_across_extension() {
    // Sweep of the torn-pair probe: no schedule — including every
    // interleaving that forces a timestamp extension between the two
    // reads — may let the reader commit a torn pair. (The deterministic
    // extension-count assertions live in `tests/snapshot_reads.rs`.)
    let report = explorer(2_500, 1_500).explore(&snapshot_torn_pair_factory);
    report_coverage("snapshot-opacity", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0);
}

#[test]
fn snapshot_zombie_probe_is_clean_under_exploration() {
    let report = explorer(2_500, 1_500).explore(&snapshot_zombie_read_factory);
    report_coverage("snapshot-zombie", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert!(report.exhausted, "two-thread space must be fully enumerated");
    assert_eq!(report.divergences, 0);
}

#[test]
fn frozen_schedules_replay_green_under_every_clock_mode() {
    // The four frozen counterexample schedules, replayed under each
    // clock organization. Replay semantics are lenient — the schedule
    // is a forced prefix with default-policy fallback — so the exact
    // trees may diverge in step count (Deferred adds the
    // `clock.pre_raise` point), but every mode must still pass: the
    // bugs these schedules pinned are mode-independent.
    for mode in ClockMode::ALL {
        let plain =
            move || zombie_read_factory_with(StmConfig { clock_mode: mode, ..scenario_config() });
        let snap_zombie = move || {
            snapshot_zombie_read_factory_with(StmConfig {
                clock_mode: mode,
                ..snapshot_scenario_config()
            })
        };
        let snap_torn = move || {
            snapshot_torn_pair_factory_with(StmConfig {
                clock_mode: mode,
                ..snapshot_scenario_config()
            })
        };
        for (name, outcome) in [
            ("two-clock", explorer(1, 0).replay(&plain, &TWO_CLOCK_FAST_PATH_SCHEDULE.to_vec())),
            ("abort-aba", explorer(1, 0).replay(&plain, &ABORT_VERSION_ABA_SCHEDULE.to_vec())),
            (
                "snapshot-recheck",
                explorer(1, 0).replay(&snap_zombie, &SNAPSHOT_RECHECK_SCHEDULE.to_vec()),
            ),
            (
                "torn-extension",
                explorer(1, 0).replay(&snap_torn, &TORN_EXTENSION_SCHEDULE.to_vec()),
            ),
        ] {
            assert_eq!(outcome, RunOutcome::Pass, "frozen {name} schedule under {mode}");
        }
    }
}

#[test]
fn snapshot_probes_are_clean_under_every_clock_mode() {
    // Exhaustive zombie containment and torn-pair opacity for each
    // decentralized mode (Global is covered by the two sweeps above).
    // Deferred is the interesting one: readers meet stamps that lead
    // the global clock and must raise-then-extend, never admit them.
    for mode in [ClockMode::PassOnFail, ClockMode::Striped, ClockMode::Deferred] {
        let zombie = move || {
            snapshot_zombie_read_factory_with(StmConfig {
                clock_mode: mode,
                ..snapshot_scenario_config()
            })
        };
        let report = explorer(6_000, 800).explore(&zombie);
        report_coverage(&format!("snapshot-zombie[{mode}]"), &report);
        assert!(report.passed(), "[{mode}] {}", report.counterexample.unwrap());
        assert!(report.exhausted, "[{mode}] two-thread space must be fully enumerated");
        assert_eq!(report.divergences, 0, "[{mode}]");

        let torn = move || {
            snapshot_torn_pair_factory_with(StmConfig {
                clock_mode: mode,
                ..snapshot_scenario_config()
            })
        };
        let report = explorer(1_500, 1_000).explore(&torn);
        report_coverage(&format!("snapshot-opacity[{mode}]"), &report);
        assert!(report.passed(), "[{mode}] {}", report.counterexample.unwrap());
        assert_eq!(report.divergences, 0, "[{mode}]");
    }
}

#[test]
fn zombie_read_scenario_is_clean_under_exploration() {
    // Run the same exhaustive sweep with and without sleep sets: both
    // must enumerate the space and pass; the pruned run must not do
    // more work. The pair of dfs counts is the before/after-pruning
    // figure quoted in EXPERIMENTS.md.
    let sweep = |sleep_sets: bool| {
        Explorer::new(SchedConfig {
            preemption_bound: 3,
            random_walks: 500,
            sleep_sets,
            ..SchedConfig::default()
        })
        .explore(&zombie_read_factory)
    };
    let plain = sweep(false);
    report_coverage("zombie-read (no pruning)", &plain);
    let pruned = sweep(true);
    report_coverage("zombie-read (sleep sets)", &pruned);
    for report in [&plain, &pruned] {
        assert!(report.passed(), "{}", report.counterexample.as_ref().unwrap());
        assert!(report.exhausted, "two-thread space must be fully enumerated");
    }
    assert!(
        pruned.dfs_schedules <= plain.dfs_schedules,
        "sleep sets must not enlarge the sweep: {} > {}",
        pruned.dfs_schedules,
        plain.dfs_schedules
    );
}

// ---------------------------------------------------------------------
// Version-wrap epoch abort (satellite S1): with a tiny version width,
// a writer commit wraps the version counter and bumps the global
// epoch; a reader that opened the cell before the wrap must abort with
// TxError::EPOCH — never validate across the renumbering.
// ---------------------------------------------------------------------

#[test]
fn concurrent_reader_aborts_with_epoch_across_a_version_wrap() {
    let epoch_aborts = Arc::new(AtomicUsize::new(0));
    let factory = {
        let epoch_aborts = epoch_aborts.clone();
        move || {
            let (heap, cells) = new_cells(1, &[0]);
            let obj = cells[0];
            let stm = Arc::new(Stm::with_config(
                heap.clone(),
                StmConfig { version_bits: 4, ..scenario_config() },
            ));
            // Drive the cell to the maximum encodable version (15): the
            // next committed update must wrap to 0 and bump the epoch.
            for v in 1..=15i64 {
                let mut tx = stm.begin();
                tx.write(obj, 0, Word::from_scalar(v)).unwrap();
                tx.commit().unwrap();
            }
            assert_eq!(
                StmWord::decode(heap.header_atomic(obj).load(Ordering::SeqCst)),
                StmWord::Version(15)
            );

            let observed = Arc::new(Mutex::new(None::<Result<i64, TxError>>));
            let reader: ThreadBody = Box::new({
                let stm = stm.clone();
                let observed = observed.clone();
                move || {
                    let mut tx = stm.begin();
                    let result = match tx.read(obj, 0) {
                        Ok(word) => {
                            let v = word.as_scalar().unwrap();
                            tx.commit().map(|()| v)
                        }
                        Err(e) => {
                            tx.abort();
                            Err(e)
                        }
                    };
                    *observed.lock().unwrap() = Some(result);
                }
            });
            let writer: ThreadBody = Box::new({
                let stm = stm.clone();
                move || {
                    let _ = stm.try_atomically(|tx| tx.write(obj, 0, Word::from_scalar(100)));
                }
            });
            let epoch_aborts = epoch_aborts.clone();
            let check = Box::new(move || {
                assert_eq!(stm.epoch(), 1, "the wrapping commit must bump the epoch");
                match observed.lock().unwrap().take() {
                    Some(Ok(v)) if v != 15 && v != 100 => {
                        Err(format!("reader committed impossible value {v}"))
                    }
                    Some(Err(TxError::EPOCH)) => {
                        epoch_aborts.fetch_add(1, Ordering::SeqCst);
                        Ok(())
                    }
                    _ => Ok(()),
                }
            });
            Execution { threads: vec![reader, writer], check }
        }
    };
    let report = explorer(800, 200).explore(&factory);
    report_coverage("epoch-wrap", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert!(
        epoch_aborts.load(Ordering::SeqCst) > 0,
        "some schedule must drive the reader across the wrap into an EPOCH abort"
    );
}

// ---------------------------------------------------------------------
// Oracle 5: serial-gate protocol — one transaction escalates to serial
// mode while two bystanders pass through the shared side of the gate.
// Escalation is forced deterministically: the escalator's closure
// requests a retry (`TxError::EXPLICIT`) on its first two attempts, and
// `serial_after_aborts: Some(2)` sends the third attempt through the
// exclusive gate. The bystanders touch disjoint cells, so they can
// never conflict and never escalate: at quiescence `serial_entries`
// must be *exactly* one, every thread must have committed (no lost
// wakeup leaves a thread parked on the gate), and all-blocked states
// surface as deadlock counterexamples.
// ---------------------------------------------------------------------

fn serial_gate_factory() -> Execution {
    let (heap, cells) = new_cells(3, &[0, 0, 0]);
    let stm = Arc::new(Stm::with_config(
        heap.clone(),
        StmConfig { serial_after_aborts: Some(2), ..scenario_config() },
    ));
    let committed = Arc::new(Mutex::new([false; 3]));

    let escalator: ThreadBody = Box::new({
        let stm = stm.clone();
        let obj = cells[0];
        let committed = committed.clone();
        let attempts = AtomicUsize::new(0);
        move || {
            let result = stm.try_atomically(|tx| {
                let v = tx.read(obj, 0)?.as_scalar().unwrap();
                tx.write(obj, 0, Word::from_scalar(v + 1))?;
                // Two explicit retries, then commit — by then the retry
                // loop has escalated to the exclusive gate.
                if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                    return Err(TxError::EXPLICIT);
                }
                Ok(())
            });
            if result.is_ok() {
                committed.lock().unwrap()[0] = true;
            }
        }
    });
    let bystander = |i: usize| {
        let stm = stm.clone();
        let obj = cells[i];
        let committed = committed.clone();
        Box::new(move || {
            let result = stm.try_atomically(|tx| {
                let v = tx.read(obj, 0)?.as_scalar().unwrap();
                tx.write(obj, 0, Word::from_scalar(v + 1))
            });
            if result.is_ok() {
                committed.lock().unwrap()[i] = true;
            }
        }) as ThreadBody
    };

    let threads: Vec<ThreadBody> = vec![escalator, bystander(1), bystander(2)];
    let check = Box::new(move || {
        let done = *committed.lock().unwrap();
        if done != [true; 3] {
            return Err(format!("not every thread committed: {done:?}"));
        }
        let finals: Vec<i64> = cells.iter().map(|&c| scalar(&heap, c, 0)).collect();
        if finals != [1, 1, 1] {
            return Err(format!("each cell must be incremented exactly once: {finals:?}"));
        }
        let s = stm.stats();
        if s.serial_entries != 1 {
            return Err(format!("expected exactly one serial entry, saw {}", s.serial_entries));
        }
        if s.commits != 3 {
            return Err(format!("expected exactly three commits, saw {}", s.commits));
        }
        Ok(())
    });
    Execution { threads, check }
}

#[test]
fn oracle_serial_gate_escalation() {
    let report = explorer(2_000, 1_200).explore(&serial_gate_factory);
    report_coverage("serial-gate", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0);
    assert!(report.schedules_run >= 1_200, "got {}", report.schedules_run);
}

// ---------------------------------------------------------------------
// Oracle 6: serial-mode storm — every thread hammers the *same* cell
// with escalation armed after a single failure. Whether any thread
// escalates is schedule-dependent, so the per-schedule oracle checks
// only exactness (every thread commits exactly once, under any mix of
// shared and exclusive gate traffic); the test then asserts that the
// sweep as a whole drove at least one schedule into serial mode.
// ---------------------------------------------------------------------

#[test]
fn oracle_serial_mode_storm() {
    let serial_entries = Arc::new(AtomicUsize::new(0));
    let factory = {
        let serial_entries = serial_entries.clone();
        move || {
            let (heap, cells) = new_cells(1, &[0]);
            let obj = cells[0];
            let stm = Arc::new(Stm::with_config(
                heap.clone(),
                StmConfig { serial_after_aborts: Some(1), ..scenario_config() },
            ));
            let commits = Arc::new(AtomicUsize::new(0));

            let threads: Vec<ThreadBody> = (0..3)
                .map(|_| {
                    let stm = stm.clone();
                    let commits = commits.clone();
                    Box::new(move || {
                        let result = stm.try_atomically(|tx| {
                            let v = tx.read(obj, 0)?.as_scalar().unwrap();
                            tx.write(obj, 0, Word::from_scalar(v + 1))
                        });
                        if result.is_ok() {
                            commits.fetch_add(1, Ordering::SeqCst);
                        }
                    }) as ThreadBody
                })
                .collect();

            let serial_entries = serial_entries.clone();
            let check = Box::new(move || {
                let committed = commits.load(Ordering::SeqCst);
                if committed != 3 {
                    return Err(format!("expected all 3 increments to commit, saw {committed}"));
                }
                let v = scalar(&heap, obj, 0);
                if v != 3 {
                    return Err(format!("cell is {v}, not the 3 committed increments"));
                }
                serial_entries.fetch_add(stm.stats().serial_entries as usize, Ordering::SeqCst);
                Ok(())
            });
            Execution { threads, check }
        }
    };
    let report = explorer(1_500, 1_000).explore(&factory);
    report_coverage("serial-storm", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert!(
        serial_entries.load(Ordering::SeqCst) > 0,
        "some schedule must drive a conflicted thread through the exclusive gate"
    );
}

// ---------------------------------------------------------------------
// Oracle 7: GC log trimming during a live transaction. A reader holds a
// read-log entry for an object that a second transaction unlinks from
// the object graph; a concurrent collection (interleavable at every
// registry shard boundary) must (a) keep the object alive while any
// undo log can still restore a reference to it, (b) sweep it exactly
// once over the scenario's lifetime, and (c) trim the reader's dead
// read entry so its later validation never touches the swept slot.
// ---------------------------------------------------------------------

fn gc_trim_factory(trims: Arc<AtomicUsize>) -> Execution {
    use omt_heap::RootSet;

    let (heap, cells) = new_cells(2, &[0, 3]);
    let (anchor, floater) = (cells[0], cells[1]);
    // anchor.b → floater keeps the floater reachable until unlinked.
    heap.store(anchor, 1, Word::from_ref(floater));
    let stm = Arc::new(Stm::with_config(heap.clone(), scenario_config()));
    // The reader signals here once the floater is in its read log; the
    // unlinker blocks on the signal (a visible blocked state under the
    // explorer), so no schedule chases the reference after the sweep.
    let read_done = Arc::new(AtomicUsize::new(0));
    let first_swept = Arc::new(Mutex::new(0u64));
    let reader_outcome = Arc::new(Mutex::new(None::<Result<i64, TxError>>));

    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let read_done = read_done.clone();
        let outcome = reader_outcome.clone();
        move || {
            let mut tx = stm.begin();
            let result = match tx.read(floater, 0) {
                Ok(word) => {
                    let v = word.as_scalar().unwrap();
                    read_done.store(1, Ordering::SeqCst);
                    tx.commit().map(|()| v)
                }
                Err(e) => {
                    tx.abort();
                    Err(e)
                }
            };
            *outcome.lock().unwrap() = Some(result);
        }
    });
    let unlinker: ThreadBody = Box::new({
        let stm = stm.clone();
        let read_done = read_done.clone();
        move || {
            omt_util::sched::block_until(
                "test.await_read",
                || (read_done.load(Ordering::SeqCst) == 1).then_some(()),
                || {
                    while read_done.load(Ordering::SeqCst) != 1 {
                        std::thread::yield_now();
                    }
                },
            );
            stm.try_atomically(|tx| tx.write(anchor, 1, Word::null())).expect("uncontended unlink");
        }
    });
    let collector: ThreadBody = Box::new({
        let heap = heap.clone();
        let stm = stm.clone();
        let first_swept = first_swept.clone();
        move || {
            let outcome = heap.collect(&RootSet::from(vec![anchor]), &[stm.gc_participant()]);
            *first_swept.lock().unwrap() = outcome.swept;
        }
    });

    let threads: Vec<ThreadBody> = vec![reader, unlinker, collector];
    let check = Box::new(move || {
        // A quiescent collection on the harness thread (no hook, so the
        // shard yields are no-ops) reclaims whatever the racing
        // collection legitimately had to keep alive.
        let final_outcome = heap.collect(&RootSet::from(vec![anchor]), &[stm.gc_participant()]);
        let racing = *first_swept.lock().unwrap();
        if racing + final_outcome.swept != 1 {
            return Err(format!(
                "floater must be swept exactly once: racing collect {racing}, final {}",
                final_outcome.swept
            ));
        }
        match *reader_outcome.lock().unwrap() {
            Some(Ok(3)) => {}
            ref other => return Err(format!("reader must commit the value 3, got {other:?}")),
        }
        if heap.load(anchor, 1) != Word::null() {
            return Err("unlink did not stick".into());
        }
        if heap.live_objects() != 1 {
            return Err(format!("expected only the anchor alive, {} live", heap.live_objects()));
        }
        trims.fetch_add(stm.stats().gc_trimmed_entries as usize, Ordering::SeqCst);
        Ok(())
    });
    Execution { threads, check }
}

#[test]
fn oracle_gc_trims_logs_of_a_live_transaction() {
    let trims = Arc::new(AtomicUsize::new(0));
    let factory = {
        let trims = trims.clone();
        move || gc_trim_factory(trims.clone())
    };
    let report = explorer(1_500, 1_000).explore(&factory);
    report_coverage("gc-trim", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert!(
        trims.load(Ordering::SeqCst) > 0,
        "some schedule must sweep the floater while the reader's entry is live and trim it"
    );
}

// ---------------------------------------------------------------------
// Multi-version objects (DESIGN.md §4.13): bounded version chains
// behind each word serve pinned snapshot readers values the header has
// already moved past. Three oracles: (a) the snapshot-opacity sweep of
// the torn-pair probe re-run with chains enabled (the `mv.pre_retire` /
// `mv.pre_walk` sites interleave the retire against the reader's
// walk); (b) a pinned reader racing a GC trim — the reader's published
// `read_ver` is the trim floor, so no schedule may reclaim the entry
// out from under its chain walk; (c) the savepoint audit — a partial
// rollback inside the writer must leave nothing in the chain, so the
// reader can never be served a value that was rolled back.
// ---------------------------------------------------------------------

/// Snapshot scenario config with chains on. Depth 1 suffices: every
/// probe straddles exactly one commit per word.
fn mv_scenario_config() -> StmConfig {
    StmConfig { mv_depth: 1, ..snapshot_scenario_config() }
}

#[test]
fn oracle_mv_snapshot_opacity_with_chains() {
    // The torn-pair sweep again, now with the chain in the reader's
    // path: a reader that catches y too new is *served* the old y from
    // the chain instead of extending, and must still never commit
    // (0, 1) — the chain value and the already-read x must come from
    // the same snapshot.
    let factory = || snapshot_torn_pair_factory_with(mv_scenario_config());
    let report = explorer(2_500, 1_500).explore(&factory);
    report_coverage("mv-snapshot-opacity", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0);
}

#[test]
fn frozen_snapshot_schedules_replay_green_with_chains() {
    // The two frozen snapshot counterexamples, replayed with chains
    // enabled. The `mv.*` yield points shift the tree (replay is
    // lenient: forced prefix, default-policy fallback), but the bugs
    // the schedules pinned are depth-independent and must stay fixed.
    let snap_zombie = || snapshot_zombie_read_factory_with(mv_scenario_config());
    let snap_torn = || snapshot_torn_pair_factory_with(mv_scenario_config());
    for (name, outcome) in [
        (
            "snapshot-recheck",
            explorer(1, 0).replay(&snap_zombie, &SNAPSHOT_RECHECK_SCHEDULE.to_vec()),
        ),
        ("torn-extension", explorer(1, 0).replay(&snap_torn, &TORN_EXTENSION_SCHEDULE.to_vec())),
    ] {
        assert_eq!(outcome, RunOutcome::Pass, "frozen {name} schedule with mv_depth=1");
    }
}

/// A pinned reader whose straddled read *must* be served from the
/// chain, racing a collector whose trim pass (`mv.pre_trim` interleaves
/// at every shard boundary) sweeps the version store. The reader's
/// published `read_ver` floors the trim, so every schedule must let the
/// walk find its entry: the reader always commits the exact pre-publish
/// pair.
fn mv_trim_race_factory(trims: Arc<AtomicUsize>) -> Execution {
    use omt_heap::RootSet;

    let (heap, cells) = new_cells(2, &[0, 1]);
    let (x, y) = (cells[0], cells[1]);
    heap.store(y, 0, Word::from_scalar(1));
    let stm = Arc::new(Stm::with_config(heap.clone(), mv_scenario_config()));
    let pinned = Arc::new(AtomicUsize::new(0));
    let published = Arc::new(AtomicUsize::new(0));
    let committed_pair = Arc::new(Mutex::new(None::<(i64, i64)>));

    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let pinned = pinned.clone();
        let published = published.clone();
        let out = committed_pair.clone();
        move || {
            let mut tx = stm.begin();
            let result = (|| {
                let vx = tx.read(x, 0)?.as_scalar().unwrap();
                pinned.store(1, Ordering::SeqCst);
                omt_util::sched::block_until(
                    "test.await_publish",
                    || (published.load(Ordering::SeqCst) == 1).then_some(()),
                    || {
                        while published.load(Ordering::SeqCst) != 1 {
                            std::thread::yield_now();
                        }
                    },
                );
                // y has moved past read_ver: this walk races the trim.
                let vy = tx.read(y, 0)?.as_scalar().unwrap();
                Ok::<_, TxError>((vx, vy))
            })();
            match result {
                Ok(pair) => {
                    if tx.commit().is_ok() {
                        *out.lock().unwrap() = Some(pair);
                    }
                }
                Err(_) => tx.abort(),
            }
        }
    });
    let writer: ThreadBody = Box::new({
        let stm = stm.clone();
        let pinned = pinned.clone();
        let published = published.clone();
        move || {
            omt_util::sched::block_until(
                "test.await_pin",
                || (pinned.load(Ordering::SeqCst) == 1).then_some(()),
                || {
                    while pinned.load(Ordering::SeqCst) != 1 {
                        std::thread::yield_now();
                    }
                },
            );
            stm.try_atomically(|tx| {
                tx.write(x, 0, Word::from_scalar(100))?;
                tx.write(y, 0, Word::from_scalar(101))
            })
            .expect("the reader never acquires: the publish is uncontended");
            published.store(1, Ordering::SeqCst);
        }
    });
    let collector: ThreadBody = Box::new({
        let heap = heap.clone();
        let stm = stm.clone();
        move || {
            heap.collect(&RootSet::from(vec![x, y]), &[stm.gc_participant()]);
        }
    });

    let threads: Vec<ThreadBody> = vec![reader, writer, collector];
    let check = Box::new(move || {
        match *committed_pair.lock().unwrap() {
            // The reader begun before the publish must commit the
            // pre-publish pair, served from the chain — a racing trim
            // may never reclaim an entry below its read_ver.
            Some((0, 1)) => {}
            ref other => {
                return Err(format!("pinned reader must commit (0, 1), got {other:?}"));
            }
        }
        let stats = stm.stats();
        if stats.mv_read_hits != 1 {
            return Err(format!("the y read must be a chain hit, got {}", stats.mv_read_hits));
        }
        // With the reader finished, a quiescent collection drains the
        // entries the race had to keep.
        heap.collect(&RootSet::from(vec![x, y]), &[stm.gc_participant()]);
        trims.fetch_add(stm.stats().mv_trims as usize, Ordering::SeqCst);
        Ok(())
    });
    Execution { threads, check }
}

#[test]
fn oracle_mv_chain_walk_survives_concurrent_trim() {
    let trims = Arc::new(AtomicUsize::new(0));
    let factory = {
        let trims = trims.clone();
        move || mv_trim_race_factory(trims.clone())
    };
    let report = explorer(1_500, 1_000).explore(&factory);
    report_coverage("mv-trim-race", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert!(
        trims.load(Ordering::SeqCst) > 0,
        "the quiescent collection must drain the retired entries once the reader is done"
    );
}

/// Savepoint audit (the PR's third bugfix): the writer rolls part of
/// its work back to a savepoint before committing; the racing pinned
/// reader must be served the *pre-transaction* value from the chain —
/// the rolled-back value was never committed state and must not be
/// observable at any read_ver.
fn mv_savepoint_factory() -> Execution {
    let (heap, cells) = new_cells(2, &[0, 1]);
    let (x, y) = (cells[0], cells[1]);
    heap.store(y, 0, Word::from_scalar(1));
    let stm = Arc::new(Stm::with_config(heap.clone(), mv_scenario_config()));
    let pinned = Arc::new(AtomicUsize::new(0));
    let published = Arc::new(AtomicUsize::new(0));
    let committed_read = Arc::new(Mutex::new(None::<i64>));

    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let pinned = pinned.clone();
        let published = published.clone();
        let out = committed_read.clone();
        move || {
            let mut tx = stm.begin();
            let result = (|| {
                tx.read(y, 0)?;
                pinned.store(1, Ordering::SeqCst);
                omt_util::sched::block_until(
                    "test.await_publish",
                    || (published.load(Ordering::SeqCst) == 1).then_some(()),
                    || {
                        while published.load(Ordering::SeqCst) != 1 {
                            std::thread::yield_now();
                        }
                    },
                );
                Ok::<_, TxError>(tx.read(x, 0)?.as_scalar().unwrap())
            })();
            match result {
                Ok(v) => {
                    if tx.commit().is_ok() {
                        *out.lock().unwrap() = Some(v);
                    }
                }
                Err(_) => tx.abort(),
            }
        }
    });
    let writer: ThreadBody = Box::new({
        let stm = stm.clone();
        let pinned = pinned.clone();
        let published = published.clone();
        move || {
            omt_util::sched::block_until(
                "test.await_pin",
                || (pinned.load(Ordering::SeqCst) == 1).then_some(()),
                || {
                    while pinned.load(Ordering::SeqCst) != 1 {
                        std::thread::yield_now();
                    }
                },
            );
            let mut tx = stm.begin();
            tx.write(x, 0, Word::from_scalar(666)).expect("uncontended");
            let sp = tx.savepoint();
            tx.write(x, 0, Word::from_scalar(777)).expect("uncontended");
            tx.rollback_to(sp);
            tx.write(x, 0, Word::from_scalar(42)).expect("uncontended");
            tx.commit().expect("uncontended commit");
            published.store(1, Ordering::SeqCst);
        }
    });

    let threads: Vec<ThreadBody> = vec![reader, writer];
    let check = Box::new(move || {
        match *committed_read.lock().unwrap() {
            // Pre-transaction value from the chain; 666/777 existed
            // only inside the writer and 42 is past the snapshot.
            Some(0) => {}
            ref other => {
                return Err(format!(
                    "reader must be served the pre-transaction value 0, got {other:?}"
                ));
            }
        }
        if scalar(&heap, x, 0) != 42 {
            return Err(format!("committed value must be 42, heap has {}", scalar(&heap, x, 0)));
        }
        Ok(())
    });
    Execution { threads, check }
}

#[test]
fn oracle_mv_savepoint_rollback_never_reaches_the_chain() {
    let report = explorer(1_500, 1_000).explore(&mv_savepoint_factory);
    report_coverage("mv-savepoint", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0);
}

// ---------------------------------------------------------------------
// Boosted map (DESIGN.md §4.12): semantic conflict detection layered
// over the word-level STM. Two oracles on a single-bucket map (so every
// operation physically collides on one chain while the abstract locks
// stay per-key): (a) the committed boosted operations — return values
// included — linearize against the sequential map model; (b) an
// explicitly aborted transaction's inverse ops restore the exact
// pre-state while a commuting writer races through the same bucket.
// The explorer interleaves at the `boost.*` schedule points (lock CAS,
// pre-inverse) on top of the usual word-level ones.
// ---------------------------------------------------------------------

/// A fresh single-bucket boosted map holding `{1: 10}` under the module
/// ground rules (AbortSelf, bounded retries — an abstract-lock BUSY
/// feeds the same bounded retry loop as a word conflict, so every
/// virtual thread terminates). The prefill runs on the hook-free
/// controlling thread, outside any schedule.
fn boosted_scenario_map() -> Arc<BoostedHashMap> {
    let stm = Arc::new(Stm::with_config(Arc::new(Heap::new()), scenario_config()));
    let map = Arc::new(BoostedHashMap::new(stm, 1, 16));
    assert!(map.put(1, 10));
    map
}

fn boosted_map_factory() -> Execution {
    let map = boosted_scenario_map();
    // Committed results, `None` when the thread gave its retries up (a
    // given-up operation must leave no semantic trace — the model below
    // only replays committed ops, so a leak shows up as a mismatch).
    let put_result = Arc::new(Mutex::new(None::<bool>));
    let del_result = Arc::new(Mutex::new(None::<Option<i64>>));
    let get_result = Arc::new(Mutex::new(None::<Option<i64>>));

    let threads: Vec<ThreadBody> = vec![
        Box::new({
            let (map, out) = (map.clone(), put_result.clone());
            move || {
                if let Ok(inserted) = map.stm().try_atomically(|tx| map.put_in(tx, 2, 20)) {
                    *out.lock().unwrap() = Some(inserted);
                }
            }
        }),
        Box::new({
            let (map, out) = (map.clone(), del_result.clone());
            move || {
                if let Ok(removed) = map.stm().try_atomically(|tx| map.delete_in(tx, 1)) {
                    *out.lock().unwrap() = Some(removed);
                }
            }
        }),
        Box::new({
            let (map, out) = (map.clone(), get_result.clone());
            move || {
                if let Ok(value) = map.stm().try_atomically(|tx| map.get_in(tx, 1)) {
                    *out.lock().unwrap() = Some(value);
                }
            }
        }),
    ];

    let check = Box::new(move || {
        for key in [1u64, 2] {
            if let Some(holder) = map.locks().holder(key) {
                return Err(format!("abstract lock {key} leaked past quiescence to {holder:?}"));
            }
        }
        let mut final_state = map.snapshot();
        final_state.sort_unstable();
        let put = *put_result.lock().unwrap();
        let del = *del_result.lock().unwrap();
        let get = *get_result.lock().unwrap();
        let committed: Vec<usize> = [put.is_some(), del.is_some(), get.is_some()]
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .map(|(i, _)| i)
            .collect();
        let linearizable = permutations(&committed).iter().any(|order| {
            let mut model = std::collections::BTreeMap::from([(1i64, 10i64)]);
            for &op in order {
                let agrees = match op {
                    0 => {
                        let inserted = !model.contains_key(&2);
                        model.entry(2).or_insert(20);
                        put == Some(inserted)
                    }
                    1 => del == Some(model.remove(&1)),
                    _ => get == Some(model.get(&1).copied()),
                };
                if !agrees {
                    return false;
                }
            }
            model.into_iter().collect::<Vec<_>>() == final_state
        });
        if linearizable {
            Ok(())
        } else {
            Err(format!(
                "no sequential order of committed ops {committed:?} yields \
                 put={put:?} del={del:?} get={get:?} with final state {final_state:?}"
            ))
        }
    });
    Execution { threads, check }
}

#[test]
fn oracle_boosted_map_linearizes_against_the_sequential_model() {
    let report = explorer(2_500, 1_500).explore(&boosted_map_factory);
    report_coverage("boosted-map", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0, "scenario must be schedule-deterministic");
}

/// One transaction stages commuting boosted ops (insert a fresh key,
/// delete a prefilled one) and then explicitly aborts; the registered
/// inverse ops — interleaved with a racing committer at
/// `boost.pre_inverse` and the phys-transaction points — must restore
/// the exact pre-state, and the racer's effect alone survives.
fn boosted_abort_undo_factory() -> Execution {
    let map = boosted_scenario_map();
    let racer_committed = Arc::new(Mutex::new(false));

    let aborter: ThreadBody = Box::new({
        let map = map.clone();
        move || {
            let mut tx = map.stm().begin();
            // Both keys' stripes are disjoint from the racer's, so the
            // stages cannot fail; the immediate phys transactions retry
            // through any word-level collisions on the shared bucket.
            let staged = map
                .put_in(&mut tx, 2, 20)
                .and_then(|inserted| {
                    assert!(inserted, "key 2 starts absent");
                    map.delete_in(&mut tx, 1)
                })
                .map(|removed| assert_eq!(removed, Some(10), "key 1 starts at 10"));
            staged.expect("disjoint abstract locks cannot conflict");
            tx.abort();
        }
    });
    let racer: ThreadBody = Box::new({
        let (map, committed) = (map.clone(), racer_committed.clone());
        move || {
            if let Ok(inserted) = map.stm().try_atomically(|tx| map.put_in(tx, 3, 30)) {
                assert!(inserted, "key 3 starts absent");
                *committed.lock().unwrap() = true;
            }
        }
    });

    let check = Box::new(move || {
        for key in [1u64, 2, 3] {
            if let Some(holder) = map.locks().holder(key) {
                return Err(format!("abstract lock {key} leaked past quiescence to {holder:?}"));
            }
        }
        let mut final_state = map.snapshot();
        final_state.sort_unstable();
        let mut expected = vec![(1i64, 10i64)];
        if *racer_committed.lock().unwrap() {
            expected.push((3, 30));
        }
        if final_state == expected {
            Ok(())
        } else {
            Err(format!(
                "inverse ops did not restore the pre-state: expected {expected:?}, \
                 got {final_state:?}"
            ))
        }
    });
    Execution { threads: vec![aborter, racer], check }
}

#[test]
fn oracle_boosted_abort_undo_restores_the_exact_pre_state() {
    let report = explorer(2_500, 1_500).explore(&boosted_abort_undo_factory);
    report_coverage("boosted-undo", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0, "scenario must be schedule-deterministic");
}

// ---------------------------------------------------------------------
// Throughput: the pooled engine against PR 4's reference cost model
// (fresh OS threads per run, park-only handoff) on the checked-in bank
// oracle. The printed schedules/sec figures are the sched-smoke numbers
// quoted in EXPERIMENTS.md.
// ---------------------------------------------------------------------

/// Reproduces the per-schedule heap-setup cost PR 4's sweeps paid:
/// `omt-heap`'s `new_chunk` built each 64Ki-entry chunk through a `Vec`
/// and `Heap::drop` scanned the full chunk for live objects — both
/// fixed in this PR (zeroed allocation; scan bounded by `next_fresh`).
/// The baseline below adds this cost back so "PR 4's engine" means the
/// sweeper as it actually ran, not PR 4's engine with this PR's heap.
fn pr4_per_schedule_heap_cost() {
    use std::sync::atomic::{AtomicPtr, Ordering};
    let chunk: Box<[AtomicPtr<u64>]> = (0..65536)
        .map(|_| AtomicPtr::new(std::ptr::null_mut()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let mut live = 0u32;
    for entry in chunk.iter() {
        if !entry.load(Ordering::Relaxed).is_null() {
            live += 1;
        }
    }
    std::hint::black_box((chunk, live));
}

#[test]
#[ignore = "timing-sensitive: run alone (the sched-smoke job does), not under a parallel test load"]
fn pooled_engine_outpaces_pr4s_engine_on_the_bank_oracle() {
    use omt_sched::{run_driven, run_driven_reference, EnabledSlot};
    use std::time::{Duration, Instant};

    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        /// This PR's engine: pooled workers, inline tick.
        Pooled,
        /// PR 4's engine cost model: spawn-per-run, bounce-per-step.
        Reference,
        /// PR 4 as shipped: the reference engine plus the per-schedule
        /// heap-setup cost its sweeps paid (see above).
        Pr4,
    }

    // A chooser with the shape DFS produces: long non-preemptive runs
    // (stay on the previous thread while it is runnable) broken by a
    // bounded number of forced preemptions at run-dependent steps.
    fn choose(tick: usize, salt: usize, enabled: &[EnabledSlot], prev: Option<usize>) -> usize {
        let preempt = tick == 5 + salt % 11 || tick == 20 + salt % 29;
        if let Some(p) = prev {
            if !preempt && enabled.iter().any(|s| s.thread == p && !s.blocked) {
                return p;
            }
            if let Some(s) = enabled.iter().find(|s| s.thread != p && !s.blocked) {
                return s.thread;
            }
        }
        enabled.iter().find(|s| !s.blocked).unwrap_or(&enabled[0]).thread
    }
    let sweep = |runs: usize, mode: Mode| {
        let start = Instant::now();
        for i in 0..runs {
            if mode == Mode::Pr4 {
                pr4_per_schedule_heap_cost();
            }
            let mut chooser = |step: usize, enabled: &[EnabledSlot], prev: Option<usize>| {
                choose(step, i, enabled, prev)
            };
            let record = if mode == Mode::Pooled {
                run_driven(bank_factory(), &mut chooser, 800)
            } else {
                run_driven_reference(bank_factory(), &mut chooser, 800)
            };
            assert_eq!(record.outcome, RunOutcome::Pass);
        }
        start.elapsed()
    };

    // Warm the scheduler thread's pool, then time the sweeps in
    // interleaved rounds — every round measures all three modes
    // back-to-back, so a slow patch of machine time (the CI box is
    // noisy) hits the modes it compares alike instead of skewing
    // whichever mode it happened to land on. The best (fastest)
    // duration per mode across rounds approximates each engine's
    // undisturbed cost.
    sweep(20, Mode::Pooled);
    const RUNS: usize = 400;
    const BASE_RUNS: usize = 50;
    const ROUNDS: usize = 4;
    let mut pooled = Duration::MAX;
    let mut reference = Duration::MAX;
    let mut pr4 = Duration::MAX;
    for _ in 0..ROUNDS {
        pooled = pooled.min(sweep(RUNS, Mode::Pooled));
        reference = reference.min(sweep(BASE_RUNS, Mode::Reference));
        pr4 = pr4.min(sweep(BASE_RUNS, Mode::Pr4));
    }
    let pooled_rate = RUNS as f64 / pooled.as_secs_f64();
    let reference_rate = BASE_RUNS as f64 / reference.as_secs_f64();
    let pr4_rate = BASE_RUNS as f64 / pr4.as_secs_f64();
    eprintln!(
        "bank oracle sweep rate: pooled {pooled_rate:.0}/s, reference engine \
         {reference_rate:.0}/s ({:.1}x), PR 4 as shipped {pr4_rate:.0}/s ({:.1}x)",
        pooled_rate / reference_rate,
        pooled_rate / pr4_rate,
    );
    assert!(
        pooled_rate > reference_rate,
        "the pool + inline tick must beat the spawn-per-run engine outright \
         (pooled {pooled_rate:.0}/s, reference {reference_rate:.0}/s)"
    );
    // PR 4's recorded sweeps (EXPERIMENTS.md) and the sched-smoke job
    // run debug builds; in release the reproduced chunk loop optimizes
    // to a memset and no longer represents what PR 4's sweeps paid, so
    // the 10x gate only applies where the baseline is faithful.
    #[cfg(debug_assertions)]
    assert!(
        pooled_rate >= 10.0 * pr4_rate,
        "the explorer must sweep at least 10x more schedules/s than PR 4's \
         sweeper (pooled {pooled_rate:.0}/s, PR 4 {pr4_rate:.0}/s)"
    );
}
