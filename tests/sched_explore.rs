//! Schedule-explorer sweep over the public STM API: four oracles driven
//! through `omt-sched`'s bounded-preemption DFS and seeded random
//! walks, plus the frozen schedules of the cross-thread bugs this
//! explorer found (see DESIGN.md §4.8).
//!
//! Scenario ground rules (from the explorer's scope): serial-mode
//! escalation is disabled (`serial_after_aborts: None` — the exclusive
//! gate held across schedule points would deadlock the baton),
//! contention management is `AbortSelf` (no cooperative doom-wait
//! spins), and retries are bounded, so every virtual thread terminates
//! under every schedule.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use omt_heap::{ClassDesc, Heap, ObjRef, Word};
use omt_sched::{Execution, Explorer, RunOutcome, SchedConfig, ThreadBody};
use omt_stm::failpoint::{sites, FailAction, Trigger};
use omt_stm::{CmPolicy, Stm, StmConfig, StmWord, TxError};

/// STM configuration every scenario uses (see module docs).
fn scenario_config() -> StmConfig {
    StmConfig {
        cm: CmPolicy::AbortSelf,
        serial_after_aborts: None,
        max_retries: 6,
        backoff_cap_log2: 1,
        ..StmConfig::default()
    }
}

fn explorer(max_schedules: usize, random_walks: usize) -> Explorer {
    Explorer::new(SchedConfig {
        preemption_bound: 2,
        max_schedules,
        random_walks,
        seed: 0x5EED,
        max_steps: 800,
        minimize: true,
    })
}

fn new_cells(n: usize, init: &[i64]) -> (Arc<Heap>, Vec<ObjRef>) {
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["a", "b"]));
    let objs: Vec<ObjRef> = (0..n).map(|_| heap.alloc(class).unwrap()).collect();
    for (obj, v) in objs.iter().zip(init) {
        heap.store(*obj, 0, Word::from_scalar(*v));
    }
    (heap, objs)
}

fn scalar(heap: &Heap, obj: ObjRef, field: usize) -> i64 {
    heap.load(obj, field).as_scalar().expect("scalar field")
}

/// Coverage line per oracle (visible with `--nocapture`; the measured
/// numbers are quoted in EXPERIMENTS.md).
fn report_coverage(name: &str, report: &omt_sched::ExploreReport) {
    eprintln!(
        "{name}: {} schedules ({} dfs{}, {} random), {} step-limited",
        report.schedules_run,
        report.dfs_schedules,
        if report.exhausted { " — exhausted" } else { "" },
        report.random_schedules,
        report.step_limited,
    );
}

/// All orderings of `items` (≤ 3! here, so brute force is fine).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (k, &head) in items.iter().enumerate() {
        let rest: Vec<usize> =
            items.iter().enumerate().filter(|&(j, _)| j != k).map(|(_, &x)| x).collect();
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Oracle 1: serializability of a 3-thread bank against the sequential
// reference — the committed transfers, applied in *some* order to the
// initial balances, must reproduce the final heap exactly.
// ---------------------------------------------------------------------

const BANK_INIT: [i64; 3] = [8, 4, 2];

/// Thread `i`'s transfer: move half of account `i` into account
/// `(i+1) % 3`. Integer division makes the transfers non-commutative,
/// so distinct commit orders give distinct final states.
fn bank_model_apply(balances: &mut [i64; 3], i: usize) {
    let amount = balances[i] / 2;
    balances[i] -= amount;
    balances[(i + 1) % 3] += amount;
}

fn bank_factory() -> Execution {
    let (heap, accts) = new_cells(3, &BANK_INIT);
    let stm = Arc::new(Stm::with_config(heap.clone(), scenario_config()));
    let committed = Arc::new(Mutex::new([false; 3]));

    let threads: Vec<ThreadBody> = (0..3)
        .map(|i| {
            let stm = stm.clone();
            let accts = accts.clone();
            let committed = committed.clone();
            Box::new(move || {
                let src = accts[i];
                let dst = accts[(i + 1) % 3];
                let result = stm.try_atomically(|tx| {
                    let s = tx.read(src, 0)?.as_scalar().unwrap();
                    let d = tx.read(dst, 0)?.as_scalar().unwrap();
                    let amount = s / 2;
                    tx.write(src, 0, Word::from_scalar(s - amount))?;
                    tx.write(dst, 0, Word::from_scalar(d + amount))?;
                    Ok(())
                });
                if result.is_ok() {
                    committed.lock().unwrap()[i] = true;
                }
            }) as ThreadBody
        })
        .collect();

    let check = Box::new(move || {
        let finals: Vec<i64> = accts.iter().map(|&a| scalar(&heap, a, 0)).collect();
        if finals.iter().sum::<i64>() != BANK_INIT.iter().sum::<i64>() {
            return Err(format!("money not conserved: {finals:?}"));
        }
        let done: Vec<usize> = (0..3).filter(|&i| committed.lock().unwrap()[i]).collect();
        let serializable = permutations(&done).iter().any(|order| {
            let mut model = BANK_INIT;
            for &i in order {
                bank_model_apply(&mut model, i);
            }
            model[..] == finals[..]
        });
        if serializable {
            Ok(())
        } else {
            Err(format!("no sequential order of committed transfers {done:?} yields {finals:?}"))
        }
    });
    Execution { threads, check }
}

#[test]
fn oracle_bank_serializability() {
    let report = explorer(4_000, 2_500).explore(&bank_factory);
    report_coverage("bank", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0, "scenario must be schedule-deterministic");
    assert!(report.schedules_run >= 2_500, "got {}", report.schedules_run);
}

// ---------------------------------------------------------------------
// Oracle 2: opacity / zombie containment — writers preserve x + y == C;
// a reader transaction may observe torn state mid-flight (this is a
// direct-update STM), but a *committed* read snapshot must be
// consistent.
// ---------------------------------------------------------------------

fn opacity_factory() -> Execution {
    const C: i64 = 10;
    let (heap, cells) = new_cells(2, &[C, 0]);
    let (x, y) = (cells[0], cells[1]);
    let stm = Arc::new(Stm::with_config(
        heap.clone(),
        StmConfig { validate_every: Some(1), ..scenario_config() },
    ));
    let snapshots = Arc::new(Mutex::new(Vec::<(i64, i64)>::new()));

    let mover = |from: ObjRef, to: ObjRef| {
        let stm = stm.clone();
        Box::new(move || {
            let _ = stm.try_atomically(|tx| {
                let f = tx.read(from, 0)?.as_scalar().unwrap();
                let t = tx.read(to, 0)?.as_scalar().unwrap();
                tx.write(from, 0, Word::from_scalar(f - 1))?;
                tx.write(to, 0, Word::from_scalar(t + 1))?;
                Ok(())
            });
        }) as ThreadBody
    };
    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let snapshots = snapshots.clone();
        move || {
            let mut tx = stm.begin();
            let pair = (|| -> Result<(i64, i64), TxError> {
                let a = tx.read(x, 0)?.as_scalar().unwrap();
                let b = tx.read(y, 0)?.as_scalar().unwrap();
                Ok((a, b))
            })();
            match pair {
                Ok(pair) => {
                    if tx.commit().is_ok() {
                        snapshots.lock().unwrap().push(pair);
                    }
                }
                Err(_) => tx.abort(),
            }
        }
    });

    let threads: Vec<ThreadBody> = vec![reader, mover(x, y), mover(y, x)];
    let check = Box::new(move || {
        for &(a, b) in snapshots.lock().unwrap().iter() {
            if a + b != C {
                return Err(format!("zombie snapshot committed: {a} + {b} != {C}"));
            }
        }
        let (a, b) = (scalar(&heap, x, 0), scalar(&heap, y, 0));
        if a + b != C {
            return Err(format!("writers broke the invariant: {a} + {b} != {C}"));
        }
        Ok(())
    });
    Execution { threads, check }
}

#[test]
fn oracle_opacity_zombie_containment() {
    let report = explorer(3_000, 2_000).explore(&opacity_factory);
    report_coverage("opacity", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0);
    assert!(report.schedules_run >= 2_000, "got {}", report.schedules_run);
}

// ---------------------------------------------------------------------
// Oracle 3: a transaction killed by the Kill failpoint mid-commit
// (updates in place, ownership held) must be recovered to its exact
// pre-state, under every interleaving with a racing contender.
// ---------------------------------------------------------------------

fn kill_recovery_factory() -> Execution {
    let (heap, cells) = new_cells(1, &[7]);
    let obj = cells[0];
    heap.store(obj, 1, Word::from_scalar(5));
    let stm = Arc::new(Stm::with_config(heap.clone(), scenario_config()));
    // Failpoints are global, so whichever transaction reaches its
    // commit's release phase first dies there — after validation, with
    // its in-place stores maximally visible. The oracle is symmetric:
    // either writer may be the victim.
    stm.failpoints().set(sites::COMMIT_BEFORE_RELEASE, FailAction::Kill, Trigger::Once);
    let committed = Arc::new(Mutex::new([false; 2]));

    // Writer `i` updates field `i` of the shared object (same object,
    // so they contend on ownership) and retries until it either commits
    // or is killed. Both loops terminate: the Kill fires exactly once,
    // and the survivor recovers the orphan and goes through.
    let threads: Vec<ThreadBody> = [99, 6]
        .into_iter()
        .enumerate()
        .map(|(i, value)| {
            let stm = stm.clone();
            let committed = committed.clone();
            Box::new(move || loop {
                let mut tx = stm.begin();
                match tx.read(obj, i).and_then(|_| tx.write(obj, i, Word::from_scalar(value))) {
                    Ok(()) => match tx.commit() {
                        Ok(()) => {
                            committed.lock().unwrap()[i] = true;
                            break;
                        }
                        // Simulated thread death while holding
                        // ownership: this thread is gone, it must not
                        // retry.
                        Err(TxError::DOOMED) => break,
                        Err(_) => continue,
                    },
                    Err(_) => tx.abort(),
                }
            }) as ThreadBody
        })
        .collect();

    let check = Box::new(move || {
        // The check runs on the harness thread (no hook installed).
        // Optimistic reads never recover orphans, so acquire the object
        // for update — that path recovers if nobody else did — then
        // abort cleanly (no stores, so values and version are kept).
        let mut cleanup = stm.begin();
        cleanup.open_for_update(obj).expect("cleanup acquisition");
        cleanup.abort();
        let s = stm.stats();
        if s.txs_killed != 1 {
            return Err(format!("expected exactly one kill, saw {}", s.txs_killed));
        }
        if s.orphans_recovered != 1 {
            return Err(format!("expected exactly one recovery, saw {}", s.orphans_recovered));
        }
        if stm.registry().orphan_count() != 0 {
            return Err("orphan left unrecovered".into());
        }
        let done = *committed.lock().unwrap();
        if done[0] && done[1] {
            return Err("both writers committed, yet one must have been killed".into());
        }
        let expected = [if done[0] { 99 } else { 7 }, if done[1] { 6 } else { 5 }];
        let finals = [scalar(&heap, obj, 0), scalar(&heap, obj, 1)];
        if finals != expected {
            return Err(format!(
                "state {finals:?} != {expected:?} for committed set {done:?} \
                 (killed writer's effects must be rolled back exactly)"
            ));
        }
        if StmWord::decode(heap.header_atomic(obj).load(Ordering::SeqCst)).is_owned() {
            return Err("header still owned at quiescence".into());
        }
        Ok(())
    });
    Execution { threads, check }
}

#[test]
fn oracle_kill_recovery_restores_pre_state() {
    let report = explorer(2_500, 1_500).explore(&kill_recovery_factory);
    report_coverage("kill-recovery", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0);
    assert!(report.schedules_run >= 1_500, "got {}", report.schedules_run);
}

// ---------------------------------------------------------------------
// Oracle 4: two-clock bookkeeping — at quiescence the acquisition
// clock equals the number of successful acquisitions and the
// commit-sequence clock equals the number of update-publishing commits,
// under every interleaving.
// ---------------------------------------------------------------------

fn quiescence_factory() -> Execution {
    let (heap, cells) = new_cells(2, &[0, 0]);
    let stm = Arc::new(Stm::with_config(heap.clone(), scenario_config()));
    let commits = Arc::new(AtomicUsize::new(0));

    let writer = |obj: ObjRef| {
        let stm = stm.clone();
        let commits = commits.clone();
        Box::new(move || {
            let result = stm.try_atomically(|tx| {
                let v = tx.read(obj, 0)?.as_scalar().unwrap();
                tx.write(obj, 0, Word::from_scalar(v + 1))
            });
            if result.is_ok() {
                commits.fetch_add(1, Ordering::SeqCst);
            }
        }) as ThreadBody
    };
    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let cells = cells.clone();
        move || {
            let mut tx = stm.begin();
            let ok = tx.read(cells[0], 0).is_ok() && tx.read(cells[1], 0).is_ok();
            if ok {
                let _ = tx.commit();
            } else {
                tx.abort();
            }
        }
    });

    let threads: Vec<ThreadBody> = vec![reader, writer(cells[0]), writer(cells[1])];
    let check = Box::new(move || {
        let s = stm.stats();
        if stm.acquire_clock() != s.acquires {
            return Err(format!(
                "acquisition clock {} != successful acquisitions {}",
                stm.acquire_clock(),
                s.acquires
            ));
        }
        let published = commits.load(Ordering::SeqCst) as u64;
        if stm.commit_clock() != published {
            return Err(format!(
                "commit clock {} != update-publishing commits {published}",
                stm.commit_clock()
            ));
        }
        if s.validation_fast_path > s.validations {
            return Err("more fast paths than validations".into());
        }
        Ok(())
    });
    Execution { threads, check }
}

#[test]
fn oracle_two_clock_quiescence() {
    let report = explorer(2_500, 1_500).explore(&quiescence_factory);
    report_coverage("quiescence", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert_eq!(report.divergences, 0);
    assert!(report.schedules_run >= 1_500, "got {}", report.schedules_run);
}

// ---------------------------------------------------------------------
// Frozen regression schedules: the minimized counterexamples the
// explorer produced for the two cross-thread bugs this repository has
// fixed, replayed against the fixed tree. The step-by-step traces are
// documented in DESIGN.md §4.8. (The failing form of each schedule is
// pinned in `crates/stm/src/tests.rs::sched_regressions`, where
// test-only knobs can revert each fix.)
// ---------------------------------------------------------------------

/// One reader racing one aborting writer (the scenario both frozen
/// schedules run against). No transaction ever commits an update, so a
/// reader that commits a non-zero value observed rolled-back state.
fn zombie_read_factory() -> Execution {
    let (heap, cells) = new_cells(1, &[0]);
    let obj = cells[0];
    let stm = Arc::new(Stm::with_config(heap.clone(), scenario_config()));
    let committed_read = Arc::new(Mutex::new(None::<i64>));

    let reader: ThreadBody = Box::new({
        let stm = stm.clone();
        let out = committed_read.clone();
        move || {
            let mut tx = stm.begin();
            match tx.read(obj, 0) {
                Ok(word) => {
                    let v = word.as_scalar().unwrap();
                    if tx.commit().is_ok() {
                        *out.lock().unwrap() = Some(v);
                    }
                }
                Err(_) => tx.abort(),
            }
        }
    });
    let writer: ThreadBody = Box::new({
        let stm = stm.clone();
        move || {
            let mut tx = stm.begin();
            let _ = tx.write(obj, 0, Word::from_scalar(1));
            tx.abort();
        }
    });
    let check = Box::new(move || match *committed_read.lock().unwrap() {
        Some(v) if v != 0 => {
            Err(format!("zombie commit: reader committed {v} from an aborted writer"))
        }
        _ => Ok(()),
    });
    Execution { threads: vec![reader, writer], check }
}

/// PR 3's two-clock bug: the reader validates while the aborting writer
/// still owns the cell; with the acquisition-clock check reverted, the
/// (quiescent) commit clock alone lets the fast path skip the scan.
const TWO_CLOCK_FAST_PATH_SCHEDULE: &[usize] = &[0, 0, 1, 1, 1, 1, 0, 0];

/// This PR's abort-ABA bug: the reader's data load lands on the
/// writer's in-place store, and its validation scan lands after the
/// abort released the header — at the *original* version before the
/// fix, making the stale read entry validate.
const ABORT_VERSION_ABA_SCHEDULE: &[usize] = &[0, 0, 1, 1, 1, 1, 0, 0, 1, 1];

#[test]
fn frozen_two_clock_schedule_passes_on_the_fixed_tree() {
    let outcome =
        explorer(1, 0).replay(&zombie_read_factory, &TWO_CLOCK_FAST_PATH_SCHEDULE.to_vec());
    assert_eq!(outcome, RunOutcome::Pass);
}

#[test]
fn frozen_abort_aba_schedule_passes_on_the_fixed_tree() {
    let outcome = explorer(1, 0).replay(&zombie_read_factory, &ABORT_VERSION_ABA_SCHEDULE.to_vec());
    assert_eq!(outcome, RunOutcome::Pass);
}

#[test]
fn zombie_read_scenario_is_clean_under_exploration() {
    let report = Explorer::new(SchedConfig {
        preemption_bound: 3,
        random_walks: 500,
        ..SchedConfig::default()
    })
    .explore(&zombie_read_factory);
    report_coverage("zombie-read", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert!(report.exhausted, "two-thread space must be fully enumerated");
}

// ---------------------------------------------------------------------
// Version-wrap epoch abort (satellite S1): with a tiny version width,
// a writer commit wraps the version counter and bumps the global
// epoch; a reader that opened the cell before the wrap must abort with
// TxError::EPOCH — never validate across the renumbering.
// ---------------------------------------------------------------------

#[test]
fn concurrent_reader_aborts_with_epoch_across_a_version_wrap() {
    let epoch_aborts = Arc::new(AtomicUsize::new(0));
    let factory = {
        let epoch_aborts = epoch_aborts.clone();
        move || {
            let (heap, cells) = new_cells(1, &[0]);
            let obj = cells[0];
            let stm = Arc::new(Stm::with_config(
                heap.clone(),
                StmConfig { version_bits: 4, ..scenario_config() },
            ));
            // Drive the cell to the maximum encodable version (15): the
            // next committed update must wrap to 0 and bump the epoch.
            for v in 1..=15i64 {
                let mut tx = stm.begin();
                tx.write(obj, 0, Word::from_scalar(v)).unwrap();
                tx.commit().unwrap();
            }
            assert_eq!(
                StmWord::decode(heap.header_atomic(obj).load(Ordering::SeqCst)),
                StmWord::Version(15)
            );

            let observed = Arc::new(Mutex::new(None::<Result<i64, TxError>>));
            let reader: ThreadBody = Box::new({
                let stm = stm.clone();
                let observed = observed.clone();
                move || {
                    let mut tx = stm.begin();
                    let result = match tx.read(obj, 0) {
                        Ok(word) => {
                            let v = word.as_scalar().unwrap();
                            tx.commit().map(|()| v)
                        }
                        Err(e) => {
                            tx.abort();
                            Err(e)
                        }
                    };
                    *observed.lock().unwrap() = Some(result);
                }
            });
            let writer: ThreadBody = Box::new({
                let stm = stm.clone();
                move || {
                    let _ = stm.try_atomically(|tx| tx.write(obj, 0, Word::from_scalar(100)));
                }
            });
            let epoch_aborts = epoch_aborts.clone();
            let check = Box::new(move || {
                assert_eq!(stm.epoch(), 1, "the wrapping commit must bump the epoch");
                match observed.lock().unwrap().take() {
                    Some(Ok(v)) if v != 15 && v != 100 => {
                        Err(format!("reader committed impossible value {v}"))
                    }
                    Some(Err(TxError::EPOCH)) => {
                        epoch_aborts.fetch_add(1, Ordering::SeqCst);
                        Ok(())
                    }
                    _ => Ok(()),
                }
            });
            Execution { threads: vec![reader, writer], check }
        }
    };
    let report = explorer(800, 200).explore(&factory);
    report_coverage("epoch-wrap", &report);
    assert!(report.passed(), "{}", report.counterexample.unwrap());
    assert!(
        epoch_aborts.load(Ordering::SeqCst) > 0,
        "some schedule must drive the reader across the wrap into an EPOCH abort"
    );
}
