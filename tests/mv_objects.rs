//! End-to-end checks for multi-version objects (DESIGN.md §4.13):
//! bounded per-word version chains that serve snapshot readers the
//! value that *was* current at `read_ver` when the word has already
//! moved on — turning the read-write-mix aborts that timestamp
//! extension cannot save into abort-free chain hits. The headline
//! property — reader aborts drop to zero at `mv_depth >= 1` on a
//! workload where depth 0 demonstrably aborts — is what the E5e
//! experiment measures at scale.

use std::sync::{Arc, Barrier};
use std::thread;

use omt::heap::{ClassDesc, Heap, ObjRef, RootSet, Word};
use omt::stm::{Stm, StmConfig, TxError};

fn mv_config(depth: usize) -> StmConfig {
    StmConfig {
        snapshot_reads: true,
        mv_depth: depth,
        // The zero-abort guarantee needs foreign owners waited out, not
        // fallen back from: give the bounded wait real headroom.
        doom_wait_spins: 1 << 20,
        ..StmConfig::default()
    }
}

fn setup(config: StmConfig, cells: usize) -> (Arc<Heap>, Arc<Stm>, Vec<ObjRef>) {
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
    let stm = Arc::new(Stm::with_config(heap.clone(), config));
    let cells: Vec<_> = (0..cells).map(|_| heap.alloc(class).unwrap()).collect();
    for (i, c) in cells.iter().enumerate() {
        heap.store(*c, 0, Word::from_scalar(i as i64));
    }
    (heap, stm, cells)
}

/// The deterministic teeth of the feature, single-threaded: a reader
/// whose read set straddles a commit that moved *both* cells it cares
/// about. Timestamp extension cannot save it (the already-read cell is
/// stale at any newer snapshot), so without chains this aborts; with
/// them, the second read is served the old value from the chain and
/// the transaction commits clean at its original snapshot.
fn straddled_pair(depth: usize) -> Result<(i64, i64), TxError> {
    let (_heap, stm, cells) = setup(mv_config(depth), 2);
    let (x, y) = (cells[0], cells[1]);

    let mut tx = stm.begin();
    let vx = tx.read(x, 0)?.as_scalar().unwrap();
    // A foreign commit moves both cells after x was read.
    stm.atomically(|t| {
        t.write(x, 0, Word::from_scalar(100))?;
        t.write(y, 0, Word::from_scalar(101))
    });
    let vy = tx.read(y, 0)?.as_scalar().unwrap();
    tx.commit()?;
    Ok((vx, vy))
}

#[test]
fn straddled_pair_aborts_without_chains() {
    assert_eq!(straddled_pair(0), Err(TxError::INVALID));
}

#[test]
fn straddled_pair_is_served_old_values_with_chains() {
    assert_eq!(straddled_pair(1), Ok((0, 1)), "both reads at the original snapshot");
}

/// A chain-pinned transaction is read-only: after being served a
/// retired version it may not acquire words (a write published past
/// the pinned snapshot would be a lost update). The write attempt
/// aborts; the retry runs at a fresh snapshot and sees current state.
#[test]
fn chain_pinned_transaction_cannot_upgrade_to_writer() {
    let (_heap, stm, cells) = setup(mv_config(1), 2);
    let (x, y) = (cells[0], cells[1]);

    let mut tx = stm.begin();
    tx.read(x, 0).unwrap();
    stm.atomically(|t| {
        t.write(x, 0, Word::from_scalar(100))?;
        t.write(y, 0, Word::from_scalar(101))
    });
    // Chain-served: the transaction is now pinned below the commit.
    assert_eq!(tx.read(y, 0).unwrap().as_scalar().unwrap(), 1);
    assert_eq!(tx.open_for_update(y), Err(TxError::INVALID));
    tx.abort();

    // The retry (fresh snapshot, unpinned) writes fine.
    stm.atomically(|t| {
        let v = t.read(y, 0)?.as_scalar().unwrap();
        assert_eq!(v, 101);
        t.write(y, 0, Word::from_scalar(v + 1))
    });
}

/// Cross-thread read-write-mix storm, run in deterministic lock-step
/// so exactly one churn commit lands inside every reader's straddle
/// window (which is why `mv_depth = 1` suffices). Returns
/// `(readonly_commits, readonly_aborts, mv_read_hits)`.
fn rw_mix_storm(depth: usize) -> (u64, u64, u64) {
    const READERS: usize = 4;
    const ROUNDS: usize = 40;

    let (_heap, stm, cells) = setup(mv_config(depth), 2);
    let (x, y) = (cells[0], cells[1]);
    let barrier = Barrier::new(READERS + 1);

    thread::scope(|s| {
        s.spawn(|| {
            // Writer: one churn of both cells per round, strictly
            // between the readers' pin (read of x) and their read of y.
            for _ in 0..ROUNDS {
                barrier.wait();
                barrier.wait();
                stm.atomically(|t| {
                    let vx = t.read(x, 0)?.as_scalar().unwrap();
                    t.write(x, 0, Word::from_scalar(vx + 2))?;
                    let vy = t.read(y, 0)?.as_scalar().unwrap();
                    t.write(y, 0, Word::from_scalar(vy + 2))
                });
                barrier.wait();
            }
        });
        for _ in 0..READERS {
            s.spawn(|| {
                for _ in 0..ROUNDS {
                    barrier.wait();
                    let mut tx = stm.begin();
                    let round = (|| {
                        let vx = tx.read(x, 0)?.as_scalar().unwrap();
                        barrier.wait();
                        // The churn commits here.
                        barrier.wait();
                        let vy = tx.read(y, 0)?.as_scalar().unwrap();
                        // Whatever the round, a consistent snapshot
                        // keeps the two cells exactly one apart.
                        assert_eq!(vy, vx + 1, "torn snapshot: x={vx}, y={vy}");
                        Ok::<_, TxError>(())
                    })();
                    match round {
                        Ok(()) => {
                            let _ = tx.commit();
                        }
                        Err(_) => tx.abort(),
                    }
                }
            });
        }
    });

    let stats = stm.stats();
    (stats.readonly_commits, stats.readonly_aborts, stats.mv_read_hits)
}

#[test]
fn rw_mix_storm_reader_aborts_are_zero_with_chains() {
    let (commits, aborts, hits) = rw_mix_storm(1);
    assert_eq!(aborts, 0, "chains must make straddling readers abort-free");
    assert_eq!(commits, 4 * 40);
    assert!(hits >= 4 * 40, "every straddled read of y is a chain hit (got {hits})");
}

#[test]
fn rw_mix_storm_reader_aborts_are_nonzero_without_chains() {
    let (commits, aborts, hits) = rw_mix_storm(0);
    assert_eq!(aborts, 4 * 40, "every straddling round must fail its extension");
    assert_eq!(commits, 0);
    assert_eq!(hits, 0, "depth 0 never consults a chain");
}

/// GC-trim versus chain-walk: a collection while a reader is pinned
/// must not reclaim the chain entries that reader can still be served
/// (its published `read_ver` is the trim floor); once no reader is in
/// flight, the next collection drains the quiesced entries.
#[test]
fn gc_trim_respects_pinned_readers_and_drains_after() {
    let (heap, stm, cells) = setup(mv_config(4), 2);
    let (x, y) = (cells[0], cells[1]);
    let mut roots = RootSet::new();
    roots.push(x);
    roots.push(y);

    // Pin a reader, then retire two generations of both cells.
    let mut reader = stm.begin();
    reader.read(x, 0).unwrap();
    for i in 0..2 {
        stm.atomically(|t| {
            t.write(x, 0, Word::from_scalar(10 + i))?;
            t.write(y, 0, Word::from_scalar(20 + i))
        });
    }

    // Collect mid-flight: every retired entry is still reachable by
    // the pinned reader, so nothing may be trimmed.
    heap.collect(&roots, &[stm.gc_participant()]);
    assert_eq!(stm.stats().mv_trims, 0, "entries serving a pinned reader must survive GC");

    // The reader is indeed served from the surviving chain.
    assert_eq!(reader.read(y, 0).unwrap().as_scalar().unwrap(), 1);
    reader.commit().unwrap();

    // No reader in flight: the floor rises to the commit clock and the
    // quiesced entries drain.
    heap.collect(&roots, &[stm.gc_participant()]);
    let stats = stm.stats();
    assert!(stats.mv_trims >= 4, "two generations x two fields quiesced (got {})", stats.mv_trims);
    assert_eq!(stats.readonly_aborts, 0);
}

/// Savepoint audit (DESIGN.md §4.13): a partial rollback must leave no
/// trace in the chains. Only the pre-transaction value is retired at
/// commit — the value written and rolled back inside the savepoint was
/// never committed state and must not be observable at any `read_ver`.
#[test]
fn savepoint_rollback_never_leaks_into_the_chain() {
    let (_heap, stm, cells) = setup(mv_config(4), 2);
    let (x, y) = (cells[0], cells[1]);

    // Pin a reader before the writer so its straddled read of x is
    // answered from the chain after the writer commits.
    let mut reader = stm.begin();
    reader.read(y, 0).unwrap();

    let mut writer = stm.begin();
    writer.write(x, 0, Word::from_scalar(666)).unwrap();
    let sp = writer.savepoint();
    writer.write(x, 0, Word::from_scalar(777)).unwrap();
    writer.rollback_to(sp);
    writer.write(x, 0, Word::from_scalar(42)).unwrap();
    writer.commit().unwrap();

    // The reader's snapshot predates the commit: the chain serves the
    // pre-transaction value 0 — never 666 or 777, which existed only
    // inside the writer.
    assert_eq!(reader.read(x, 0).unwrap().as_scalar().unwrap(), 0);
    reader.commit().unwrap();

    // At a fresh snapshot the committed value is read in place.
    assert_eq!(stm.atomically(|t| t.read(x, 0)).as_scalar().unwrap(), 42);
    let stats = stm.stats();
    assert_eq!(stats.mv_read_hits, 1);
    assert_eq!(stats.readonly_aborts, 0);
}

/// Depth 0 must be byte-identical to the pre-chain runtime: the same
/// deterministic workload — including the straddle that forces an
/// extension failure — produces exactly the same statistics on two
/// fresh instances, with every chain counter pinned at zero.
#[test]
fn depth_zero_stats_are_reproducible_and_chain_free() {
    let run = || {
        let (_heap, stm, cells) = setup(mv_config(0), 2);
        let (x, y) = (cells[0], cells[1]);
        // A clean extension (empty read set), a failed one (straddle),
        // and a plain read-write round trip.
        let mut tx = stm.begin();
        stm.atomically(|t| t.write(x, 0, Word::from_scalar(7)));
        assert_eq!(tx.read(x, 0).unwrap().as_scalar().unwrap(), 7);
        tx.commit().unwrap();
        assert_eq!(straddle_result(&stm, x, y), Err(TxError::INVALID));
        stm.atomically(|t| {
            let v = t.read(y, 0)?.as_scalar().unwrap();
            t.write(y, 0, Word::from_scalar(v + 1))
        });
        stm.stats()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "depth-0 runs must be statistically indistinguishable");
    assert_eq!(a.mv_read_hits, 0);
    assert_eq!(a.mv_chain_misses, 0, "depth 0 never even walks a chain");
    assert_eq!(a.mv_trims, 0);
}

fn straddle_result(stm: &Stm, x: ObjRef, y: ObjRef) -> Result<(), TxError> {
    let mut tx = stm.begin();
    tx.read(x, 0)?;
    stm.atomically(|t| {
        let vx = t.read(x, 0)?.as_scalar().unwrap();
        t.write(x, 0, Word::from_scalar(vx + 1))?;
        let vy = t.read(y, 0)?.as_scalar().unwrap();
        t.write(y, 0, Word::from_scalar(vy + 1))
    });
    let r = tx.read(y, 0).map(|_| ());
    match r {
        Ok(()) => tx.commit(),
        Err(e) => {
            tx.abort();
            Err(e)
        }
    }
}
