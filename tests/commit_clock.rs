//! End-to-end checks for the commit-sequence clock: read-only load must
//! validate entirely through the O(1) fast path, the clock must count
//! exactly the update-publishing commits (and nothing else), concurrent
//! readers must stay consistent while writers move the clock, and the
//! opt-out knob must restore the unconditional full-rescan baseline.

use std::sync::{mpsc, Arc};
use std::thread;

use omt::heap::{ClassDesc, Heap, ObjRef, Word};
use omt::stm::{ClockMode, Stm, StmConfig, TxError};

const CELLS: usize = 16;
const READERS: usize = 4;
const READS_PER_THREAD: usize = 200;

fn setup(config: StmConfig) -> (Arc<Heap>, Arc<Stm>, Vec<ObjRef>) {
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
    let stm = Arc::new(Stm::with_config(heap.clone(), config));
    // Raw stores: pre-filling outside the STM keeps the clock at zero.
    let cells: Vec<_> = (0..CELLS).map(|_| heap.alloc(class).unwrap()).collect();
    for (i, c) in cells.iter().enumerate() {
        heap.store(*c, 0, Word::from_scalar(i as i64));
    }
    (heap, stm, cells)
}

fn audit(stm: &Stm, cells: &[ObjRef]) -> i64 {
    stm.atomically(|tx| {
        let mut sum = 0;
        for c in cells {
            sum += tx.read(*c, 0)?.as_scalar().unwrap();
        }
        Ok(sum)
    })
}

#[test]
fn read_only_load_fast_paths_every_validation() {
    let (_heap, stm, cells) = setup(StmConfig::default());
    let expected: i64 = (0..CELLS as i64).sum();

    thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                for _ in 0..READS_PER_THREAD {
                    assert_eq!(audit(&stm, &cells), expected);
                }
            });
        }
    });

    let stats = stm.stats();
    assert_eq!(stats.commits, (READERS * READS_PER_THREAD) as u64);
    assert_eq!(stm.commit_clock(), 0, "no update was ever published");
    assert_eq!(
        stats.validation_fast_path, stats.validations,
        "with the clock parked, every validation is O(1)"
    );
    assert_eq!(stats.validation_entries_scanned, 0);
    assert_eq!(stats.validation_fast_path_rate(), 1.0);
    assert_eq!(stats.entries_scanned_per_commit(), 0.0);
}

#[test]
fn clock_counts_exactly_the_update_publishing_commits() {
    let (heap, stm, cells) = setup(StmConfig::default());
    const TRANSFERS: usize = 300;

    // One writer moves value between two cells (total invariant), many
    // readers audit the sum concurrently.
    thread::scope(|s| {
        s.spawn(|| {
            for i in 0..TRANSFERS {
                let (from, to) = (cells[i % CELLS], cells[(i + 1) % CELLS]);
                stm.atomically(|tx| {
                    let a = tx.read(from, 0)?.as_scalar().unwrap();
                    let b = tx.read(to, 0)?.as_scalar().unwrap();
                    tx.write(from, 0, Word::from_scalar(a - 1))?;
                    tx.write(to, 0, Word::from_scalar(b + 1))
                });
            }
        });
        for _ in 0..READERS {
            s.spawn(|| {
                let expected: i64 = (0..CELLS as i64).sum();
                for _ in 0..READS_PER_THREAD {
                    assert_eq!(audit(&stm, &cells), expected, "torn audit");
                }
            });
        }
    });

    // Aborted attempts and read-only commits never bump the clock; each
    // committed transfer bumps it exactly once.
    assert_eq!(stm.commit_clock(), TRANSFERS as u64);
    let total: i64 = cells.iter().map(|c| heap.load(*c, 0).as_scalar().unwrap()).sum();
    assert_eq!(total, (0..CELLS as i64).sum::<i64>());
}

/// A reader that opened an object while it was quiescent must abort if
/// a concurrent writer acquired it and stored in place — even though
/// the writer never committed and the commit clock never moved. This
/// is the direct-update dirty-read hazard the acquisition clock
/// exists for: without it, the fast path would commit the reader on
/// uncommitted data.
#[test]
fn uncommitted_in_place_store_aborts_the_reader() {
    let (_heap, stm, cells) = setup(StmConfig::default());
    let x = cells[0];

    let (to_writer, writer_rx) = mpsc::channel::<()>();
    let (to_reader, reader_rx) = mpsc::channel::<()>();

    thread::scope(|s| {
        let writer_stm = stm.clone();
        s.spawn(move || {
            // W: acquire x and store in place, but do not commit.
            let mut writer = writer_stm.begin();
            writer_rx.recv().unwrap();
            writer.write(x, 0, Word::from_scalar(999)).unwrap();
            to_reader.send(()).unwrap();
            // Hold the uncommitted store across the reader's commit.
            writer_rx.recv().unwrap();
            writer.abort();
        });

        // R: open x while quiescent (observes a Version word).
        let mut reader = stm.begin();
        assert_eq!(reader.read(x, 0).unwrap().as_scalar(), Some(0));

        // Sequence W's acquisition + in-place store after R's open.
        to_writer.send(()).unwrap();
        reader_rx.recv().unwrap();

        // The channel handoff makes the dirty store visible.
        assert_eq!(reader.load_direct(x, 0).as_scalar(), Some(999), "dirty read");
        assert_eq!(stm.commit_clock(), 0, "nothing committed");
        assert_eq!(reader.commit(), Err(TxError::INVALID), "must not commit dirty data");

        to_writer.send(()).unwrap();
    });

    let stats = stm.stats();
    assert_eq!(stats.aborts_invalid, 1);
}

/// GV5 deferred stamps lead the global commit clock (DESIGN.md §4.11):
/// a writer publishes headers carrying a stamp the clock has not
/// reached. A snapshot reader that meets such a header must *raise*
/// the clock and extend its read version in place — not abort, and
/// certainly not admit the value without revalidating what it already
/// read. Channel handoffs pin the cross-thread order deterministically.
#[test]
fn deferred_leading_stamp_forces_a_raise_and_extension_not_an_abort() {
    let (_heap, stm, cells) = setup(StmConfig {
        snapshot_reads: true,
        clock_mode: ClockMode::Deferred,
        ..StmConfig::default()
    });
    let (x, y) = (cells[0], cells[1]);

    let (to_writer, writer_rx) = mpsc::channel::<()>();
    let (to_reader, reader_rx) = mpsc::channel::<()>();

    thread::scope(|s| {
        let writer_stm = stm.clone();
        s.spawn(move || {
            writer_rx.recv().unwrap();
            // W: commit an update to y. The release phase stamps y's
            // header with a deferred stamp; nothing raises the global
            // word, so the stamp strictly leads it.
            writer_stm.atomically(|tx| tx.write(y, 0, Word::from_scalar(7)));
            to_reader.send(()).unwrap();
        });

        // R: snapshot-read x at read_ver = 0, before W runs.
        let mut reader = stm.begin();
        assert_eq!(reader.read(x, 0).unwrap().as_scalar(), Some(0));

        to_writer.send(()).unwrap();
        reader_rx.recv().unwrap();

        // W has committed, yet the global clock still reads zero: y's
        // header carries a stamp from the future of the clock.
        assert_eq!(stm.commit_clock(), 0, "deferred stamps must not touch the global word");

        // R meets the leading stamp. The sound path raises the clock to
        // cover it, revalidates x (unmoved), and returns the new value
        // under the extended read version.
        assert_eq!(reader.read(y, 0).unwrap().as_scalar(), Some(7), "extension must admit y");
        assert!(stm.commit_clock() > 0, "the reader must have raised the clock past the stamp");
        assert_eq!(reader.commit(), Ok(()), "a consistent extended snapshot commits");
    });

    let stats = stm.stats();
    assert_eq!(stats.ts_extensions, 1, "exactly one extension (at the leading stamp)");
    assert_eq!(stats.extension_failures, 0);
    assert_eq!(stats.readonly_aborts, 0, "the reader must extend, not abort");
    assert_eq!(stats.clock_cas_failures, 0, "deferred stamping never CAS-contends");
}

#[test]
fn knob_off_baseline_scans_the_full_read_log_every_time() {
    let (_heap, stm, cells) = setup(StmConfig { commit_sequence: false, ..StmConfig::default() });

    thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                for _ in 0..READS_PER_THREAD {
                    audit(&stm, &cells);
                }
            });
        }
    });

    let stats = stm.stats();
    assert_eq!(stats.validation_fast_path, 0, "knob off ⇒ the fast path never fires");
    assert_eq!(
        stats.validation_entries_scanned,
        stats.validations * CELLS as u64,
        "every validation rescans the full read log"
    );
}
