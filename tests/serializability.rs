//! Serializability and structural-invariant tests for the STM data
//! structures, cross-checked against a trusted reference.

use std::sync::Arc;

use omt::heap::Heap;
use omt::stm::{Stm, StmConfig};
use omt::workloads::{
    prefill, run_set_workload, sets_agree, Bank, CoarseStdSet, ConcurrentSet, LockBank, OpMix,
    SetWorkload, StmBank, StmBst, StmHashSet, StmSkipList, StmSortedList,
};

fn fresh_stm() -> Arc<Stm> {
    Arc::new(Stm::new(Arc::new(Heap::new())))
}

#[test]
fn every_stm_set_agrees_with_the_reference_sequentially() {
    let reference = || CoarseStdSet::new();
    assert!(sets_agree(&StmHashSet::new(fresh_stm(), 16), &reference(), 3_000, 101));
    assert!(sets_agree(&StmSortedList::new(fresh_stm()), &reference(), 1_500, 102));
    assert!(sets_agree(&StmBst::new(fresh_stm()), &reference(), 3_000, 103));
    assert!(sets_agree(&StmSkipList::new(fresh_stm()), &reference(), 3_000, 104));
}

/// After any concurrent mixed workload, recount the structure and check
/// basic sanity: size within key range, all lookups of inserted keys
/// succeed when re-applied sequentially.
fn stress_then_audit(set: &dyn ConcurrentSet, key_range: i64) {
    let workload = SetWorkload {
        initial_size: 64,
        key_range,
        mix: OpMix::WRITE_HEAVY,
        ops_per_thread: 1_500,
        seed: 77,
    };
    prefill(set, &workload);
    run_set_workload(set, &workload, 4);
    let n = set.len();
    assert!(n <= key_range as usize, "size {n} exceeds key range {key_range}");
    // Deterministic membership re-check: inserting every key again must
    // report "new" exactly for the keys not present.
    let mut added = 0;
    for k in 0..key_range {
        if set.insert(k) {
            added += 1;
        }
    }
    assert_eq!(set.len(), key_range as usize);
    assert_eq!(added, key_range as usize - n);
}

#[test]
fn hash_set_survives_write_heavy_contention() {
    stress_then_audit(&StmHashSet::new(fresh_stm(), 32), 256);
}

#[test]
fn sorted_list_survives_write_heavy_contention() {
    stress_then_audit(&StmSortedList::new(fresh_stm()), 128);
}

#[test]
fn bst_survives_write_heavy_contention() {
    stress_then_audit(&StmBst::new(fresh_stm()), 256);
}

#[test]
fn skiplist_survives_write_heavy_contention() {
    stress_then_audit(&StmSkipList::new(fresh_stm()), 256);
}

#[test]
fn abort_self_policy_also_preserves_invariants() {
    let stm = Arc::new(Stm::with_config(
        Arc::new(Heap::new()),
        StmConfig { cm: omt::stm::CmPolicy::AbortSelf, ..StmConfig::default() },
    ));
    stress_then_audit(&StmHashSet::new(stm, 8), 128);
}

#[test]
fn disabled_filter_preserves_invariants() {
    let stm = Arc::new(Stm::with_config(
        Arc::new(Heap::new()),
        StmConfig { runtime_filter: false, ..StmConfig::default() },
    ));
    stress_then_audit(&StmSortedList::new(stm), 64);
}

#[test]
fn tiny_version_width_preserves_invariants() {
    // 6-bit versions wrap every 64 commits per object, constantly
    // exercising the epoch-bump overflow path.
    let stm = Arc::new(Stm::with_config(
        Arc::new(Heap::new()),
        StmConfig { version_bits: 6, ..StmConfig::default() },
    ));
    let bank = StmBank::new(stm.clone(), 4, 1_000);
    omt::workloads::run_bank_workload(&bank, 4, 2_000, Some(50), 31);
    assert_eq!(bank.total(), 4_000);
    assert!(stm.epoch() > 0, "versions must have wrapped");
}

#[test]
fn stm_bank_matches_lock_bank_exactly_under_the_same_schedule() {
    // Same deterministic single-threaded transfer sequence on both.
    let stm_bank = StmBank::new(fresh_stm(), 8, 500);
    let lock_bank = LockBank::new(8, 500);
    let mut state = 0xBADC0FFEu64;
    for _ in 0..5_000 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let from = (state % 8) as usize;
        let to = ((state >> 16) % 8) as usize;
        if from == to {
            continue;
        }
        let amount = (state >> 32) as i64 % 50;
        stm_bank.transfer(from, to, amount);
        lock_bank.transfer(from, to, amount);
    }
    assert_eq!(stm_bank.total(), lock_bank.total());
    assert_eq!(stm_bank.total(), 8 * 500);
}

#[test]
fn mixed_structure_transactions_compose() {
    // One transaction spanning two different structures on one STM:
    // remove from the list and insert into the tree, atomically, using
    // the transaction-composable `_in` operations.
    let stm = fresh_stm();
    let list = StmSortedList::new(stm.clone());
    let tree = StmBst::new(stm.clone());
    for k in 0..50 {
        list.insert(k);
    }

    std::thread::scope(|scope| {
        for t in 0..2 {
            let stm = stm.clone();
            let list = &list;
            let tree = &tree;
            scope.spawn(move || {
                for k in 0..50 {
                    let _ = t;
                    // Move k from the list to the tree in ONE transaction:
                    // observers can never see it in both or in neither.
                    stm.atomically(|tx| {
                        if list.remove_in(tx, k)? {
                            tree.insert_in(tx, k)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });
    assert_eq!(list.len(), 0);
    assert_eq!(tree.len(), 50);
}

#[test]
fn composed_move_is_atomic_to_observers() {
    // An auditor transaction reading both structures must always count
    // exactly 50 elements in total, mid-migration or not.
    let stm = fresh_stm();
    let list = StmSortedList::new(stm.clone());
    let tree = StmBst::new(stm.clone());
    for k in 0..50 {
        list.insert(k);
    }
    std::thread::scope(|scope| {
        let mover_stm = stm.clone();
        let list_ref = &list;
        let tree_ref = &tree;
        scope.spawn(move || {
            for k in 0..50 {
                mover_stm.atomically(|tx| {
                    if list_ref.remove_in(tx, k)? {
                        tree_ref.insert_in(tx, k)?;
                    }
                    Ok(())
                });
            }
        });
        for _ in 0..100 {
            let total = stm.atomically(|tx| {
                let mut n = 0;
                for k in 0..50 {
                    if list.contains_in(tx, k)? {
                        n += 1;
                    }
                    if tree.contains_in(tx, k)? {
                        n += 1;
                    }
                }
                Ok(n)
            });
            assert_eq!(total, 50, "observer saw a half-moved element");
        }
    });
}
