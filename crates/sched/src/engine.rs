//! The execution engine: runs one set of virtual threads under one
//! schedule, sequentially, by baton passing.
//!
//! Each virtual thread is a real OS thread with a schedule-point hook
//! installed ([`omt_util::sched::install_hook`]). Exactly one party —
//! the scheduler or one thread — holds the *baton* at any moment, so
//! the execution is sequentially consistent by construction and fully
//! determined by the sequence of scheduling choices. A thread runs from
//! one schedule point to the next; at each point it hands the baton
//! back and the scheduler picks who continues.
//!
//! ## What the engine can and cannot explore
//!
//! Because only one thread runs at a time, the engine explores exactly
//! the interleavings of *instrumented* steps under sequential
//! consistency. Weak-memory reorderings between schedule points are out
//! of scope (see DESIGN.md §4.8); the schedule points are placed so the
//! cross-thread races of interest straddle them.
//!
//! ## Abandonment
//!
//! A schedule that exceeds the step budget (a cooperative livelock —
//! e.g. a waiter that is the only thread ever scheduled) is *abandoned*:
//! hooks turn into pass-throughs and all threads run to completion
//! under real concurrency. The run's outcome is then not a
//! deterministic witness, so it is counted (`step_limited`) but its
//! check result is discarded.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One virtual thread's body. Fresh closures are built for every
/// execution by the scenario factory.
pub type ThreadBody = Box<dyn FnOnce() + Send + 'static>;

/// A scheduling policy for [`run_driven`]: receives the step index, the
/// enabled set (non-empty), and the previously scheduled thread, and
/// must return a member of the enabled set.
pub type Chooser<'a> = dyn FnMut(usize, &[usize], Option<usize>) -> usize + 'a;

/// A single execution: thread bodies plus a final-state check that runs
/// after every thread finished. The check returns `Err` with a
/// human-readable message to flag the schedule as a counterexample.
pub struct Execution {
    /// The virtual threads, scheduled by index.
    pub threads: Vec<ThreadBody>,
    /// Final-state oracle; runs on the scheduler thread at quiescence.
    pub check: Box<dyn FnOnce() -> Result<(), String>>,
}

impl std::fmt::Debug for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution").field("threads", &self.threads.len()).finish()
    }
}

/// One recorded scheduling step: which thread ran and the site name it
/// stopped at afterwards (`"<done>"` if it ran to completion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Index of the thread that was scheduled.
    pub thread: usize,
    /// Schedule-point name the thread stopped at, or `"<done>"`.
    pub site: &'static str,
}

/// Site name recorded when a scheduled thread ran to completion instead
/// of stopping at a schedule point.
pub const SITE_DONE: &str = "<done>";
/// Site name recorded when a scheduled thread panicked.
pub const SITE_PANIC: &str = "<panicked>";

/// Status of one virtual thread, as the scheduler sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Spawned, has not yet been given the baton for the first time.
    Ready,
    /// Holds the baton and is executing.
    Running,
    /// Parked at a schedule point, waiting for the baton.
    Yielded(&'static str),
    /// Ran to completion.
    Done,
    /// Panicked; the payload's message.
    Panicked(String),
}

impl Status {
    fn enabled(&self) -> bool {
        matches!(self, Status::Ready | Status::Yielded(_))
    }
}

/// Who currently holds the baton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Scheduler,
    Thread(usize),
}

struct EngineState {
    turn: Turn,
    statuses: Vec<Status>,
}

/// Shared between the scheduler and the virtual threads.
struct Shared {
    state: Mutex<EngineState>,
    cv: Condvar,
    /// Once set, hooks stop parking and all threads free-run to
    /// completion (see module docs on abandonment).
    abandoned: AtomicBool,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, EngineState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Called from a virtual thread's hook: park at `site` until the
    /// scheduler hands the baton back.
    fn yield_to_scheduler(&self, me: usize, site: &'static str) {
        if self.abandoned.load(Ordering::Acquire) {
            return;
        }
        let mut st = self.lock();
        st.statuses[me] = Status::Yielded(site);
        st.turn = Turn::Scheduler;
        self.cv.notify_all();
        while st.turn != Turn::Thread(me) && !self.abandoned.load(Ordering::Acquire) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.statuses[me] = Status::Running;
    }

    /// Called from a virtual thread's wrapper before running its body:
    /// wait for the first baton.
    fn wait_for_first_turn(&self, me: usize) {
        let mut st = self.lock();
        while st.turn != Turn::Thread(me) && !self.abandoned.load(Ordering::Acquire) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.statuses[me] = Status::Running;
    }

    /// Called from a virtual thread's wrapper when its body returned or
    /// panicked: record the terminal status and return the baton.
    fn finish(&self, me: usize, status: Status) {
        let mut st = self.lock();
        st.statuses[me] = status;
        st.turn = Turn::Scheduler;
        self.cv.notify_all();
    }
}

/// How one run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// All threads finished and the check passed.
    Pass,
    /// The check failed, or a thread panicked: `message` explains.
    Fail {
        /// Why this schedule is a counterexample.
        message: String,
    },
    /// The step budget ran out; the run was abandoned (not a witness).
    StepLimited,
}

/// Full record of one run: the decision trace (for backtracking and
/// replay) and the outcome.
#[derive(Debug)]
pub struct RunRecord {
    /// The scheduling decision made at each step.
    pub steps: Vec<Step>,
    /// The set of enabled threads observed before each step (parallel
    /// to `steps`); DFS derives untried alternatives from it.
    pub enabled_sets: Vec<Vec<usize>>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// True if some forced choice (from the schedule prefix) named a
    /// thread that was not enabled — the execution diverged from the
    /// recording, i.e. the program is not deterministic under the
    /// explored schedule points.
    pub diverged: bool,
}

/// Runs `execution` under the scheduling choices in `prefix`; once the
/// prefix is exhausted (or a forced choice is disabled), the *default
/// policy* fills in: keep running the previously scheduled thread while
/// it stays enabled, else the lowest-index enabled thread.
///
/// `max_steps` bounds cooperative livelocks (see module docs).
pub fn run_one(execution: Execution, prefix: &[usize], max_steps: usize) -> RunRecord {
    let diverged = std::cell::Cell::new(false);
    let mut record = run_driven(
        execution,
        &mut |step, enabled, prev| match prefix.get(step) {
            Some(&forced) if enabled.contains(&forced) => forced,
            Some(_) => {
                diverged.set(true);
                default_choice(prev, enabled)
            }
            None => default_choice(prev, enabled),
        },
        max_steps,
    );
    record.diverged = diverged.get();
    record
}

/// Runs `execution` with `chooser` deciding every step: it receives the
/// step index, the enabled set (non-empty), and the previously
/// scheduled thread, and must return a member of the enabled set.
///
/// This is the primitive under [`run_one`] (prefix + default fill) and
/// under the explorer's random walks (seeded RNG chooser).
pub fn run_driven(execution: Execution, chooser: &mut Chooser<'_>, max_steps: usize) -> RunRecord {
    let Execution { threads, check } = execution;
    let n = threads.len();
    assert!(n > 0, "an execution needs at least one thread");
    let shared = Arc::new(Shared {
        state: Mutex::new(EngineState { turn: Turn::Scheduler, statuses: vec![Status::Ready; n] }),
        cv: Condvar::new(),
        abandoned: AtomicBool::new(false),
    });

    let handles: Vec<_> = threads
        .into_iter()
        .enumerate()
        .map(|(i, body)| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("omt-sched-t{i}"))
                .spawn(move || {
                    let hook_shared = shared.clone();
                    omt_util::sched::install_hook(Box::new(move |site| {
                        hook_shared.yield_to_scheduler(i, site);
                    }));
                    shared.wait_for_first_turn(i);
                    let result = catch_unwind(AssertUnwindSafe(body));
                    omt_util::sched::clear_hook();
                    shared.finish(
                        i,
                        match result {
                            Ok(()) => Status::Done,
                            Err(payload) => Status::Panicked(panic_message(payload.as_ref())),
                        },
                    );
                })
                .expect("spawn virtual thread")
        })
        .collect();

    let mut steps: Vec<Step> = Vec::new();
    let mut enabled_sets: Vec<Vec<usize>> = Vec::new();
    let mut step_limited = false;
    let mut prev: Option<usize> = None;
    loop {
        let enabled: Vec<usize> = {
            let st = shared.lock();
            debug_assert_eq!(st.turn, Turn::Scheduler);
            (0..n).filter(|&i| st.statuses[i].enabled()).collect()
        };
        if enabled.is_empty() {
            break;
        }
        if steps.len() >= max_steps {
            step_limited = true;
            shared.abandoned.store(true, Ordering::Release);
            shared.cv.notify_all();
            break;
        }
        let choice = chooser(steps.len(), &enabled, prev);
        assert!(enabled.contains(&choice), "chooser returned disabled thread {choice}");
        enabled_sets.push(enabled);
        // Hand over the baton and wait for it to come back.
        {
            let mut st = shared.lock();
            st.turn = Turn::Thread(choice);
            shared.cv.notify_all();
            while st.turn != Turn::Scheduler {
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let site = match &st.statuses[choice] {
                Status::Yielded(site) => site,
                Status::Done => SITE_DONE,
                Status::Panicked(_) => SITE_PANIC,
                s => unreachable!("thread {choice} returned the baton in state {s:?}"),
            };
            steps.push(Step { thread: choice, site });
        }
        prev = Some(choice);
    }

    for handle in handles {
        let _ = handle.join();
    }

    let outcome = if step_limited {
        RunOutcome::StepLimited
    } else {
        let panics: Vec<String> = {
            let st = shared.lock();
            st.statuses
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Status::Panicked(msg) => Some(format!("thread {i} panicked: {msg}")),
                    _ => None,
                })
                .collect()
        };
        if !panics.is_empty() {
            RunOutcome::Fail { message: panics.join("; ") }
        } else {
            match check() {
                Ok(()) => RunOutcome::Pass,
                Err(message) => RunOutcome::Fail { message },
            }
        }
    };
    RunRecord { steps, enabled_sets, outcome, diverged: false }
}

/// The deterministic fill-in policy: continue the previous thread while
/// it is enabled (no preemption), else the lowest-index enabled thread.
pub(crate) fn default_choice(prev: Option<usize>, enabled: &[usize]) -> usize {
    match prev {
        Some(p) if enabled.contains(&p) => p,
        _ => enabled[0],
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn two_appenders(order: &Arc<Mutex<Vec<u32>>>) -> Execution {
        let threads: Vec<ThreadBody> = (0..2u32)
            .map(|id| {
                let order = order.clone();
                Box::new(move || {
                    omt_util::sched::yield_point("test.a");
                    order.lock().unwrap().push(id * 10);
                    omt_util::sched::yield_point("test.b");
                    order.lock().unwrap().push(id * 10 + 1);
                }) as ThreadBody
            })
            .collect();
        Execution { threads, check: Box::new(|| Ok(())) }
    }

    #[test]
    fn default_policy_runs_threads_to_completion_in_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let record = run_one(two_appenders(&order), &[], 1000);
        assert_eq!(record.outcome, RunOutcome::Pass);
        assert!(!record.diverged);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 10, 11]);
        // t0: yield a, run (a..b), run (b..done) = 3 steps; same for t1.
        assert_eq!(record.steps.len(), 6);
        assert_eq!(record.steps[2].site, SITE_DONE);
    }

    #[test]
    fn a_prefix_forces_an_interleaving() {
        let order = Arc::new(Mutex::new(Vec::new()));
        // Alternate strictly: t0 to a, t1 to a, t0 past a, t1 past a, ...
        let record = run_one(two_appenders(&order), &[0, 1, 0, 1, 0, 1], 1000);
        assert_eq!(record.outcome, RunOutcome::Pass);
        assert!(!record.diverged);
        assert_eq!(*order.lock().unwrap(), vec![0, 10, 1, 11]);
    }

    #[test]
    fn panics_are_contained_and_reported() {
        let threads: Vec<ThreadBody> =
            vec![Box::new(|| panic!("boom")), Box::new(|| omt_util::sched::yield_point("test.x"))];
        let record = run_one(Execution { threads, check: Box::new(|| Ok(())) }, &[], 1000);
        match record.outcome {
            RunOutcome::Fail { ref message } => assert!(message.contains("boom"), "{message}"),
            ref o => panic!("expected Fail, got {o:?}"),
        }
    }

    #[test]
    fn check_failure_is_a_counterexample() {
        let threads: Vec<ThreadBody> = vec![Box::new(|| {})];
        let record =
            run_one(Execution { threads, check: Box::new(|| Err("bad state".into())) }, &[], 1000);
        assert_eq!(record.outcome, RunOutcome::Fail { message: "bad state".into() });
    }

    #[test]
    fn step_limit_abandons_a_cooperative_livelock() {
        // One thread yields forever *under the scheduler*; abandonment
        // flips the hook off so the loop's exit flag (set by the other
        // thread, which the default policy never schedules) is reached
        // under free running.
        let stop = Arc::new(AtomicBool::new(false));
        let spins = Arc::new(AtomicUsize::new(0));
        let threads: Vec<ThreadBody> = vec![
            Box::new({
                let stop = stop.clone();
                let spins = spins.clone();
                move || {
                    while !stop.load(Ordering::Acquire) {
                        spins.fetch_add(1, Ordering::Relaxed);
                        omt_util::sched::yield_point("test.spin");
                    }
                }
            }),
            Box::new({
                let stop = stop.clone();
                move || stop.store(true, Ordering::Release)
            }),
        ];
        let record = run_one(Execution { threads, check: Box::new(|| Ok(())) }, &[], 100);
        assert_eq!(record.outcome, RunOutcome::StepLimited);
    }

    #[test]
    fn forced_choice_of_disabled_thread_marks_divergence() {
        let threads: Vec<ThreadBody> = vec![Box::new(|| {})];
        // Thread 5 does not exist; the run must fall back and flag it.
        let record = run_one(Execution { threads, check: Box::new(|| Ok(())) }, &[5], 1000);
        assert_eq!(record.outcome, RunOutcome::Pass);
        assert!(record.diverged);
    }
}
