//! The execution engine: runs one set of virtual threads under one
//! schedule, sequentially, by baton passing.
//!
//! Each virtual thread is a real OS thread with a schedule-point hook
//! installed ([`omt_util::sched::install_hook`]). Exactly one party —
//! the scheduler or one thread — holds the *baton* at any moment, so
//! the execution is sequentially consistent by construction and fully
//! determined by the sequence of scheduling choices. A thread runs from
//! one schedule point to the next; at each point it hands the baton
//! back and the scheduler picks who continues.
//!
//! ## The worker pool and the inline tick
//!
//! Spawning OS threads per schedule dominated the cost of PR 4's
//! engine. [`run_driven`] instead borrows *pooled* workers from a
//! thread-local pool owned by the scheduler's thread: each worker parks
//! on its job-slot condvar between executions and is handed a fresh
//! closure per run, so a schedule costs zero spawns.
//!
//! The second cost in PR 4's engine was that every step bounced the
//! baton through the scheduler thread — two OS handoffs per step even
//! when the same thread kept running, which is the common case (DFS
//! tries the non-preemptive continuation first). The pooled engine
//! instead runs the scheduling decision *inline* on whichever party
//! holds the baton ([`Shared::tick`]): when the chooser picks the
//! current thread again, no handoff happens at all, so a run's OS
//! handoffs scale with its context *switches*, not its steps. The baton
//! itself is spin-then-park (the waiting party spins briefly on an
//! atomic turn word before falling back to a per-party condvar) when
//! more than one core is available; on a single-core host the spin
//! phase is disabled since the partner cannot make progress while we
//! spin. [`run_driven_reference`] preserves the spawn-per-run,
//! bounce-per-step, park-only cost model as the measurement baseline
//! for the speedup.
//!
//! ## Blocked threads
//!
//! A thread that reaches a *blocking* acquisition
//! ([`omt_util::sched::block_until`]) parks in status `Blocked` instead
//! of invisibly seizing a native lock with the baton in hand. A blocked
//! thread stays schedulable (scheduling it retries the acquisition)
//! until a retry fails with no intervening progress; it then leaves the
//! enabled set until any other thread completes a step, which may have
//! released the resource. If the enabled set empties while threads are
//! blocked, the run fails with a deadlock report naming the blocked
//! sites — that is an explorable bug, not an engine hang.
//!
//! ## What the engine can and cannot explore
//!
//! Because only one thread runs at a time, the engine explores exactly
//! the interleavings of *instrumented* steps under sequential
//! consistency. Weak-memory reorderings between schedule points are out
//! of scope (see DESIGN.md §4.8); the schedule points are placed so the
//! cross-thread races of interest straddle them.
//!
//! ## Abandonment
//!
//! A schedule that exceeds the step budget (a cooperative livelock —
//! e.g. a waiter that is the only thread ever scheduled) is *abandoned*:
//! hooks turn into pass-throughs and all threads run to completion
//! under real concurrency. The run's outcome is then not a
//! deterministic witness, so it is counted (`step_limited`) but its
//! check result is discarded. A deadlocked run is abandoned the same
//! way (blocked threads fall back to their real blocking acquisition);
//! if the threads do not quiesce within a grace period, the pool is
//! discarded and rebuilt rather than joined — a found deadlock ends the
//! exploration anyway.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use omt_util::sched::SchedPoint;

/// One virtual thread's body. Fresh closures are built for every
/// execution by the scenario factory.
pub type ThreadBody = Box<dyn FnOnce() + Send + 'static>;

/// A scheduling policy for [`run_driven`]: receives the step index, the
/// enabled set (non-empty), and the previously scheduled thread, and
/// must return the `thread` of a member of the enabled set.
pub type Chooser<'a> = dyn FnMut(usize, &[EnabledSlot], Option<usize>) -> usize + 'a;

/// A single execution: thread bodies plus a final-state check that runs
/// after every thread finished. The check returns `Err` with a
/// human-readable message to flag the schedule as a counterexample.
pub struct Execution {
    /// The virtual threads, scheduled by index.
    pub threads: Vec<ThreadBody>,
    /// Final-state oracle; runs on the scheduler thread at quiescence.
    pub check: Box<dyn FnOnce() -> Result<(), String>>,
}

impl std::fmt::Debug for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution").field("threads", &self.threads.len()).finish()
    }
}

/// One schedulable thread at a scheduling decision, with its pending
/// action: the schedule point it is parked at names the step it is
/// about to perform. Explorers use `key` for commutativity-based
/// pruning and `blocked` for preemption accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnabledSlot {
    /// Index of the thread.
    pub thread: usize,
    /// Site the thread is parked at (`None` before its first step).
    pub site: Option<&'static str>,
    /// Object identity of the pending step, if the site names one.
    /// `None` means unknown: dependent on everything.
    pub key: Option<usize>,
    /// True if the thread is parked at a blocking acquisition;
    /// scheduling it retries the acquisition.
    pub blocked: bool,
}

/// One recorded scheduling step: which thread ran and the site name it
/// stopped at afterwards (`"<done>"` if it ran to completion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Index of the thread that was scheduled.
    pub thread: usize,
    /// Schedule-point name the thread stopped at, or `"<done>"`.
    pub site: &'static str,
}

/// Site name recorded when a scheduled thread ran to completion instead
/// of stopping at a schedule point.
pub const SITE_DONE: &str = "<done>";
/// Site name recorded when a scheduled thread panicked.
pub const SITE_PANIC: &str = "<panicked>";

/// Status of one virtual thread, as the scheduler sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Assigned to a worker, has not yet been given the baton.
    Ready,
    /// Holds the baton and is executing.
    Running,
    /// Parked at a schedule point, waiting for the baton.
    Yielded { site: &'static str, key: Option<usize> },
    /// Parked at a blocking acquisition that is not currently
    /// available. `retried` is set when the thread was rescheduled and
    /// re-blocked at the same site with no intervening progress; it is
    /// cleared (for every blocked thread) whenever any thread completes
    /// a step that could have released a resource.
    Blocked { site: &'static str, retried: bool },
    /// Ran to completion.
    Done,
    /// Panicked; the payload's message.
    Panicked(String),
}

impl Status {
    fn enabled_slot(&self, thread: usize) -> Option<EnabledSlot> {
        match self {
            Status::Ready => Some(EnabledSlot { thread, site: None, key: None, blocked: false }),
            Status::Yielded { site, key } => {
                Some(EnabledSlot { thread, site: Some(site), key: *key, blocked: false })
            }
            Status::Blocked { site, retried: false } => {
                Some(EnabledSlot { thread, site: Some(site), key: None, blocked: true })
            }
            _ => None,
        }
    }

    fn terminal(&self) -> bool {
        matches!(self, Status::Done | Status::Panicked(_))
    }
}

/// Baton token of the scheduler; thread `i` is token `i + 1`.
const SCHED: usize = 0;

/// Spin iterations on the turn word before parking on the seat condvar.
/// Spinning only pays when the handoff partner can run on another core:
/// on a single-CPU host the partner cannot store `turn` while we burn
/// the core, so every spin is wasted and the phase is disabled.
fn spin_limit() -> usize {
    static LIMIT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *LIMIT.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() >= 2 => 256,
        _ => 0,
    })
}
/// How long to wait for threads to quiesce after abandoning a run
/// before declaring the pool unreclaimable.
const RECLAIM_DEADLINE: Duration = Duration::from_secs(1);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One party's parking spot for the spin-then-park baton.
struct Seat {
    /// Dekker flag: set (then turn rechecked) before waiting, so the
    /// releaser's `turn` store / `parked` load pairing can skip the
    /// notification when nobody is parked.
    parked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Seat {
    fn new() -> Seat {
        Seat { parked: AtomicBool::new(false), lock: Mutex::new(()), cv: Condvar::new() }
    }
}

/// Per-run driver state: the chooser and the record under construction.
/// Only the current baton holder touches it — under the pooled engine's
/// *inline tick* the scheduling decision runs on whichever thread holds
/// the baton, so the state must live where every party can reach it.
/// The mutex is therefore always uncontended; it exists to move the
/// state across threads soundly.
struct Driver {
    /// Type-erased `&mut Chooser<'_>` from `run_driven_impl`'s frame.
    ///
    /// SAFETY: dereferenced only by the baton holder (serialized by the
    /// turn handoff, which is SeqCst-paired) and only while the run is
    /// live — `run_driven_impl` takes the driver back before it
    /// abandons a run or returns, and post-abandonment hooks never
    /// tick.
    chooser: *mut Chooser<'static>,
    steps: Vec<Step>,
    enabled_sets: Vec<Vec<EnabledSlot>>,
    /// The choice whose step is currently executing, plus the site it
    /// was blocked at when scheduled (if it was a blocked retry).
    pending: Option<(usize, Option<&'static str>)>,
    prev: Option<usize>,
    max_steps: usize,
    step_limited: bool,
    deadlock: Option<String>,
}

// SAFETY: see `Driver::chooser` — all access is serialized by the baton.
unsafe impl Send for Driver {}

/// What an inline tick did with the baton.
enum Tick {
    /// The calling thread was chosen again: keep running, no handoff.
    Continue,
    /// The baton went to another thread or back to the scheduler.
    Handed,
}

/// Shared between the scheduler and the virtual threads, one per run.
struct Shared {
    /// Who holds the baton: [`SCHED`] or thread index + 1.
    turn: AtomicUsize,
    /// `seats[token]`: where that party parks when the spin fails.
    seats: Vec<Seat>,
    statuses: Mutex<Vec<Status>>,
    /// Notified (with `statuses` held) on every terminal transition;
    /// the scheduler waits on it to reclaim workers after abandonment.
    done_cv: Condvar,
    /// Once set, hooks stop parking and all threads free-run to
    /// completion (see module docs on abandonment).
    abandoned: AtomicBool,
    /// 0 disables the spin phase (the reference engine's cost model).
    spin_limit: usize,
    /// True when scheduling decisions run inline on the baton holder
    /// (the pooled engine); false in reference mode, where the classic
    /// bounce-to-scheduler loop drives.
    inline: bool,
    /// Present while a pooled (inline-tick) run is live; `None` in
    /// reference mode.
    driver: Mutex<Option<Driver>>,
}

impl Shared {
    fn new(n: usize, spin_limit: usize, inline: bool) -> Shared {
        Shared {
            turn: AtomicUsize::new(SCHED),
            seats: (0..=n).map(|_| Seat::new()).collect(),
            statuses: Mutex::new(vec![Status::Ready; n]),
            done_cv: Condvar::new(),
            abandoned: AtomicBool::new(false),
            spin_limit,
            inline,
            driver: Mutex::new(None),
        }
    }

    /// One scheduling decision, run *inline* by the party holding the
    /// baton (`me`, or `None` for the scheduler's seeding tick): record
    /// the result of the step that just finished, pick the next thread,
    /// and hand the baton over — except when the chooser picked the
    /// caller itself, which costs no handoff at all. That same-thread
    /// fast path is what makes the pooled engine fast on DFS schedules,
    /// which run long non-preemptive stretches by construction.
    fn tick(&self, me: Option<usize>) -> Tick {
        let mut dg = lock(&self.driver);
        let driver = dg.as_mut().expect("inline tick during a live pooled run");
        let enabled: Vec<EnabledSlot> = {
            let mut st = lock(&self.statuses);
            if let Some((choice, from_blocked)) = driver.pending.take() {
                let site = note_step_result_locked(&mut st, choice, from_blocked);
                driver.steps.push(Step { thread: choice, site });
            }
            let mut enabled: Vec<EnabledSlot> = Vec::with_capacity(st.len());
            enabled.extend(st.iter().enumerate().filter_map(|(i, s)| s.enabled_slot(i)));
            if enabled.is_empty() {
                let blocked: Vec<String> = st
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Status::Blocked { site, .. } => Some(format!("t{i}@{site}")),
                        _ => None,
                    })
                    .collect();
                if !blocked.is_empty() {
                    driver.deadlock = Some(format!(
                        "deadlock: no runnable threads; blocked: {}",
                        blocked.join(", ")
                    ));
                }
            }
            enabled
        };
        if enabled.is_empty() {
            drop(dg);
            self.release_turn_to(SCHED);
            return Tick::Handed;
        }
        if driver.steps.len() >= driver.max_steps {
            driver.step_limited = true;
            drop(dg);
            self.release_turn_to(SCHED);
            return Tick::Handed;
        }
        // SAFETY: see `Driver::chooser`.
        let choice = unsafe { &mut *driver.chooser }(driver.steps.len(), &enabled, driver.prev);
        let slot = *enabled
            .iter()
            .find(|s| s.thread == choice)
            .unwrap_or_else(|| panic!("chooser returned disabled thread {choice}"));
        driver.pending = Some((choice, if slot.blocked { slot.site } else { None }));
        driver.prev = Some(choice);
        driver.enabled_sets.push(enabled);
        drop(dg);
        if me == Some(choice) {
            return Tick::Continue;
        }
        self.release_turn_to(choice + 1);
        Tick::Handed
    }

    /// Waits until this party holds the baton (or the run is abandoned).
    fn acquire_turn(&self, token: usize) {
        for _ in 0..self.spin_limit {
            if self.turn.load(Ordering::SeqCst) == token || self.abandoned.load(Ordering::SeqCst) {
                return;
            }
            std::hint::spin_loop();
        }
        let seat = &self.seats[token];
        let mut g = lock(&seat.lock);
        loop {
            seat.parked.store(true, Ordering::SeqCst);
            if self.turn.load(Ordering::SeqCst) == token || self.abandoned.load(Ordering::SeqCst) {
                seat.parked.store(false, Ordering::SeqCst);
                return;
            }
            g = seat.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            seat.parked.store(false, Ordering::SeqCst);
        }
    }

    /// Hands the baton to `token`, waking it only if it parked (the
    /// SeqCst `turn` store / `parked` load here pairs with the waiter's
    /// `parked` store / `turn` load: one of the two sides must observe
    /// the other, so no wakeup is lost).
    fn release_turn_to(&self, token: usize) {
        self.turn.store(token, Ordering::SeqCst);
        let seat = &self.seats[token];
        if seat.parked.load(Ordering::SeqCst) {
            drop(lock(&seat.lock));
            seat.cv.notify_all();
        }
    }

    /// Flips the run into free-running mode and wakes every parked
    /// party.
    fn abandon(&self) {
        self.abandoned.store(true, Ordering::SeqCst);
        for seat in &self.seats {
            drop(lock(&seat.lock));
            seat.cv.notify_all();
        }
    }

    /// Called from a virtual thread's hook: park at `point` until the
    /// scheduler hands the baton back. Returns false (point unhandled)
    /// when the run is abandoned, so blocking acquisitions fall back to
    /// their real blocking path under free running.
    fn handle_point(&self, me: usize, point: SchedPoint) -> bool {
        if self.abandoned.load(Ordering::SeqCst) {
            return !point.blocking;
        }
        {
            let mut st = lock(&self.statuses);
            st[me] = if point.blocking {
                Status::Blocked { site: point.site, retried: false }
            } else {
                Status::Yielded { site: point.site, key: point.key }
            };
        }
        if self.inline {
            // Run the scheduling decision right here; if we are chosen
            // again there is no handoff at all.
            if let Tick::Continue = self.tick(Some(me)) {
                lock(&self.statuses)[me] = Status::Running;
                return true;
            }
        } else {
            self.release_turn_to(SCHED);
        }
        self.acquire_turn(me + 1);
        if self.abandoned.load(Ordering::SeqCst) {
            return !point.blocking;
        }
        lock(&self.statuses)[me] = Status::Running;
        true
    }

    /// Scheduler side of one step: reads where `choice` stopped,
    /// maintains the `retried` flags, and returns the recorded site.
    /// `from_blocked_site` is the site `choice` was blocked at when
    /// scheduled, if it was scheduled as a blocked retry.
    fn note_step_result(
        &self,
        choice: usize,
        from_blocked_site: Option<&'static str>,
    ) -> &'static str {
        note_step_result_locked(&mut lock(&self.statuses), choice, from_blocked_site)
    }

    /// Waits until every thread reached a terminal status; false if the
    /// deadline passes first (threads genuinely stuck in native blocking
    /// calls — the pool must be discarded).
    fn wait_all_terminal(&self, deadline: Duration) -> bool {
        let start = Instant::now();
        let mut st = lock(&self.statuses);
        while !st.iter().all(Status::terminal) {
            let Some(left) = deadline.checked_sub(start.elapsed()) else {
                return false;
            };
            let (g, _timeout) =
                self.done_cv.wait_timeout(st, left).unwrap_or_else(|e| e.into_inner());
            st = g;
        }
        true
    }

    fn panics(&self) -> Vec<String> {
        lock(&self.statuses)
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Status::Panicked(msg) => Some(format!("thread {i} panicked: {msg}")),
                _ => None,
            })
            .collect()
    }
}

/// [`Shared::note_step_result`] on an already-locked status table (the
/// inline tick batches it with the enabled-set scan under one lock).
fn note_step_result_locked(
    st: &mut [Status],
    choice: usize,
    from_blocked_site: Option<&'static str>,
) -> &'static str {
    let (site, progressed) = match &st[choice] {
        Status::Yielded { site, .. } => (*site, true),
        // Re-blocking at the same site with nothing run in between is a
        // failed retry, not progress.
        Status::Blocked { site, .. } => (*site, from_blocked_site != Some(*site)),
        Status::Done => (SITE_DONE, true),
        Status::Panicked(_) => (SITE_PANIC, true),
        s => unreachable!("thread {choice} returned the baton in state {s:?}"),
    };
    if progressed {
        for s in st.iter_mut() {
            if let Status::Blocked { retried, .. } = s {
                *retried = false;
            }
        }
    } else if let Status::Blocked { retried, .. } = &mut st[choice] {
        *retried = true;
    }
    site
}

/// Body shared by pooled workers and reference-mode spawned threads:
/// install the hook, run under the baton, record the terminal status.
fn virtual_thread_main(index: usize, body: ThreadBody, shared: &Arc<Shared>) {
    let hook_shared = shared.clone();
    omt_util::sched::install_hook(Box::new(move |point| hook_shared.handle_point(index, point)));
    shared.acquire_turn(index + 1);
    if !shared.abandoned.load(Ordering::SeqCst) {
        lock(&shared.statuses)[index] = Status::Running;
    }
    let result = catch_unwind(AssertUnwindSafe(body));
    omt_util::sched::clear_hook();
    let status = match result {
        Ok(()) => Status::Done,
        Err(payload) => Status::Panicked(panic_message(payload.as_ref())),
    };
    {
        let mut st = lock(&shared.statuses);
        st[index] = status;
        shared.done_cv.notify_all();
    }
    if shared.inline && !shared.abandoned.load(Ordering::SeqCst) {
        // The dying thread records its own final step and hands the
        // baton straight to the next thread. If the tick itself panics
        // (a chooser bug), fall back to waking the scheduler so the run
        // still terminates with the panic recorded.
        if catch_unwind(AssertUnwindSafe(|| shared.tick(Some(index)))).is_err() {
            shared.release_turn_to(SCHED);
        }
    } else {
        shared.release_turn_to(SCHED);
    }
}

/// A job for a pooled worker.
enum Cmd {
    Run { index: usize, body: ThreadBody, shared: Arc<Shared> },
    Exit,
}

struct Slot {
    cmd: Mutex<Option<Cmd>>,
    cv: Condvar,
}

struct Worker {
    slot: Arc<Slot>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Worker {
    fn spawn(id: usize) -> Worker {
        let slot = Arc::new(Slot { cmd: Mutex::new(None), cv: Condvar::new() });
        let slot2 = slot.clone();
        let handle = std::thread::Builder::new()
            .name(format!("omt-sched-w{id}"))
            .spawn(move || worker_main(&slot2))
            .expect("spawn pooled virtual thread");
        Worker { slot, handle: Some(handle) }
    }

    fn submit(&self, cmd: Cmd) {
        let mut g = lock(&self.slot.cmd);
        debug_assert!(g.is_none() || matches!(cmd, Cmd::Exit), "worker already has a pending job");
        *g = Some(cmd);
        self.slot.cv.notify_one();
    }
}

fn worker_main(slot: &Slot) {
    loop {
        let cmd = {
            let mut g = lock(&slot.cmd);
            loop {
                match g.take() {
                    Some(c) => break c,
                    None => g = slot.cv.wait(g).unwrap_or_else(|e| e.into_inner()),
                }
            }
        };
        match cmd {
            Cmd::Exit => return,
            Cmd::Run { index, body, shared } => virtual_thread_main(index, body, &shared),
        }
    }
}

/// The scheduler thread's pool of parked workers, reused across runs.
struct Pool {
    workers: Vec<Worker>,
    /// Set when a run's threads failed to quiesce (stuck in a native
    /// blocking call after a deadlock was abandoned): the workers can
    /// never be joined, so the pool is dropped detached and rebuilt.
    poisoned: bool,
    next_id: usize,
}

impl Pool {
    const fn new() -> Pool {
        Pool { workers: Vec::new(), poisoned: false, next_id: 0 }
    }

    fn ensure(&mut self, n: usize) {
        while self.workers.len() < n {
            let w = Worker::spawn(self.next_id);
            self.next_id += 1;
            self.workers.push(w);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        for w in &self.workers {
            w.submit(Cmd::Exit);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                if self.poisoned {
                    // A stuck worker never reads its Exit; detach.
                    drop(h);
                } else {
                    let _ = h.join();
                }
            }
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = const { RefCell::new(Pool::new()) };
}

fn with_pool<R>(f: impl FnOnce(&mut Pool) -> R) -> R {
    POOL.with(|cell| f(&mut cell.borrow_mut()))
}

/// How one run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// All threads finished and the check passed.
    Pass,
    /// The check failed, a thread panicked, or the threads deadlocked:
    /// `message` explains.
    Fail {
        /// Why this schedule is a counterexample.
        message: String,
    },
    /// The step budget ran out; the run was abandoned (not a witness).
    StepLimited,
}

/// Full record of one run: the decision trace (for backtracking and
/// replay) and the outcome.
#[derive(Debug)]
pub struct RunRecord {
    /// The scheduling decision made at each step.
    pub steps: Vec<Step>,
    /// The set of enabled threads observed before each step (parallel
    /// to `steps`), each carrying its pending site/key; DFS derives
    /// untried alternatives and sleep sets from it.
    pub enabled_sets: Vec<Vec<EnabledSlot>>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// True if some forced choice (from the schedule prefix) named a
    /// thread that was not enabled — the execution diverged from the
    /// recording, i.e. the program is not deterministic under the
    /// explored schedule points.
    pub diverged: bool,
}

/// Runs `execution` under the scheduling choices in `prefix`; once the
/// prefix is exhausted (or a forced choice is disabled), the *default
/// policy* fills in: keep running the previously scheduled thread while
/// it stays runnable, else the lowest-index runnable thread (blocked
/// threads are retried only when nothing else can run).
///
/// `max_steps` bounds cooperative livelocks (see module docs).
pub fn run_one(execution: Execution, prefix: &[usize], max_steps: usize) -> RunRecord {
    let diverged = std::cell::Cell::new(false);
    let mut record = run_driven(
        execution,
        &mut |step, enabled, prev| match prefix.get(step) {
            Some(&forced) if enabled.iter().any(|s| s.thread == forced) => forced,
            Some(_) => {
                diverged.set(true);
                default_choice(prev, enabled)
            }
            None => default_choice(prev, enabled),
        },
        max_steps,
    );
    record.diverged = diverged.get();
    record
}

/// Runs `execution` with `chooser` deciding every step, on pooled
/// workers (see module docs).
///
/// This is the primitive under [`run_one`] (prefix + default fill) and
/// under the explorer's random walks (seeded RNG chooser).
pub fn run_driven(execution: Execution, chooser: &mut Chooser<'_>, max_steps: usize) -> RunRecord {
    run_driven_impl(execution, chooser, max_steps, true)
}

/// [`run_driven`] with PR 4's cost model — fresh OS threads per run and
/// park-only baton handoff — kept as the measurement baseline for the
/// pooled engine's speedup (see the sched-smoke perf comparison).
pub fn run_driven_reference(
    execution: Execution,
    chooser: &mut Chooser<'_>,
    max_steps: usize,
) -> RunRecord {
    run_driven_impl(execution, chooser, max_steps, false)
}

fn run_driven_impl(
    execution: Execution,
    chooser: &mut Chooser<'_>,
    max_steps: usize,
    pooled: bool,
) -> RunRecord {
    let Execution { threads, check } = execution;
    let n = threads.len();
    assert!(n > 0, "an execution needs at least one thread");
    let shared = Arc::new(Shared::new(n, if pooled { spin_limit() } else { 0 }, pooled));

    let steps: Vec<Step>;
    let enabled_sets: Vec<Vec<EnabledSlot>>;
    let step_limited: bool;
    let deadlock_msg: Option<String>;
    let mut reference_handles = Vec::new();
    if pooled {
        // Type-erase the chooser into the driver. SAFETY: the erased
        // lifetime never escapes this frame — the pointer is only
        // dereferenced by baton holders (serialized), and the driver is
        // taken back below before this frame returns or abandons.
        let chooser_ptr =
            unsafe { std::mem::transmute::<*mut Chooser<'_>, *mut Chooser<'static>>(chooser) };
        *lock(&shared.driver) = Some(Driver {
            chooser: chooser_ptr,
            steps: Vec::new(),
            enabled_sets: Vec::new(),
            pending: None,
            prev: None,
            max_steps,
            step_limited: false,
            deadlock: None,
        });
        with_pool(|pool| {
            if pool.poisoned {
                *pool = Pool::new();
            }
            pool.ensure(n);
            for (i, body) in threads.into_iter().enumerate() {
                pool.workers[i].submit(Cmd::Run { index: i, body, shared: shared.clone() });
            }
        });
        // Seed the run with the first decision; every later decision
        // runs inline on whichever virtual thread holds the baton, and
        // the baton only comes back here when the run is over.
        shared.tick(None);
        shared.acquire_turn(SCHED);
        let driver = lock(&shared.driver).take().expect("driver present until taken back");
        steps = driver.steps;
        enabled_sets = driver.enabled_sets;
        step_limited = driver.step_limited;
        deadlock_msg = driver.deadlock;
    } else {
        for (i, body) in threads.into_iter().enumerate() {
            let shared = shared.clone();
            reference_handles.push(
                std::thread::Builder::new()
                    .name(format!("omt-sched-t{i}"))
                    .spawn(move || virtual_thread_main(i, body, &shared))
                    .expect("spawn virtual thread"),
            );
        }
        let mut ref_steps: Vec<Step> = Vec::new();
        let mut ref_enabled_sets: Vec<Vec<EnabledSlot>> = Vec::new();
        let mut ref_step_limited = false;
        let mut ref_deadlock: Option<String> = None;
        let mut prev: Option<usize> = None;
        loop {
            debug_assert_eq!(shared.turn.load(Ordering::SeqCst), SCHED);
            let enabled: Vec<EnabledSlot> = {
                let st = lock(&shared.statuses);
                st.iter().enumerate().filter_map(|(i, s)| s.enabled_slot(i)).collect()
            };
            if enabled.is_empty() {
                let blocked: Vec<String> = lock(&shared.statuses)
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Status::Blocked { site, .. } => Some(format!("t{i}@{site}")),
                        _ => None,
                    })
                    .collect();
                if !blocked.is_empty() {
                    ref_deadlock = Some(format!(
                        "deadlock: no runnable threads; blocked: {}",
                        blocked.join(", ")
                    ));
                }
                break;
            }
            if ref_steps.len() >= max_steps {
                ref_step_limited = true;
                break;
            }
            let choice = chooser(ref_steps.len(), &enabled, prev);
            let slot = *enabled
                .iter()
                .find(|s| s.thread == choice)
                .unwrap_or_else(|| panic!("chooser returned disabled thread {choice}"));
            let from_blocked_site = if slot.blocked { slot.site } else { None };
            ref_enabled_sets.push(enabled);
            // Hand over the baton and wait for it to come back.
            shared.release_turn_to(choice + 1);
            shared.acquire_turn(SCHED);
            let site = shared.note_step_result(choice, from_blocked_site);
            ref_steps.push(Step { thread: choice, site });
            prev = Some(choice);
        }
        steps = ref_steps;
        enabled_sets = ref_enabled_sets;
        step_limited = ref_step_limited;
        deadlock_msg = ref_deadlock;
    }

    if step_limited || deadlock_msg.is_some() {
        shared.abandon();
    }
    let reclaimed = shared.wait_all_terminal(RECLAIM_DEADLINE);
    if pooled {
        if !reclaimed {
            with_pool(|pool| pool.poisoned = true);
        }
    } else if reclaimed {
        for h in reference_handles {
            let _ = h.join();
        }
    }
    // else: threads are stuck in native blocking calls; detach them.

    let outcome = if let Some(message) = deadlock_msg {
        RunOutcome::Fail { message }
    } else if step_limited {
        RunOutcome::StepLimited
    } else {
        let panics = shared.panics();
        if !panics.is_empty() {
            RunOutcome::Fail { message: panics.join("; ") }
        } else {
            match check() {
                Ok(()) => RunOutcome::Pass,
                Err(message) => RunOutcome::Fail { message },
            }
        }
    };
    RunRecord { steps, enabled_sets, outcome, diverged: false }
}

/// The deterministic fill-in policy: continue the previous thread while
/// it is runnable (no preemption); else the lowest-index runnable
/// thread; else the lowest-index blocked thread (a retry — the only
/// remaining move).
pub(crate) fn default_choice(prev: Option<usize>, enabled: &[EnabledSlot]) -> usize {
    if let Some(p) = prev {
        if enabled.iter().any(|s| s.thread == p && !s.blocked) {
            return p;
        }
    }
    if let Some(s) = enabled.iter().find(|s| !s.blocked) {
        return s.thread;
    }
    enabled[0].thread
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_appenders(order: &Arc<Mutex<Vec<u32>>>) -> Execution {
        let threads: Vec<ThreadBody> = (0..2u32)
            .map(|id| {
                let order = order.clone();
                Box::new(move || {
                    omt_util::sched::yield_point("test.a");
                    order.lock().unwrap().push(id * 10);
                    omt_util::sched::yield_point("test.b");
                    order.lock().unwrap().push(id * 10 + 1);
                }) as ThreadBody
            })
            .collect();
        Execution { threads, check: Box::new(|| Ok(())) }
    }

    #[test]
    fn default_policy_runs_threads_to_completion_in_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let record = run_one(two_appenders(&order), &[], 1000);
        assert_eq!(record.outcome, RunOutcome::Pass);
        assert!(!record.diverged);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 10, 11]);
        // t0: yield a, run (a..b), run (b..done) = 3 steps; same for t1.
        assert_eq!(record.steps.len(), 6);
        assert_eq!(record.steps[2].site, SITE_DONE);
    }

    #[test]
    fn a_prefix_forces_an_interleaving() {
        let order = Arc::new(Mutex::new(Vec::new()));
        // Alternate strictly: t0 to a, t1 to a, t0 past a, t1 past a, ...
        let record = run_one(two_appenders(&order), &[0, 1, 0, 1, 0, 1], 1000);
        assert_eq!(record.outcome, RunOutcome::Pass);
        assert!(!record.diverged);
        assert_eq!(*order.lock().unwrap(), vec![0, 10, 1, 11]);
    }

    #[test]
    fn pooled_workers_are_reused_across_runs() {
        // Many back-to-back runs on one scheduler thread must all pass
        // (exercising job handoff, status reset, and baton reuse).
        for _ in 0..50 {
            let order = Arc::new(Mutex::new(Vec::new()));
            let record = run_one(two_appenders(&order), &[0, 1, 0, 1, 0, 1], 1000);
            assert_eq!(record.outcome, RunOutcome::Pass);
            assert_eq!(*order.lock().unwrap(), vec![0, 10, 1, 11]);
        }
    }

    #[test]
    fn reference_engine_matches_pooled_behavior() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let record = run_driven_reference(
            two_appenders(&order),
            &mut |_, enabled, prev| default_choice(prev, enabled),
            1000,
        );
        assert_eq!(record.outcome, RunOutcome::Pass);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 10, 11]);
        assert_eq!(record.steps.len(), 6);
    }

    #[test]
    fn panics_are_contained_and_reported() {
        let threads: Vec<ThreadBody> =
            vec![Box::new(|| panic!("boom")), Box::new(|| omt_util::sched::yield_point("test.x"))];
        let record = run_one(Execution { threads, check: Box::new(|| Ok(())) }, &[], 1000);
        match record.outcome {
            RunOutcome::Fail { ref message } => assert!(message.contains("boom"), "{message}"),
            ref o => panic!("expected Fail, got {o:?}"),
        }
    }

    #[test]
    fn check_failure_is_a_counterexample() {
        let threads: Vec<ThreadBody> = vec![Box::new(|| {})];
        let record =
            run_one(Execution { threads, check: Box::new(|| Err("bad state".into())) }, &[], 1000);
        assert_eq!(record.outcome, RunOutcome::Fail { message: "bad state".into() });
    }

    #[test]
    fn step_limit_abandons_a_cooperative_livelock() {
        // One thread yields forever *under the scheduler*; abandonment
        // flips the hook off so the loop's exit flag (set by the other
        // thread, which the default policy never schedules) is reached
        // under free running.
        let stop = Arc::new(AtomicBool::new(false));
        let spins = Arc::new(AtomicUsize::new(0));
        let threads: Vec<ThreadBody> = vec![
            Box::new({
                let stop = stop.clone();
                let spins = spins.clone();
                move || {
                    while !stop.load(Ordering::Acquire) {
                        spins.fetch_add(1, Ordering::Relaxed);
                        omt_util::sched::yield_point("test.spin");
                    }
                }
            }),
            Box::new({
                let stop = stop.clone();
                move || stop.store(true, Ordering::Release)
            }),
        ];
        let record = run_one(Execution { threads, check: Box::new(|| Ok(())) }, &[], 100);
        assert_eq!(record.outcome, RunOutcome::StepLimited);
    }

    #[test]
    fn forced_choice_of_disabled_thread_marks_divergence() {
        let threads: Vec<ThreadBody> = vec![Box::new(|| {})];
        // Thread 5 does not exist; the run must fall back and flag it.
        let record = run_one(Execution { threads, check: Box::new(|| Ok(())) }, &[5], 1000);
        assert_eq!(record.outcome, RunOutcome::Pass);
        assert!(record.diverged);
    }

    /// t0 holds a "lock" and releases it after one schedule point; t1
    /// needs it via `block_until`. Forcing t1 first exercises the
    /// Blocked status, the failed-retry flag, and re-enabling on
    /// another thread's progress.
    #[test]
    fn blocked_thread_is_modeled_and_retried() {
        let held = Arc::new(AtomicBool::new(true));
        let threads: Vec<ThreadBody> = vec![
            Box::new({
                let held = held.clone();
                move || {
                    omt_util::sched::yield_point("test.work");
                    held.store(false, Ordering::SeqCst);
                }
            }),
            Box::new({
                let held = held.clone();
                move || {
                    omt_util::sched::block_until(
                        "test.lock",
                        || {
                            held.compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                                .ok()
                                .map(|_| ())
                        },
                        || panic!("explorer must model this block, not fall through"),
                    );
                }
            }),
        ];
        // t1 blocks, retries once (fails, leaves the enabled set), then
        // t0 runs to completion, re-enabling t1, which then acquires.
        let record = run_one(Execution { threads, check: Box::new(|| Ok(())) }, &[1, 1], 1000);
        assert_eq!(record.outcome, RunOutcome::Pass);
        assert!(!record.diverged);
        let sites: Vec<_> = record.steps.iter().map(|s| (s.thread, s.site)).collect();
        assert_eq!(
            sites,
            vec![
                (1, "test.lock"),
                (1, "test.lock"),
                (0, "test.work"),
                (0, SITE_DONE),
                (1, SITE_DONE),
            ]
        );
        // The enabled set before step 2 must show t1 blocked-out:
        // only t0 is schedulable.
        assert_eq!(record.enabled_sets[2].len(), 1);
        assert_eq!(record.enabled_sets[2][0].thread, 0);
        // Before step 1, t1 is enabled but flagged blocked.
        let t1 = record.enabled_sets[1].iter().find(|s| s.thread == 1).unwrap();
        assert!(t1.blocked);
        assert_eq!(t1.site, Some("test.lock"));
    }

    #[test]
    fn unsatisfiable_block_is_reported_as_deadlock() {
        let threads: Vec<ThreadBody> = vec![Box::new(|| {
            // Never available; the free-running fallback returns
            // immediately so the run quiesces after abandonment.
            omt_util::sched::block_until("test.never", || None::<()>, || ());
        })];
        let record = run_one(Execution { threads, check: Box::new(|| Ok(())) }, &[], 1000);
        match record.outcome {
            RunOutcome::Fail { ref message } => {
                assert!(message.contains("deadlock"), "{message}");
                assert!(message.contains("t0@test.never"), "{message}");
            }
            ref o => panic!("expected deadlock Fail, got {o:?}"),
        }
        // The pool must survive (the fallback quiesced): a fresh run
        // on the same scheduler thread still works.
        let order = Arc::new(Mutex::new(Vec::new()));
        let record = run_one(two_appenders(&order), &[], 1000);
        assert_eq!(record.outcome, RunOutcome::Pass);
    }

    #[test]
    fn yield_keys_flow_into_enabled_sets() {
        let threads: Vec<ThreadBody> = vec![Box::new(|| {
            omt_util::sched::yield_point_keyed("test.keyed", 77);
        })];
        let record = run_one(Execution { threads, check: Box::new(|| Ok(())) }, &[], 1000);
        assert_eq!(record.outcome, RunOutcome::Pass);
        // Step 0 parks t0 at the keyed point; the enabled set before
        // step 1 carries the key.
        assert_eq!(record.enabled_sets[1][0].key, Some(77));
        assert_eq!(record.enabled_sets[1][0].site, Some("test.keyed"));
    }
}
