//! Exploration strategies over the engine: bounded-preemption DFS with
//! sleep-set pruning, seeded random walks, counterexample minimization,
//! and replay.
//!
//! The DFS enumerates interleavings in the style of CHESS: schedules
//! are ordered so the *non-preemptive* continuation (keep running the
//! current thread) is tried first, and a schedule may contain at most
//! [`SchedConfig::preemption_bound`] preemptions — switches away from a
//! thread that was still runnable. Most concurrency bugs need only a
//! handful of preemptions, so a small bound covers the interesting
//! space at a fraction of the factorial cost. Seeded random walks are
//! layered on top to sample beyond the bound.
//!
//! ## Sleep sets
//!
//! On top of the bound, the DFS prunes *commutative* re-orderings with
//! sleep sets (Godefroid). Every schedule point may name the object its
//! pending step touches ([`omt_util::sched::yield_point_keyed`]); two
//! pending steps with distinct keys commute, so exploring both orders
//! is redundant. After the subtree scheduling thread `t` at a node is
//! fully explored, `t` falls asleep at that node: sibling subtrees skip
//! scheduling `t` again until some scheduled step *depends* on `t`'s
//! pending step (same key, or an unkeyed step, which is conservatively
//! dependent on everything). Sleep sets preserve every reachable final
//! state, so final-state oracles lose nothing; combined with a
//! preemption bound the reduction is heuristic at the bound's edge (a
//! pruned schedule's representative may itself have been over budget),
//! which is the standard trade — the pruning pays for a higher bound,
//! which covers strictly more.
//!
//! The sleep sets are *re-derived* from each run's record rather than
//! stored: the search keeps no per-node state beyond the current
//! prefix, exactly like the preemption accounting, so the stateless
//! re-execution architecture is unchanged.

use omt_util::rng::StdRng;

use crate::engine::{self, run_one, EnabledSlot, Execution, RunOutcome, RunRecord, Step};

/// Tuning for one exploration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Maximum preemptions per DFS schedule (CHESS-style context bound).
    pub preemption_bound: usize,
    /// Cap on DFS schedules; the search reports `exhausted: false` when
    /// it stops here.
    pub max_schedules: usize,
    /// Number of seeded random walks run after (or instead of) the DFS.
    /// Walks ignore the preemption bound.
    pub random_walks: usize,
    /// Seed for the random walks (walk `w` uses `seed + w`).
    pub seed: u64,
    /// Per-run step budget; a run exceeding it is abandoned as a
    /// cooperative livelock (counted in `step_limited`, not a witness).
    pub max_steps: usize,
    /// Minimize counterexamples by greedy tail truncation before
    /// reporting.
    pub minimize: bool,
    /// Prune commutative re-orderings with sleep sets (see module
    /// docs). Off, the DFS degenerates to PR 4's plain bounded search.
    pub sleep_sets: bool,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            preemption_bound: 2,
            max_schedules: 20_000,
            random_walks: 200,
            seed: 0xC0FFEE,
            max_steps: 20_000,
            minimize: true,
            sleep_sets: true,
        }
    }
}

/// A schedule: the thread index chosen at each scheduling step. Replay
/// runs this as a forced prefix with deterministic default fill-in
/// beyond it, so a frozen schedule stays replayable even if the tail of
/// the execution grows.
pub type Schedule = Vec<usize>;

/// A failing schedule, minimized (if configured) and re-verified.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The oracle's message (or the panic message).
    pub message: String,
    /// The failing schedule, replayable via [`Explorer::replay`].
    pub schedule: Schedule,
    /// Human-readable step trace: one `tN @ site` line per step.
    pub trace: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "counterexample: {}", self.message)?;
        writeln!(f, "schedule: {:?}", self.schedule)?;
        write!(f, "{}", self.trace)
    }
}

/// What an exploration did and found.
#[derive(Debug)]
pub struct ExploreReport {
    /// Total schedules executed (DFS + random + minimization probes).
    pub schedules_run: usize,
    /// Schedules executed by the bounded-preemption DFS.
    pub dfs_schedules: usize,
    /// Schedules executed by random walks.
    pub random_schedules: usize,
    /// True if the DFS enumerated its whole bounded space: it was not
    /// cut off by `max_schedules` or a counterexample, and no DFS run
    /// was abandoned at the step budget (an abandoned run's
    /// continuations were never seen, so the space was *not* covered).
    pub exhausted: bool,
    /// Runs abandoned for exceeding `max_steps` (all strategies,
    /// including minimization probes).
    pub step_limited: usize,
    /// DFS runs among those — these poison the `exhausted` claim and
    /// are never treated as explored-green leaves.
    pub dfs_abandoned: usize,
    /// DFS candidate branches skipped because the candidate thread was
    /// asleep: its pending step already explored from that node and
    /// commuting with everything scheduled since.
    pub sleep_pruned: usize,
    /// Runs in which a forced choice named a disabled thread — evidence
    /// of nondeterminism in the scenario (e.g. real randomness altering
    /// control flow between runs).
    pub divergences: usize,
    /// The first failing schedule found, if any.
    pub counterexample: Option<Counterexample>,
}

impl ExploreReport {
    /// True if no counterexample was found.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// One node of the DFS decision path.
#[derive(Debug)]
struct PathNode {
    /// Candidate choices in exploration order: the default
    /// (non-preemptive) continuation first, then the remaining enabled
    /// threads by index.
    ordered: Vec<usize>,
    /// Index into `ordered` of the choice taken by the current path.
    pos: usize,
    /// Preemptions in the path strictly before this node.
    preemptions_before: usize,
    /// Thread scheduled at the previous node (None at the root).
    prev: Option<usize>,
    /// The enabled slots at this node: each candidate's pending
    /// site/key (for independence checks).
    slots: Vec<EnabledSlot>,
    /// Threads asleep on entry to this node: their pending step was
    /// fully explored from an ancestor sibling and commutes with every
    /// step taken since, so rescheduling them here is redundant.
    sleep_in: Vec<usize>,
}

impl PathNode {
    /// Siblings strictly before `upto` that were actually explored —
    /// within the preemption bound and not asleep. Re-derived
    /// deterministically so the stateless DFS needs no stored per-node
    /// search state.
    fn explored_siblings(&self, upto: usize, bound: usize) -> Vec<usize> {
        (0..upto)
            .map(|q| self.ordered[q])
            .filter(|&c| {
                let preemptions =
                    self.preemptions_before + usize::from(is_preemption(self.prev, c, &self.slots));
                preemptions <= bound && !self.sleep_in.contains(&c)
            })
            .collect()
    }
}

/// Deterministic schedule explorer over a scenario factory.
///
/// The factory builds a fresh [`Execution`] — fresh shared state, fresh
/// thread closures, fresh check — for every run; the explorer owns
/// *when* each virtual thread advances.
#[derive(Debug, Clone)]
pub struct Explorer {
    config: SchedConfig,
}

impl Explorer {
    /// An explorer with the given tuning.
    pub fn new(config: SchedConfig) -> Explorer {
        Explorer { config }
    }

    /// An explorer with [`SchedConfig::default`].
    pub fn with_defaults() -> Explorer {
        Explorer::new(SchedConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Explores `factory`'s interleavings: the bounded-preemption DFS
    /// first, then `random_walks` seeded walks. Stops at the first
    /// counterexample (minimized if configured).
    pub fn explore(&self, factory: &dyn Fn() -> Execution) -> ExploreReport {
        let mut report = ExploreReport {
            schedules_run: 0,
            dfs_schedules: 0,
            random_schedules: 0,
            exhausted: false,
            step_limited: 0,
            dfs_abandoned: 0,
            sleep_pruned: 0,
            divergences: 0,
            counterexample: None,
        };
        self.dfs(factory, &mut report);
        if report.counterexample.is_none() {
            self.random_walks(factory, &mut report);
        }
        report
    }

    /// The bounded-preemption DFS (see module docs).
    fn dfs(&self, factory: &dyn Fn() -> Execution, report: &mut ExploreReport) {
        let bound = self.config.preemption_bound;
        let mut prefix: Schedule = Vec::new();
        loop {
            if report.dfs_schedules >= self.config.max_schedules {
                return;
            }
            let record = run_one(factory(), &prefix, self.config.max_steps);
            report.schedules_run += 1;
            report.dfs_schedules += 1;
            self.note_run(&record, report);
            if record.outcome == RunOutcome::StepLimited {
                // Abandoned: its check result is discarded and the
                // space below its cut-off was never seen, so the run
                // cannot count as an explored-green leaf. Alternatives
                // along its (truncated) path are still worth trying.
                report.dfs_abandoned += 1;
            }
            if let RunOutcome::Fail { message } = &record.outcome {
                report.counterexample =
                    Some(self.build_counterexample(factory, message.clone(), &record, report));
                return;
            }
            // Rebuild the decision path from the recorded run and
            // backtrack to the deepest node with an untried,
            // within-bound, awake alternative.
            let mut path = build_path(&record, bound, self.config.sleep_sets);
            loop {
                let Some(mut node) = path.pop() else {
                    // Frontier emptied; the bounded space was covered
                    // only if no run along the way was abandoned.
                    report.exhausted = report.dfs_abandoned == 0;
                    return;
                };
                let mut advanced = false;
                while node.pos + 1 < node.ordered.len() {
                    node.pos += 1;
                    let candidate = node.ordered[node.pos];
                    let preemptions = node.preemptions_before
                        + usize::from(is_preemption(node.prev, candidate, &node.slots));
                    if preemptions > bound {
                        continue;
                    }
                    if self.config.sleep_sets && node.sleep_in.contains(&candidate) {
                        report.sleep_pruned += 1;
                        continue;
                    }
                    advanced = true;
                    break;
                }
                if advanced {
                    prefix = path
                        .iter()
                        .map(|n| n.ordered[n.pos])
                        .chain(std::iter::once(node.ordered[node.pos]))
                        .collect();
                    break;
                }
            }
        }
    }

    /// Seeded random walks; walk `w` uses seed `seed + w` and picks
    /// uniformly among the enabled threads at every step.
    fn random_walks(&self, factory: &dyn Fn() -> Execution, report: &mut ExploreReport) {
        for walk in 0..self.config.random_walks {
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(walk as u64));
            let record = engine::run_driven(
                factory(),
                &mut |_step, enabled, _prev| enabled[rng.gen_range(0..enabled.len())].thread,
                self.config.max_steps,
            );
            report.schedules_run += 1;
            report.random_schedules += 1;
            self.note_run(&record, report);
            if let RunOutcome::Fail { message } = &record.outcome {
                report.counterexample =
                    Some(self.build_counterexample(factory, message.clone(), &record, report));
                return;
            }
        }
    }

    /// Replays a frozen schedule once and returns the run's outcome.
    /// The schedule is a forced prefix; steps beyond it (or forced
    /// choices that are no longer enabled) fall back to the
    /// deterministic default policy, so frozen schedules keep running —
    /// if more loosely — as the code under test evolves.
    pub fn replay(&self, factory: &dyn Fn() -> Execution, schedule: &Schedule) -> RunOutcome {
        run_one(factory(), schedule, self.config.max_steps).outcome
    }

    fn note_run(&self, record: &RunRecord, report: &mut ExploreReport) {
        if record.outcome == RunOutcome::StepLimited {
            report.step_limited += 1;
        }
        if record.diverged {
            report.divergences += 1;
        }
    }

    /// Minimizes (if configured) and packages a failing run.
    fn build_counterexample(
        &self,
        factory: &dyn Fn() -> Execution,
        message: String,
        record: &RunRecord,
        report: &mut ExploreReport,
    ) -> Counterexample {
        let schedule: Schedule = record.steps.iter().map(|s| s.thread).collect();
        if !self.config.minimize {
            return Counterexample { message, schedule, trace: trace_string(&record.steps) };
        }
        let (schedule, steps, message) =
            self.minimize(factory, schedule, record.steps.clone(), message, report);
        Counterexample { message, schedule, trace: trace_string(&steps) }
    }

    /// Greedy tail truncation: repeatedly try cutting the schedule just
    /// before its last *non-default* decision; if the default fill from
    /// there still fails, adopt the shorter schedule. The result is a
    /// schedule whose trailing decisions are all forced/default — the
    /// final preemption it contains is essential.
    fn minimize(
        &self,
        factory: &dyn Fn() -> Execution,
        mut schedule: Schedule,
        mut steps: Vec<Step>,
        mut message: String,
        report: &mut ExploreReport,
    ) -> (Schedule, Vec<Step>, String) {
        while let Some(cut) = last_nondefault_index(&schedule) {
            let candidate: Schedule = schedule[..cut].to_vec();
            let record = run_one(factory(), &candidate, self.config.max_steps);
            report.schedules_run += 1;
            self.note_run(&record, report);
            // Anything but a deterministic Fail — a pass, and equally
            // an *abandoned* (step-limited) probe, whose discarded
            // check result proves nothing — stops the truncation: the
            // current schedule stays the shortest verified witness.
            let RunOutcome::Fail { message: m } = record.outcome else { break };
            schedule = record.steps.iter().map(|s| s.thread).collect();
            steps = record.steps;
            message = m;
            // The re-recorded schedule may again have a non-default
            // tail (default fill-in is recorded explicitly), so trim
            // the recorded schedule back to the forced prefix first.
            schedule.truncate(cut);
        }
        (schedule, steps, message)
    }
}

/// Rebuilds the DFS decision path from a recorded run, including each
/// node's inherited sleep set (when `sleep_sets` is on).
fn build_path(record: &RunRecord, bound: usize, sleep_sets: bool) -> Vec<PathNode> {
    let mut path = Vec::with_capacity(record.steps.len());
    let mut prev: Option<usize> = None;
    let mut preemptions = 0usize;
    let mut sleep_in: Vec<usize> = Vec::new();
    for (step, enabled) in record.steps.iter().zip(&record.enabled_sets) {
        let ordered = candidate_order(prev, enabled);
        let pos =
            ordered.iter().position(|&c| c == step.thread).expect("recorded choice was enabled");
        // Preemption accounting from this node's own enabled set: total
        // by construction, even for empty and single-step paths.
        let stepped_preemption = is_preemption(prev, step.thread, enabled);
        let node = PathNode {
            ordered,
            pos,
            preemptions_before: preemptions,
            prev,
            slots: enabled.clone(),
            sleep_in: std::mem::take(&mut sleep_in),
        };
        if sleep_sets {
            // Godefroid's transition: siblings explored before this
            // choice fall asleep for the subtree, and sleepers wake as
            // soon as the chosen step depends on their pending step.
            sleep_in = node
                .sleep_in
                .iter()
                .copied()
                .chain(node.explored_siblings(node.pos, bound))
                .filter(|&t| t != step.thread && independent(&node.slots, t, step.thread))
                .collect();
            sleep_in.dedup();
        }
        preemptions += usize::from(stepped_preemption);
        prev = Some(step.thread);
        path.push(node);
    }
    path
}

/// Candidate choices at a node, default (non-preemptive) continuation
/// first, then the remaining enabled threads by index.
fn candidate_order(prev: Option<usize>, enabled: &[EnabledSlot]) -> Vec<usize> {
    let default = engine::default_choice(prev, enabled);
    std::iter::once(default)
        .chain(enabled.iter().map(|s| s.thread).filter(|&c| c != default))
        .collect()
}

/// A choice is a preemption iff it switches away from a previous thread
/// that is still *runnable* — still enabled and not parked at a blocking
/// acquisition (there is no point staying on a blocked thread, so
/// leaving one is free).
fn is_preemption(prev: Option<usize>, choice: usize, enabled: &[EnabledSlot]) -> bool {
    match prev {
        Some(p) => choice != p && enabled.iter().any(|s| s.thread == p && !s.blocked),
        None => false,
    }
}

/// Two pending steps commute iff both name an object key and the keys
/// differ. An unkeyed step (or a blocked one — its retry probes a
/// shared resource) is conservatively dependent on everything.
fn independent(slots: &[EnabledSlot], a: usize, b: usize) -> bool {
    let key = |t: usize| {
        slots.iter().find(|s| s.thread == t).and_then(|s| if s.blocked { None } else { s.key })
    };
    matches!((key(a), key(b)), (Some(ka), Some(kb)) if ka != kb)
}

/// Index of the last context switch in the schedule (entry `k` naming a
/// different thread than entry `k-1`), falling back to `0` for a
/// non-empty switch-free schedule and `None` for an empty one. Cutting
/// at the returned index and default-filling from there removes the
/// schedule's last forced decision.
fn last_nondefault_index(schedule: &Schedule) -> Option<usize> {
    if schedule.is_empty() {
        return None;
    }
    (1..schedule.len()).rev().find(|&k| schedule[k] != schedule[k - 1]).or(Some(0))
}

/// Formats steps as a numbered, replayable trace.
pub fn trace_string(steps: &[Step]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (k, step) in steps.iter().enumerate() {
        let _ = writeln!(out, "  step {k:>4}: t{} @ {}", step.thread, step.site);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ThreadBody;
    use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
    use std::sync::Arc;

    /// A classic lost-update race: two threads read-modify-write a
    /// shared cell with a schedule point between load and store. Only
    /// an interleaving that preempts between them loses an update.
    fn lost_update_factory() -> Execution {
        let cell = Arc::new(AtomicI64::new(0));
        let threads: Vec<ThreadBody> = (0..2)
            .map(|_| {
                let cell = cell.clone();
                Box::new(move || {
                    let v = cell.load(Ordering::SeqCst);
                    omt_util::sched::yield_point("race.between_load_and_store");
                    cell.store(v + 1, Ordering::SeqCst);
                }) as ThreadBody
            })
            .collect();
        let check_cell = cell.clone();
        Execution {
            threads,
            check: Box::new(move || {
                let v = check_cell.load(Ordering::SeqCst);
                if v == 2 {
                    Ok(())
                } else {
                    Err(format!("lost update: expected 2, got {v}"))
                }
            }),
        }
    }

    /// The same program with the race fixed (atomic increment).
    fn sound_factory() -> Execution {
        let cell = Arc::new(AtomicI64::new(0));
        let threads: Vec<ThreadBody> = (0..2)
            .map(|_| {
                let cell = cell.clone();
                Box::new(move || {
                    omt_util::sched::yield_point("race.before_increment");
                    cell.fetch_add(1, Ordering::SeqCst);
                }) as ThreadBody
            })
            .collect();
        let check_cell = cell.clone();
        Execution {
            threads,
            check: Box::new(move || {
                let v = check_cell.load(Ordering::SeqCst);
                if v == 2 {
                    Ok(())
                } else {
                    Err(format!("expected 2, got {v}"))
                }
            }),
        }
    }

    #[test]
    fn dfs_finds_the_lost_update() {
        let explorer = Explorer::new(SchedConfig { random_walks: 0, ..SchedConfig::default() });
        let report = explorer.explore(&lost_update_factory);
        let cx = report.counterexample.expect("the race must be found");
        assert!(cx.message.contains("lost update"), "{}", cx.message);
        assert!(cx.trace.contains("race.between_load_and_store"));
        // The counterexample must replay.
        match explorer.replay(&lost_update_factory, &cx.schedule) {
            RunOutcome::Fail { message } => assert!(message.contains("lost update")),
            o => panic!("minimized schedule must still fail, got {o:?}"),
        }
    }

    #[test]
    fn dfs_exhausts_the_sound_program() {
        let explorer = Explorer::new(SchedConfig { random_walks: 0, ..SchedConfig::default() });
        let report = explorer.explore(&sound_factory);
        assert!(report.passed(), "{:?}", report.counterexample);
        assert!(report.exhausted, "tiny space must be fully enumerated");
        assert!(report.dfs_schedules > 1, "more than one interleaving explored");
        assert_eq!(report.divergences, 0);
    }

    #[test]
    fn random_walks_also_find_the_race() {
        let explorer = Explorer::new(SchedConfig {
            max_schedules: 0, // disable DFS
            random_walks: 100,
            ..SchedConfig::default()
        });
        let report = explorer.explore(&lost_update_factory);
        assert!(report.counterexample.is_some());
        assert!(report.random_schedules >= 1);
    }

    #[test]
    fn walks_are_deterministic_under_a_seed() {
        let config = SchedConfig { max_schedules: 0, random_walks: 50, ..SchedConfig::default() };
        let a = Explorer::new(config.clone()).explore(&lost_update_factory);
        let b = Explorer::new(config).explore(&lost_update_factory);
        let (ca, cb) = (a.counterexample.unwrap(), b.counterexample.unwrap());
        assert_eq!(ca.schedule, cb.schedule, "same seed, same counterexample");
        assert_eq!(a.random_schedules, b.random_schedules);
    }

    #[test]
    fn minimized_schedules_are_no_longer_than_raw_ones() {
        let raw = Explorer::new(SchedConfig {
            random_walks: 0,
            minimize: false,
            ..SchedConfig::default()
        })
        .explore(&lost_update_factory)
        .counterexample
        .unwrap();
        let min = Explorer::new(SchedConfig { random_walks: 0, ..SchedConfig::default() })
            .explore(&lost_update_factory)
            .counterexample
            .unwrap();
        assert!(min.schedule.len() <= raw.schedule.len());
    }

    #[test]
    fn preemption_bound_zero_sees_only_serial_orders() {
        // With no preemptions allowed the lost update is invisible:
        // each thread runs its load+store back to back.
        let explorer = Explorer::new(SchedConfig {
            preemption_bound: 0,
            random_walks: 0,
            ..SchedConfig::default()
        });
        let report = explorer.explore(&lost_update_factory);
        assert!(report.passed(), "bound 0 must miss the race");
        assert!(report.exhausted);
    }

    #[test]
    fn three_thread_spaces_stay_enumerable() {
        let factory = || {
            let cell = Arc::new(AtomicI64::new(0));
            let threads: Vec<ThreadBody> = (0..3)
                .map(|_| {
                    let cell = cell.clone();
                    Box::new(move || {
                        omt_util::sched::yield_point("t.a");
                        cell.fetch_add(1, Ordering::SeqCst);
                        omt_util::sched::yield_point("t.b");
                        cell.fetch_add(1, Ordering::SeqCst);
                    }) as ThreadBody
                })
                .collect();
            let c = cell.clone();
            Execution {
                threads,
                check: Box::new(move || {
                    if c.load(Ordering::SeqCst) == 6 {
                        Ok(())
                    } else {
                        Err("sum".into())
                    }
                }),
            }
        };
        let explorer = Explorer::new(SchedConfig { random_walks: 0, ..SchedConfig::default() });
        let report = explorer.explore(&factory);
        assert!(report.passed());
        assert!(report.exhausted);
        assert!(report.dfs_schedules >= 10, "got {}", report.dfs_schedules);
    }

    #[test]
    fn build_path_is_total_on_empty_and_single_step_records() {
        // Zero-length record: no steps at all.
        let empty = RunRecord {
            steps: vec![],
            enabled_sets: vec![],
            outcome: RunOutcome::Pass,
            diverged: false,
        };
        assert!(build_path(&empty, 2, true).is_empty());

        // Single-step record: the preemption accounting at the first
        // node must not need a predecessor.
        let single = RunRecord {
            steps: vec![Step { thread: 0, site: engine::SITE_DONE }],
            enabled_sets: vec![vec![EnabledSlot {
                thread: 0,
                site: None,
                key: None,
                blocked: false,
            }]],
            outcome: RunOutcome::Pass,
            diverged: false,
        };
        let path = build_path(&single, 0, true);
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].preemptions_before, 0);
        assert_eq!(path[0].pos, 0);
        assert!(path[0].sleep_in.is_empty());
    }

    /// t0 spins on a flag only t1 sets: the default-first DFS order
    /// abandons its very first run at the step budget. Abandoned runs
    /// must be counted apart and must poison the `exhausted` claim —
    /// the space beyond their cut-off was never seen.
    #[test]
    fn abandoned_dfs_runs_are_counted_and_break_exhaustion() {
        let factory = || {
            let flag = Arc::new(AtomicBool::new(false));
            let threads: Vec<ThreadBody> = vec![
                Box::new({
                    let flag = flag.clone();
                    move || {
                        while !flag.load(Ordering::SeqCst) {
                            omt_util::sched::yield_point("gated.spin");
                        }
                    }
                }),
                Box::new({
                    let flag = flag.clone();
                    move || flag.store(true, Ordering::SeqCst)
                }),
            ];
            Execution { threads, check: Box::new(|| Ok(())) }
        };
        let explorer = Explorer::new(SchedConfig {
            preemption_bound: 1,
            max_steps: 30,
            max_schedules: 5_000,
            random_walks: 0,
            ..SchedConfig::default()
        });
        let report = explorer.explore(&factory);
        assert!(report.passed(), "{:?}", report.counterexample);
        assert!(report.dfs_abandoned >= 1, "the default-order run must abandon");
        assert_eq!(report.step_limited, report.dfs_abandoned);
        assert!(
            !report.exhausted,
            "abandoned runs left the space uncovered; exhausted must be false"
        );
    }

    /// Minimization must not adopt an abandoned candidate as if it were
    /// green: here every truncation below the essential `t1` decision
    /// livelocks (t0 spins on a flag only t1 sets), so the minimizer
    /// has to stop at a schedule that still contains that decision.
    #[test]
    fn minimization_never_adopts_an_abandoned_candidate() {
        let factory = || {
            let flag = Arc::new(AtomicBool::new(false));
            let bad = Arc::new(AtomicBool::new(false));
            let threads: Vec<ThreadBody> = vec![
                Box::new({
                    let flag = flag.clone();
                    move || {
                        while !flag.load(Ordering::SeqCst) {
                            omt_util::sched::yield_point("min.spin");
                        }
                    }
                }),
                Box::new({
                    let flag = flag.clone();
                    let bad = bad.clone();
                    move || {
                        omt_util::sched::yield_point("min.pre");
                        bad.store(true, Ordering::SeqCst);
                        flag.store(true, Ordering::SeqCst);
                    }
                }),
            ];
            let bad2 = bad.clone();
            Execution {
                threads,
                check: Box::new(move || {
                    if bad2.load(Ordering::SeqCst) {
                        Err("t1 ran to completion".into())
                    } else {
                        Ok(())
                    }
                }),
            }
        };
        let explorer = Explorer::new(SchedConfig {
            preemption_bound: 1,
            max_steps: 40,
            max_schedules: 5_000,
            random_walks: 0,
            ..SchedConfig::default()
        });
        let report = explorer.explore(&factory);
        let cx = report.counterexample.expect("completing t1 always fails the check");
        assert!(
            cx.schedule.contains(&1),
            "minimizer adopted an abandoned (t1-free) candidate: {:?}",
            cx.schedule
        );
        // The shortest candidates (which drop t1 entirely) livelock;
        // those probes must have been counted, not adopted.
        assert!(report.step_limited >= 1);
        match explorer.replay(&factory, &cx.schedule) {
            RunOutcome::Fail { message } => assert!(message.contains("t1"), "{message}"),
            o => panic!("minimized schedule must still fail, got {o:?}"),
        }
    }

    /// Two threads touching *different* keyed objects commute
    /// everywhere: sleep sets collapse the interleaving space to a
    /// fraction of the plain bounded DFS while still exhausting it.
    #[test]
    fn sleep_sets_prune_commuting_interleavings() {
        let factory = || {
            let x = Arc::new(AtomicI64::new(0));
            let y = Arc::new(AtomicI64::new(0));
            let mk = |cell: Arc<AtomicI64>, key: usize, site: &'static str| {
                Box::new(move || {
                    omt_util::sched::yield_point_keyed(site, key);
                    cell.fetch_add(1, Ordering::SeqCst);
                    omt_util::sched::yield_point_keyed(site, key);
                    cell.fetch_add(1, Ordering::SeqCst);
                }) as ThreadBody
            };
            let threads = vec![mk(x.clone(), 1, "obj.x"), mk(y.clone(), 2, "obj.y")];
            let (cx, cy) = (x.clone(), y.clone());
            Execution {
                threads,
                check: Box::new(move || {
                    if cx.load(Ordering::SeqCst) == 2 && cy.load(Ordering::SeqCst) == 2 {
                        Ok(())
                    } else {
                        Err("sum".into())
                    }
                }),
            }
        };
        // A bound high enough that commuting branches are not already
        // excluded by the preemption budget (the bound check runs
        // before the sleep check, so pruning shows up within it).
        let base = SchedConfig { preemption_bound: 4, random_walks: 0, ..SchedConfig::default() };
        let plain =
            Explorer::new(SchedConfig { sleep_sets: false, ..base.clone() }).explore(&factory);
        let pruned = Explorer::new(base).explore(&factory);
        assert!(plain.passed() && pruned.passed());
        assert!(plain.exhausted && pruned.exhausted);
        assert!(pruned.sleep_pruned > 0, "commuting branches must be pruned");
        assert!(
            pruned.dfs_schedules < plain.dfs_schedules,
            "pruned {} !< plain {}",
            pruned.dfs_schedules,
            plain.dfs_schedules
        );
        assert_eq!(plain.sleep_pruned, 0);
    }

    /// Sleep sets must not prune *dependent* interleavings: the lost
    /// update (same key on both threads) is still found, and unkeyed
    /// points are treated as dependent on everything.
    #[test]
    fn sleep_sets_keep_dependent_races_findable() {
        let keyed_lost_update = || {
            let cell = Arc::new(AtomicI64::new(0));
            let threads: Vec<ThreadBody> = (0..2)
                .map(|_| {
                    let cell = cell.clone();
                    Box::new(move || {
                        let v = cell.load(Ordering::SeqCst);
                        omt_util::sched::yield_point_keyed("race.keyed_mid", 9);
                        cell.store(v + 1, Ordering::SeqCst);
                    }) as ThreadBody
                })
                .collect();
            let check_cell = cell.clone();
            Execution {
                threads,
                check: Box::new(move || {
                    let v = check_cell.load(Ordering::SeqCst);
                    if v == 2 {
                        Ok(())
                    } else {
                        Err(format!("lost update: expected 2, got {v}"))
                    }
                }),
            }
        };
        let explorer = Explorer::new(SchedConfig { random_walks: 0, ..SchedConfig::default() });
        let report = explorer.explore(&keyed_lost_update);
        assert!(report.counterexample.is_some(), "same-key race must survive pruning");
        // And the unkeyed variant as before.
        let report = explorer.explore(&lost_update_factory);
        assert!(report.counterexample.is_some(), "unkeyed race must survive pruning");
    }
}
