//! Exploration strategies over the engine: bounded-preemption DFS,
//! seeded random walks, counterexample minimization, and replay.
//!
//! The DFS enumerates interleavings in the style of CHESS: schedules
//! are ordered so the *non-preemptive* continuation (keep running the
//! current thread) is tried first, and a schedule may contain at most
//! [`SchedConfig::preemption_bound`] preemptions — switches away from a
//! thread that was still enabled. Most concurrency bugs need only a
//! handful of preemptions, so a small bound covers the interesting
//! space at a fraction of the factorial cost. Seeded random walks are
//! layered on top to sample beyond the bound.

use omt_util::rng::StdRng;

use crate::engine::{self, run_one, Execution, RunOutcome, RunRecord, Step};

/// Tuning for one exploration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Maximum preemptions per DFS schedule (CHESS-style context bound).
    pub preemption_bound: usize,
    /// Cap on DFS schedules; the search reports `exhausted: false` when
    /// it stops here.
    pub max_schedules: usize,
    /// Number of seeded random walks run after (or instead of) the DFS.
    /// Walks ignore the preemption bound.
    pub random_walks: usize,
    /// Seed for the random walks (walk `w` uses `seed + w`).
    pub seed: u64,
    /// Per-run step budget; a run exceeding it is abandoned as a
    /// cooperative livelock (counted in `step_limited`, not a witness).
    pub max_steps: usize,
    /// Minimize counterexamples by greedy tail truncation before
    /// reporting.
    pub minimize: bool,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            preemption_bound: 2,
            max_schedules: 20_000,
            random_walks: 200,
            seed: 0xC0FFEE,
            max_steps: 20_000,
            minimize: true,
        }
    }
}

/// A schedule: the thread index chosen at each scheduling step. Replay
/// runs this as a forced prefix with deterministic default fill-in
/// beyond it, so a frozen schedule stays replayable even if the tail of
/// the execution grows.
pub type Schedule = Vec<usize>;

/// A failing schedule, minimized (if configured) and re-verified.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The oracle's message (or the panic message).
    pub message: String,
    /// The failing schedule, replayable via [`Explorer::replay`].
    pub schedule: Schedule,
    /// Human-readable step trace: one `tN @ site` line per step.
    pub trace: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "counterexample: {}", self.message)?;
        writeln!(f, "schedule: {:?}", self.schedule)?;
        write!(f, "{}", self.trace)
    }
}

/// What an exploration did and found.
#[derive(Debug)]
pub struct ExploreReport {
    /// Total schedules executed (DFS + random + minimization probes).
    pub schedules_run: usize,
    /// Schedules executed by the bounded-preemption DFS.
    pub dfs_schedules: usize,
    /// Schedules executed by random walks.
    pub random_schedules: usize,
    /// True if the DFS enumerated its whole bounded space (it was not
    /// cut off by `max_schedules` or by finding a counterexample).
    pub exhausted: bool,
    /// Runs abandoned for exceeding `max_steps`.
    pub step_limited: usize,
    /// Runs in which a forced choice named a disabled thread — evidence
    /// of nondeterminism in the scenario (e.g. real randomness altering
    /// control flow between runs).
    pub divergences: usize,
    /// The first failing schedule found, if any.
    pub counterexample: Option<Counterexample>,
}

impl ExploreReport {
    /// True if no counterexample was found.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// One node of the DFS decision path.
#[derive(Debug)]
struct PathNode {
    /// Candidate choices in exploration order: the default
    /// (non-preemptive) continuation first, then the remaining enabled
    /// threads by index.
    ordered: Vec<usize>,
    /// Index into `ordered` of the choice taken by the current path.
    pos: usize,
    /// Preemptions in the path strictly before this node.
    preemptions_before: usize,
    /// Thread scheduled at the previous node (None at the root).
    prev: Option<usize>,
}

/// Deterministic schedule explorer over a scenario factory.
///
/// The factory builds a fresh [`Execution`] — fresh shared state, fresh
/// thread closures, fresh check — for every run; the explorer owns
/// *when* each virtual thread advances.
#[derive(Debug, Clone)]
pub struct Explorer {
    config: SchedConfig,
}

impl Explorer {
    /// An explorer with the given tuning.
    pub fn new(config: SchedConfig) -> Explorer {
        Explorer { config }
    }

    /// An explorer with [`SchedConfig::default`].
    pub fn with_defaults() -> Explorer {
        Explorer::new(SchedConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Explores `factory`'s interleavings: the bounded-preemption DFS
    /// first, then `random_walks` seeded walks. Stops at the first
    /// counterexample (minimized if configured).
    pub fn explore(&self, factory: &dyn Fn() -> Execution) -> ExploreReport {
        let mut report = ExploreReport {
            schedules_run: 0,
            dfs_schedules: 0,
            random_schedules: 0,
            exhausted: false,
            step_limited: 0,
            divergences: 0,
            counterexample: None,
        };
        self.dfs(factory, &mut report);
        if report.counterexample.is_none() {
            self.random_walks(factory, &mut report);
        }
        report
    }

    /// The bounded-preemption DFS (see module docs).
    fn dfs(&self, factory: &dyn Fn() -> Execution, report: &mut ExploreReport) {
        let bound = self.config.preemption_bound;
        let mut prefix: Schedule = Vec::new();
        loop {
            if report.dfs_schedules >= self.config.max_schedules {
                return;
            }
            let record = run_one(factory(), &prefix, self.config.max_steps);
            report.schedules_run += 1;
            report.dfs_schedules += 1;
            self.note_run(&record, report);
            if let RunOutcome::Fail { message } = &record.outcome {
                report.counterexample =
                    Some(self.build_counterexample(factory, message.clone(), &record, report));
                return;
            }
            // Rebuild the decision path from the recorded run and
            // backtrack to the deepest node with an untried,
            // within-bound alternative.
            let mut path = build_path(&record);
            loop {
                let Some(mut node) = path.pop() else {
                    report.exhausted = true;
                    return;
                };
                let mut advanced = false;
                while node.pos + 1 < node.ordered.len() {
                    node.pos += 1;
                    let candidate = node.ordered[node.pos];
                    let preemptions = node.preemptions_before
                        + usize::from(is_preemption(node.prev, candidate, &node.ordered));
                    if preemptions <= bound {
                        advanced = true;
                        break;
                    }
                }
                if advanced {
                    prefix = path
                        .iter()
                        .map(|n| n.ordered[n.pos])
                        .chain(std::iter::once(node.ordered[node.pos]))
                        .collect();
                    break;
                }
            }
        }
    }

    /// Seeded random walks; walk `w` uses seed `seed + w` and picks
    /// uniformly among the enabled threads at every step.
    fn random_walks(&self, factory: &dyn Fn() -> Execution, report: &mut ExploreReport) {
        for walk in 0..self.config.random_walks {
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(walk as u64));
            let record = engine::run_driven(
                factory(),
                &mut |_step, enabled, _prev| enabled[rng.gen_range(0..enabled.len())],
                self.config.max_steps,
            );
            report.schedules_run += 1;
            report.random_schedules += 1;
            self.note_run(&record, report);
            if let RunOutcome::Fail { message } = &record.outcome {
                report.counterexample =
                    Some(self.build_counterexample(factory, message.clone(), &record, report));
                return;
            }
        }
    }

    /// Replays a frozen schedule once and returns the run's outcome.
    /// The schedule is a forced prefix; steps beyond it (or forced
    /// choices that are no longer enabled) fall back to the
    /// deterministic default policy, so frozen schedules keep running —
    /// if more loosely — as the code under test evolves.
    pub fn replay(&self, factory: &dyn Fn() -> Execution, schedule: &Schedule) -> RunOutcome {
        run_one(factory(), schedule, self.config.max_steps).outcome
    }

    fn note_run(&self, record: &RunRecord, report: &mut ExploreReport) {
        if record.outcome == RunOutcome::StepLimited {
            report.step_limited += 1;
        }
        if record.diverged {
            report.divergences += 1;
        }
    }

    /// Minimizes (if configured) and packages a failing run.
    fn build_counterexample(
        &self,
        factory: &dyn Fn() -> Execution,
        message: String,
        record: &RunRecord,
        report: &mut ExploreReport,
    ) -> Counterexample {
        let schedule: Schedule = record.steps.iter().map(|s| s.thread).collect();
        if !self.config.minimize {
            return Counterexample { message, schedule, trace: trace_string(&record.steps) };
        }
        let (schedule, steps, message) =
            self.minimize(factory, schedule, record.steps.clone(), message, report);
        Counterexample { message, schedule, trace: trace_string(&steps) }
    }

    /// Greedy tail truncation: repeatedly try cutting the schedule just
    /// before its last *non-default* decision; if the default fill from
    /// there still fails, adopt the shorter schedule. The result is a
    /// schedule whose trailing decisions are all forced/default — the
    /// final preemption it contains is essential.
    fn minimize(
        &self,
        factory: &dyn Fn() -> Execution,
        mut schedule: Schedule,
        mut steps: Vec<Step>,
        mut message: String,
        report: &mut ExploreReport,
    ) -> (Schedule, Vec<Step>, String) {
        while let Some(cut) = last_nondefault_index(&schedule) {
            let candidate: Schedule = schedule[..cut].to_vec();
            let record = run_one(factory(), &candidate, self.config.max_steps);
            report.schedules_run += 1;
            let RunOutcome::Fail { message: m } = record.outcome else { break };
            schedule = record.steps.iter().map(|s| s.thread).collect();
            steps = record.steps;
            message = m;
            // The re-recorded schedule may again have a non-default
            // tail (default fill-in is recorded explicitly), so trim
            // the recorded schedule back to the forced prefix first.
            schedule.truncate(cut);
        }
        (schedule, steps, message)
    }
}

/// Rebuilds the DFS decision path from a recorded run.
fn build_path(record: &RunRecord) -> Vec<PathNode> {
    let mut path = Vec::with_capacity(record.steps.len());
    let mut prev: Option<usize> = None;
    let mut preemptions = 0usize;
    for (step, enabled) in record.steps.iter().zip(&record.enabled_sets) {
        let ordered = candidate_order(prev, enabled);
        let pos =
            ordered.iter().position(|&c| c == step.thread).expect("recorded choice was enabled");
        path.push(PathNode { ordered, pos, preemptions_before: preemptions, prev });
        preemptions += usize::from(is_preemption(prev, step.thread, &path.last().unwrap().ordered));
        prev = Some(step.thread);
    }
    path
}

/// Candidate choices at a node, default (non-preemptive) continuation
/// first, then the remaining enabled threads by index.
fn candidate_order(prev: Option<usize>, enabled: &[usize]) -> Vec<usize> {
    let default = engine::default_choice(prev, enabled);
    std::iter::once(default).chain(enabled.iter().copied().filter(|&c| c != default)).collect()
}

/// A choice is a preemption iff it switches away from a previous thread
/// that is still enabled. `ordered` is the node's candidate list (its
/// membership is the enabled set).
fn is_preemption(prev: Option<usize>, choice: usize, ordered: &[usize]) -> bool {
    match prev {
        Some(p) => choice != p && ordered.contains(&p),
        None => false,
    }
}

/// Index of the last context switch in the schedule (entry `k` naming a
/// different thread than entry `k-1`), falling back to `0` for a
/// non-empty switch-free schedule and `None` for an empty one. Cutting
/// at the returned index and default-filling from there removes the
/// schedule's last forced decision.
fn last_nondefault_index(schedule: &Schedule) -> Option<usize> {
    if schedule.is_empty() {
        return None;
    }
    (1..schedule.len()).rev().find(|&k| schedule[k] != schedule[k - 1]).or(Some(0))
}

/// Formats steps as a numbered, replayable trace.
pub fn trace_string(steps: &[Step]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (k, step) in steps.iter().enumerate() {
        let _ = writeln!(out, "  step {k:>4}: t{} @ {}", step.thread, step.site);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ThreadBody;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    /// A classic lost-update race: two threads read-modify-write a
    /// shared cell with a schedule point between load and store. Only
    /// an interleaving that preempts between them loses an update.
    fn lost_update_factory() -> Execution {
        let cell = Arc::new(AtomicI64::new(0));
        let threads: Vec<ThreadBody> = (0..2)
            .map(|_| {
                let cell = cell.clone();
                Box::new(move || {
                    let v = cell.load(Ordering::SeqCst);
                    omt_util::sched::yield_point("race.between_load_and_store");
                    cell.store(v + 1, Ordering::SeqCst);
                }) as ThreadBody
            })
            .collect();
        let check_cell = cell.clone();
        Execution {
            threads,
            check: Box::new(move || {
                let v = check_cell.load(Ordering::SeqCst);
                if v == 2 {
                    Ok(())
                } else {
                    Err(format!("lost update: expected 2, got {v}"))
                }
            }),
        }
    }

    /// The same program with the race fixed (atomic increment).
    fn sound_factory() -> Execution {
        let cell = Arc::new(AtomicI64::new(0));
        let threads: Vec<ThreadBody> = (0..2)
            .map(|_| {
                let cell = cell.clone();
                Box::new(move || {
                    omt_util::sched::yield_point("race.before_increment");
                    cell.fetch_add(1, Ordering::SeqCst);
                }) as ThreadBody
            })
            .collect();
        let check_cell = cell.clone();
        Execution {
            threads,
            check: Box::new(move || {
                let v = check_cell.load(Ordering::SeqCst);
                if v == 2 {
                    Ok(())
                } else {
                    Err(format!("expected 2, got {v}"))
                }
            }),
        }
    }

    #[test]
    fn dfs_finds_the_lost_update() {
        let explorer = Explorer::new(SchedConfig { random_walks: 0, ..SchedConfig::default() });
        let report = explorer.explore(&lost_update_factory);
        let cx = report.counterexample.expect("the race must be found");
        assert!(cx.message.contains("lost update"), "{}", cx.message);
        assert!(cx.trace.contains("race.between_load_and_store"));
        // The counterexample must replay.
        match explorer.replay(&lost_update_factory, &cx.schedule) {
            RunOutcome::Fail { message } => assert!(message.contains("lost update")),
            o => panic!("minimized schedule must still fail, got {o:?}"),
        }
    }

    #[test]
    fn dfs_exhausts_the_sound_program() {
        let explorer = Explorer::new(SchedConfig { random_walks: 0, ..SchedConfig::default() });
        let report = explorer.explore(&sound_factory);
        assert!(report.passed(), "{:?}", report.counterexample);
        assert!(report.exhausted, "tiny space must be fully enumerated");
        assert!(report.dfs_schedules > 1, "more than one interleaving explored");
        assert_eq!(report.divergences, 0);
    }

    #[test]
    fn random_walks_also_find_the_race() {
        let explorer = Explorer::new(SchedConfig {
            max_schedules: 0, // disable DFS
            random_walks: 100,
            ..SchedConfig::default()
        });
        let report = explorer.explore(&lost_update_factory);
        assert!(report.counterexample.is_some());
        assert!(report.random_schedules >= 1);
    }

    #[test]
    fn walks_are_deterministic_under_a_seed() {
        let config = SchedConfig { max_schedules: 0, random_walks: 50, ..SchedConfig::default() };
        let a = Explorer::new(config.clone()).explore(&lost_update_factory);
        let b = Explorer::new(config).explore(&lost_update_factory);
        let (ca, cb) = (a.counterexample.unwrap(), b.counterexample.unwrap());
        assert_eq!(ca.schedule, cb.schedule, "same seed, same counterexample");
        assert_eq!(a.random_schedules, b.random_schedules);
    }

    #[test]
    fn minimized_schedules_are_no_longer_than_raw_ones() {
        let raw = Explorer::new(SchedConfig {
            random_walks: 0,
            minimize: false,
            ..SchedConfig::default()
        })
        .explore(&lost_update_factory)
        .counterexample
        .unwrap();
        let min = Explorer::new(SchedConfig { random_walks: 0, ..SchedConfig::default() })
            .explore(&lost_update_factory)
            .counterexample
            .unwrap();
        assert!(min.schedule.len() <= raw.schedule.len());
    }

    #[test]
    fn preemption_bound_zero_sees_only_serial_orders() {
        // With no preemptions allowed the lost update is invisible:
        // each thread runs its load+store back to back.
        let explorer = Explorer::new(SchedConfig {
            preemption_bound: 0,
            random_walks: 0,
            ..SchedConfig::default()
        });
        let report = explorer.explore(&lost_update_factory);
        assert!(report.passed(), "bound 0 must miss the race");
        assert!(report.exhausted);
    }

    #[test]
    fn three_thread_spaces_stay_enumerable() {
        let factory = || {
            let cell = Arc::new(AtomicI64::new(0));
            let threads: Vec<ThreadBody> = (0..3)
                .map(|_| {
                    let cell = cell.clone();
                    Box::new(move || {
                        omt_util::sched::yield_point("t.a");
                        cell.fetch_add(1, Ordering::SeqCst);
                        omt_util::sched::yield_point("t.b");
                        cell.fetch_add(1, Ordering::SeqCst);
                    }) as ThreadBody
                })
                .collect();
            let c = cell.clone();
            Execution {
                threads,
                check: Box::new(move || {
                    if c.load(Ordering::SeqCst) == 6 {
                        Ok(())
                    } else {
                        Err("sum".into())
                    }
                }),
            }
        };
        let explorer = Explorer::new(SchedConfig { random_walks: 0, ..SchedConfig::default() });
        let report = explorer.explore(&factory);
        assert!(report.passed());
        assert!(report.exhausted);
        assert!(report.dfs_schedules >= 10, "got {}", report.dfs_schedules);
    }
}
