//! # omt-sched — deterministic schedule explorer for the omt STM
//!
//! A loom-style interleaving explorer built on the schedule-point hooks
//! in [`omt_util::sched`]. A *scenario* is a factory producing fresh
//! thread closures plus a final-state oracle; the explorer runs the
//! threads as cooperative virtual threads — real OS threads, but with
//! exactly one allowed to run at a time — and enumerates the orders in
//! which they pass their schedule points:
//!
//! - an exhaustive DFS with a **bounded preemption budget**
//!   (CHESS-style: most concurrency bugs need very few forced context
//!   switches), then
//! - **seeded random walks** that sample the space beyond the bound.
//!
//! A failing schedule is greedily **minimized** and reported as a
//! [`Counterexample`] carrying a replayable schedule (a plain
//! `Vec<usize>` of thread choices, freezable in a regression test) and
//! a human-readable step trace naming each schedule point.
//!
//! ## Scope
//!
//! The engine serializes execution, so it explores interleavings of
//! *instrumented* steps under sequential consistency; weak-memory
//! reorderings between schedule points are not modeled. Scenario code
//! must be deterministic given the schedule (no time, no ambient
//! randomness that changes which schedule points run) and must not
//! block on another virtual thread without a schedule point in the
//! loop — a blocked thread that never yields deadlocks the baton, and a
//! spin loop that yields forever is cut off by the step budget and
//! abandoned. Blocking acquisitions routed through
//! [`omt_util::sched::block_until`] (like the STM's serial-mode gate)
//! are exempt: the engine models them as a visible `Blocked` status, so
//! STM scenarios may run with `serial_after_aborts: Some(_)` and have
//! the serial-fallback protocol itself explored. If every thread ends
//! up blocked, the run fails with a deadlock counterexample instead of
//! hanging.
//!
//! Virtual threads are pooled per scheduler thread and reused across
//! runs, and schedule points keyed by object
//! ([`omt_util::sched::yield_point_keyed`]) feed sleep-set pruning of
//! commuting interleavings — see [`SchedConfig::sleep_sets`].
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicI64, Ordering};
//! use omt_sched::{Execution, Explorer, SchedConfig, ThreadBody};
//!
//! // Two racing read-modify-write threads; the oracle wants both
//! // increments to survive.
//! let factory = || {
//!     let cell = Arc::new(AtomicI64::new(0));
//!     let threads: Vec<ThreadBody> = (0..2)
//!         .map(|_| {
//!             let cell = cell.clone();
//!             Box::new(move || {
//!                 let v = cell.load(Ordering::SeqCst);
//!                 omt_util::sched::yield_point("example.mid_rmw");
//!                 cell.store(v + 1, Ordering::SeqCst);
//!             }) as ThreadBody
//!         })
//!         .collect();
//!     let cell2 = cell.clone();
//!     Execution {
//!         threads,
//!         check: Box::new(move || match cell2.load(Ordering::SeqCst) {
//!             2 => Ok(()),
//!             v => Err(format!("lost update: {v}")),
//!         }),
//!     }
//! };
//! let report = Explorer::new(SchedConfig::default()).explore(&factory);
//! let cx = report.counterexample.expect("explorer finds the race");
//! assert!(cx.message.contains("lost update"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod explore;

pub use engine::{
    run_driven, run_driven_reference, run_one, Chooser, EnabledSlot, Execution, RunOutcome,
    RunRecord, Step, ThreadBody, SITE_DONE, SITE_PANIC,
};
pub use explore::{trace_string, Counterexample, ExploreReport, Explorer, SchedConfig, Schedule};
