//! # omt-util — dependency-free substrate for the omt workspace
//!
//! The workspace builds in hermetic environments with no crates-io
//! access, so the handful of external utilities the reproduction needs
//! are implemented here instead of pulled from the registry:
//!
//! - [`rng`] — a small, fast, *deterministic* pseudo-random number
//!   generator (SplitMix64 core) with explicit seeding, used by the
//!   workload generators, randomized backoff, and the seeded
//!   property-style tests;
//! - [`sync`] — `Mutex` / `RwLock` wrappers over `std::sync` with a
//!   panic-tolerant (non-poisoning) API in the style of `parking_lot`,
//!   plus an owned [`sync::ArcMutexGuard`] for hand-over-hand locking;
//! - [`sched`] — thread-local schedule-point hooks that let the
//!   `omt-sched` deterministic interleaving explorer pause instrumented
//!   runtime code at cross-thread-visible steps (one relaxed load per
//!   site when nothing is installed);
//! - [`hist`] — fixed-footprint log-linear histograms for latency
//!   percentiles (p50/p95/p99 with ~3% relative error), used by the
//!   service benchmark harness;
//! - [`pad`] — cache-line padding ([`pad::CachePadded`]) and padded
//!   atomic stripe arrays ([`pad::ShardArray`]) for hot shared
//!   counters, used by the STM's decentralized clock layer.
//!
//! Everything here is intentionally boring: no unsafe beyond the one
//! documented lifetime extension in [`sync::ArcMutexGuard`], no
//! platform-specific code, no feature flags.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hist;
pub mod pad;
pub mod rng;
pub mod sched;
pub mod sync;
