//! Cache-line padding and padded atomic shard arrays.
//!
//! Two primitives for keeping hot shared words off each other's cache
//! lines:
//!
//! - [`CachePadded`] — a transparent wrapper that aligns (and therefore
//!   pads) its contents to 128 bytes, covering the 64-byte lines common
//!   on x86 and the 128-byte prefetch pairs on recent Intel and Apple
//!   hardware. Used to separate adjacent hot atomics in a struct.
//! - [`ShardArray`] — a fixed, power-of-two array of padded
//!   `AtomicU64`s with a stable thread-home stripe assignment, built
//!   for *striped monotone counters*: writers bump only their home
//!   stripe (no cross-thread CAS contention), readers sum or max the
//!   stripes. Because every stripe is monotone non-decreasing, the sum
//!   is monotone too, and an unchanged sum between two reads proves no
//!   stripe moved in between — the property the STM's striped
//!   acquisition clock leans on (DESIGN.md §4.11).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Aligns `T` to 128 bytes so two neighboring values never share a
/// cache line (nor a 2-line prefetch pair).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` with cache-line padding.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwraps, discarding the padding.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> CachePadded<T> {
        CachePadded::new(value)
    }
}

/// Round-robin source for thread home stripes: each thread is assigned
/// the next index the first time it touches *any* `ShardArray` and
/// keeps it for life, so a thread's traffic in every array stays on
/// one stripe (modulo the array's length).
static NEXT_HOME: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    static HOME_INDEX: usize = NEXT_HOME.fetch_add(1, Ordering::Relaxed);
}

/// A power-of-two array of cache-line-padded `AtomicU64` stripes with a
/// per-thread home slot.
///
/// Designed for monotone counters read as a sum: [`bump_home`] is a
/// single uncontended `fetch_add` on the calling thread's stripe, and
/// [`sum`] with `Acquire` loads observes a value that can only grow.
/// See the module docs for why an unchanged sum is a quiescence proof.
///
/// [`bump_home`]: ShardArray::bump_home
/// [`sum`]: ShardArray::sum
pub struct ShardArray {
    stripes: Box<[CachePadded<AtomicU64>]>,
}

impl ShardArray {
    /// Creates `len` zeroed stripes. `len` must be a power of two (the
    /// home mapping is a mask).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or not a power of two.
    pub fn new(len: usize) -> ShardArray {
        assert!(len.is_power_of_two(), "stripe count must be a power of two, got {len}");
        let stripes = (0..len).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
        ShardArray { stripes }
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Always `false`: construction rejects zero stripes.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The calling thread's home stripe index (stable for the thread's
    /// lifetime).
    pub fn home(&self) -> usize {
        HOME_INDEX.with(|&i| i & (self.stripes.len() - 1))
    }

    /// The stripe at `index` (modulo the stripe count).
    pub fn stripe(&self, index: usize) -> &AtomicU64 {
        &self.stripes[index & (self.stripes.len() - 1)]
    }

    /// The calling thread's home stripe.
    pub fn home_stripe(&self) -> &AtomicU64 {
        &self.stripes[self.home()]
    }

    /// Adds 1 to the home stripe, returning the stripe's *previous*
    /// value. An uncontended RMW in steady state: only threads homed to
    /// the same stripe ever touch this line.
    pub fn bump_home(&self) -> u64 {
        self.home_stripe().fetch_add(1, Ordering::AcqRel)
    }

    /// Sum of all stripes (`Acquire` loads). Monotone non-decreasing
    /// over time because every stripe is; exact when no bump is
    /// concurrent with the walk.
    pub fn sum(&self) -> u64 {
        self.stripes.iter().map(|s| s.load(Ordering::Acquire)).sum()
    }

    /// Maximum over all stripes (`Acquire` loads).
    pub fn max(&self) -> u64 {
        self.stripes.iter().map(|s| s.load(Ordering::Acquire)).max().unwrap_or(0)
    }
}

impl fmt::Debug for ShardArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardArray")
            .field("len", &self.stripes.len())
            .field("sum", &self.sum())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_separates_neighbors() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 128);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 128);
        let pair = [CachePadded::new(AtomicU64::new(0)), CachePadded::new(AtomicU64::new(0))];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 128, "neighbors {a:#x} and {b:#x} share a line");
    }

    #[test]
    fn cache_padded_derefs() {
        let mut cell = CachePadded::new(7u64);
        assert_eq!(*cell, 7);
        *cell += 1;
        assert_eq!(cell.into_inner(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        ShardArray::new(6);
    }

    #[test]
    fn home_is_stable_and_in_range() {
        let arr = ShardArray::new(8);
        let h = arr.home();
        assert!(h < 8);
        for _ in 0..100 {
            assert_eq!(arr.home(), h, "home stripe must not move");
        }
        assert_eq!(
            arr.home_stripe() as *const AtomicU64,
            arr.stripe(arr.home()) as *const AtomicU64
        );
    }

    #[test]
    fn cross_thread_sum_is_exact() {
        let arr = ShardArray::new(4);
        const THREADS: usize = 8;
        const BUMPS: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..BUMPS {
                        arr.bump_home();
                    }
                });
            }
        });
        assert_eq!(arr.sum(), THREADS as u64 * BUMPS);
        assert!(arr.max() <= arr.sum());
    }

    #[test]
    fn sum_unchanged_proves_quiescence() {
        // The monotone-sum property the striped acquisition clock
        // relies on: self-bumps are exactly discountable.
        let arr = ShardArray::new(4);
        let before = arr.sum();
        arr.bump_home();
        arr.bump_home();
        assert_eq!(arr.sum(), before + 2);
    }
}
