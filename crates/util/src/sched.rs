//! Schedule points: cooperative yield hooks for deterministic
//! interleaving exploration.
//!
//! The STM runtime calls [`yield_point`] at every cross-thread-visible
//! step of its hot paths (ownership CAS, clock bumps, release-phase
//! header stores, undo replay, …). In production nothing is installed
//! and each call costs one relaxed atomic load and a predicted branch —
//! the same price the failpoint layer already pays per site.
//!
//! A schedule explorer (crate `omt-sched`) installs a *thread-local*
//! hook on each of its virtual threads; the hook blocks the thread
//! until the explorer's scheduler hands it the baton again. Keeping the
//! hook thread-local means a test's set-up code (running on the harness
//! thread, no hook installed) passes through schedule points untouched
//! while the virtual threads under test stop at every one.
//!
//! Three kinds of schedule point exist:
//!
//! - [`yield_point`]: a plain pre-step yield, no object identity.
//! - [`yield_point_keyed`]: a yield that also names *which* object the
//!   next step touches (an opaque `usize`, typically a header address).
//!   Explorers use the key for partial-order reduction: two steps on
//!   different keys commute, so schedules differing only in their order
//!   need not both be explored.
//! - [`block_until`]: a potentially-*blocking* acquisition (lock, gate).
//!   With no hook installed it simply blocks. Under an explorer it
//!   loops a non-blocking `try_claim` against a *blocking* schedule
//!   point, so the scheduler sees the thread as blocked (not runnable)
//!   instead of deadlocking the baton inside a real `lock()` call.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hooks currently installed across all threads. Zero means
/// [`yield_point`] is a near-no-op everywhere.
static HOOKS_INSTALLED: AtomicUsize = AtomicUsize::new(0);

/// What a thread is about to do when it reaches a schedule point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedPoint {
    /// Static name of the instrumented step (see `omt_stm::sched_sites`).
    pub site: &'static str,
    /// Identity of the object the next step touches, if the site names
    /// one (typically a header address). `None` means "unknown /
    /// global" and explorers must treat the step as dependent on
    /// everything.
    pub key: Option<usize>,
    /// True when the thread is *blocked*: it cannot make progress until
    /// some other thread acts (e.g. releases a lock). The explorer
    /// should treat the thread as not-runnable rather than schedule it
    /// in a busy loop.
    pub blocking: bool,
}

/// A schedule-point handler: called with a [`SchedPoint`] at every
/// instrumented step the installing thread reaches. Returns `true` if
/// the hook handled the point (the explorer scheduled around it);
/// `false` means "unhandled" and is only meaningful for *blocking*
/// points, where the caller falls back to a real blocking acquisition.
pub type Hook = Box<dyn FnMut(SchedPoint) -> bool>;

thread_local! {
    static HOOK: RefCell<Option<Hook>> = const { RefCell::new(None) };
}

/// A schedule point. Calls this thread's hook with `site`, if one is
/// installed; otherwise returns immediately.
///
/// `site` is a static name identifying the instrumented step (see
/// `omt_stm::sched_sites`); explorers record it in counterexample
/// traces.
#[inline]
pub fn yield_point(site: &'static str) {
    if HOOKS_INSTALLED.load(Ordering::Relaxed) == 0 {
        return;
    }
    hook_point(SchedPoint { site, key: None, blocking: false });
}

/// A schedule point that names the object the next step touches.
/// Explorers use `key` for commutativity-based pruning; production
/// builds pay the same near-no-op cost as [`yield_point`].
#[inline]
pub fn yield_point_keyed(site: &'static str, key: usize) {
    if HOOKS_INSTALLED.load(Ordering::Relaxed) == 0 {
        return;
    }
    hook_point(SchedPoint { site, key: Some(key), blocking: false });
}

/// A blocking acquisition visible to explorers.
///
/// `try_claim` is a non-blocking attempt (e.g. `try_write()`), returning
/// `Some(resource)` on success; `block` is the real blocking path used
/// when no explorer is attached (or when the hook declines the point).
///
/// With no hook installed this is exactly `try_claim().unwrap_or_else`
/// over `block()` — one cheap attempt, then the normal blocking wait.
/// Under an explorer, each failed `try_claim` raises a *blocking*
/// schedule point; the explorer parks the thread as blocked and only
/// reschedules it when some other thread ran (and may have released
/// the resource), so the acquisition loop is deterministic and the
/// baton never blocks inside a native lock.
pub fn block_until<T>(
    site: &'static str,
    mut try_claim: impl FnMut() -> Option<T>,
    block: impl FnOnce() -> T,
) -> T {
    if HOOKS_INSTALLED.load(Ordering::Relaxed) == 0 {
        return match try_claim() {
            Some(v) => v,
            None => block(),
        };
    }
    loop {
        if let Some(v) = try_claim() {
            return v;
        }
        let handled = hook_point(SchedPoint { site, key: None, blocking: true });
        if !handled {
            // No hook on this thread (some other thread is being
            // explored) or the hook declined: fall back to the real
            // blocking acquisition.
            return block();
        }
    }
}

#[cold]
fn hook_point(point: SchedPoint) -> bool {
    HOOK.with(|h| {
        // `try_borrow_mut` guards against re-entrancy: a hook that
        // itself reaches a schedule point (it should not) is ignored
        // rather than panicking the virtual thread mid-protocol.
        if let Ok(mut hook) = h.try_borrow_mut() {
            if let Some(f) = hook.as_mut() {
                return f(point);
            }
        }
        false
    })
}

/// Installs `hook` as this thread's schedule-point handler, replacing
/// any previous one. The hook runs on every [`yield_point`] this thread
/// reaches until [`clear_hook`].
pub fn install_hook(hook: Hook) {
    HOOK.with(|h| {
        let mut slot = h.borrow_mut();
        if slot.is_none() {
            HOOKS_INSTALLED.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some(hook);
    });
}

/// Removes this thread's schedule-point handler, if any.
pub fn clear_hook() {
    HOOK.with(|h| {
        let mut slot = h.borrow_mut();
        if slot.take().is_some() {
            HOOKS_INSTALLED.fetch_sub(1, Ordering::Relaxed);
        }
    });
}

/// True if this thread has a hook installed (used by debug assertions
/// in explorers).
pub fn hook_installed() -> bool {
    HOOK.with(|h| h.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn no_hook_is_a_no_op() {
        assert!(!hook_installed());
        yield_point("nothing.listens");
        yield_point_keyed("nothing.listens", 7);
    }

    #[test]
    fn hook_sees_sites_and_clear_removes_it() {
        let seen: Rc<Cell<usize>> = Rc::new(Cell::new(0));
        let seen2 = seen.clone();
        install_hook(Box::new(move |_point| {
            seen2.set(seen2.get() + 1);
            true
        }));
        assert!(hook_installed());
        yield_point("a");
        yield_point("b");
        assert_eq!(seen.get(), 2);
        clear_hook();
        assert!(!hook_installed());
        yield_point("c");
        assert_eq!(seen.get(), 2);
    }

    #[test]
    fn keyed_points_carry_their_key() {
        let last: Rc<Cell<Option<usize>>> = Rc::new(Cell::new(None));
        let last2 = last.clone();
        install_hook(Box::new(move |point| {
            last2.set(point.key);
            true
        }));
        yield_point("plain");
        assert_eq!(last.get(), None);
        yield_point_keyed("keyed", 42);
        assert_eq!(last.get(), Some(42));
        clear_hook();
    }

    #[test]
    fn hooks_are_thread_local() {
        install_hook(Box::new(|_| panic!("other thread's yield must not reach this hook")));
        std::thread::spawn(|| {
            // No hook on this thread: silently passes through.
            yield_point("x");
        })
        .join()
        .unwrap();
        clear_hook();
    }

    #[test]
    fn reinstall_replaces_without_leaking_count() {
        install_hook(Box::new(|_| true));
        install_hook(Box::new(|_| true));
        clear_hook();
        assert!(!hook_installed());
        // Count balanced: with no hooks anywhere, yield is the fast path
        // (nothing observable to assert beyond "does not hang or panic").
        yield_point("y");
    }

    #[test]
    fn block_until_without_hook_tries_then_blocks() {
        // try_claim succeeds: block must not run.
        let got = block_until("lock.x", || Some(1), || panic!("must not block"));
        assert_eq!(got, 1);
        // try_claim fails: falls through to block.
        let got = block_until("lock.x", || None::<i32>, || 2);
        assert_eq!(got, 2);
    }

    #[test]
    fn block_until_loops_try_claim_under_a_hook() {
        // The hook "handles" two blocking points; try_claim succeeds on
        // the third attempt. block() must never run.
        let attempts: Rc<Cell<usize>> = Rc::new(Cell::new(0));
        let blocked_seen: Rc<Cell<usize>> = Rc::new(Cell::new(0));
        let bs = blocked_seen.clone();
        install_hook(Box::new(move |point| {
            assert!(point.blocking);
            bs.set(bs.get() + 1);
            true
        }));
        let a = attempts.clone();
        let got = block_until(
            "lock.y",
            move || {
                a.set(a.get() + 1);
                if a.get() >= 3 {
                    Some(99)
                } else {
                    None
                }
            },
            || panic!("hook handled the point; must not block"),
        );
        clear_hook();
        assert_eq!(got, 99);
        assert_eq!(attempts.get(), 3);
        assert_eq!(blocked_seen.get(), 2);
    }

    #[test]
    fn block_until_falls_back_when_hook_declines() {
        install_hook(Box::new(|point| !point.blocking));
        let got = block_until("lock.z", || None::<i32>, || 7);
        clear_hook();
        assert_eq!(got, 7);
    }
}
