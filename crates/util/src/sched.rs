//! Schedule points: cooperative yield hooks for deterministic
//! interleaving exploration.
//!
//! The STM runtime calls [`yield_point`] at every cross-thread-visible
//! step of its hot paths (ownership CAS, clock bumps, release-phase
//! header stores, undo replay, …). In production nothing is installed
//! and each call costs one relaxed atomic load and a predicted branch —
//! the same price the failpoint layer already pays per site.
//!
//! A schedule explorer (crate `omt-sched`) installs a *thread-local*
//! hook on each of its virtual threads; the hook blocks the thread
//! until the explorer's scheduler hands it the baton again. Keeping the
//! hook thread-local means a test's set-up code (running on the harness
//! thread, no hook installed) passes through schedule points untouched
//! while the virtual threads under test stop at every one.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hooks currently installed across all threads. Zero means
/// [`yield_point`] is a near-no-op everywhere.
static HOOKS_INSTALLED: AtomicUsize = AtomicUsize::new(0);

/// A schedule-point handler: called with the site name at every
/// [`yield_point`] the installing thread reaches.
pub type Hook = Box<dyn FnMut(&'static str)>;

thread_local! {
    static HOOK: RefCell<Option<Hook>> = const { RefCell::new(None) };
}

/// A schedule point. Calls this thread's hook with `site`, if one is
/// installed; otherwise returns immediately.
///
/// `site` is a static name identifying the instrumented step (see
/// `omt_stm::sched_sites`); explorers record it in counterexample
/// traces.
#[inline]
pub fn yield_point(site: &'static str) {
    if HOOKS_INSTALLED.load(Ordering::Relaxed) == 0 {
        return;
    }
    yield_point_slow(site);
}

#[cold]
fn yield_point_slow(site: &'static str) {
    HOOK.with(|h| {
        // `try_borrow_mut` guards against re-entrancy: a hook that
        // itself reaches a schedule point (it should not) is ignored
        // rather than panicking the virtual thread mid-protocol.
        if let Ok(mut hook) = h.try_borrow_mut() {
            if let Some(f) = hook.as_mut() {
                f(site);
            }
        }
    });
}

/// Installs `hook` as this thread's schedule-point handler, replacing
/// any previous one. The hook runs on every [`yield_point`] this thread
/// reaches until [`clear_hook`].
pub fn install_hook(hook: Hook) {
    HOOK.with(|h| {
        let mut slot = h.borrow_mut();
        if slot.is_none() {
            HOOKS_INSTALLED.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some(hook);
    });
}

/// Removes this thread's schedule-point handler, if any.
pub fn clear_hook() {
    HOOK.with(|h| {
        let mut slot = h.borrow_mut();
        if slot.take().is_some() {
            HOOKS_INSTALLED.fetch_sub(1, Ordering::Relaxed);
        }
    });
}

/// True if this thread has a hook installed (used by debug assertions
/// in explorers).
pub fn hook_installed() -> bool {
    HOOK.with(|h| h.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn no_hook_is_a_no_op() {
        assert!(!hook_installed());
        yield_point("nothing.listens");
    }

    #[test]
    fn hook_sees_sites_and_clear_removes_it() {
        let seen: Rc<Cell<usize>> = Rc::new(Cell::new(0));
        let seen2 = seen.clone();
        install_hook(Box::new(move |_site| seen2.set(seen2.get() + 1)));
        assert!(hook_installed());
        yield_point("a");
        yield_point("b");
        assert_eq!(seen.get(), 2);
        clear_hook();
        assert!(!hook_installed());
        yield_point("c");
        assert_eq!(seen.get(), 2);
    }

    #[test]
    fn hooks_are_thread_local() {
        install_hook(Box::new(|_| panic!("other thread's yield must not reach this hook")));
        std::thread::spawn(|| {
            // No hook on this thread: silently passes through.
            yield_point("x");
        })
        .join()
        .unwrap();
        clear_hook();
    }

    #[test]
    fn reinstall_replaces_without_leaking_count() {
        install_hook(Box::new(|_| {}));
        install_hook(Box::new(|_| {}));
        clear_hook();
        assert!(!hook_installed());
        // Count balanced: with no hooks anywhere, yield is the fast path
        // (nothing observable to assert beyond "does not hang or panic").
        yield_point("y");
    }
}
