//! Non-poisoning `Mutex` / `RwLock` wrappers over `std::sync`.
//!
//! The workspace treats a panic while holding a lock as "the protected
//! data is still structurally valid" (every critical section here
//! either completes or leaves plain-old-data behind), so the poisoning
//! machinery of `std::sync` is noise: these wrappers recover the guard
//! from a [`std::sync::PoisonError`] instead of propagating it, giving
//! the `parking_lot`-style API the rest of the workspace is written
//! against.
//!
//! [`ArcMutexGuard`] additionally provides an *owned* guard (a guard
//! that keeps its mutex alive via an [`Arc`]) which the hand-over-hand
//! list traversal in `omt-workloads` needs: each step must hold the
//! next node's lock while the binding for the previous guard is
//! overwritten.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A mutual-exclusion primitive (non-poisoning `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// An RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons: a
    /// panic in another critical section is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock (non-poisoning `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires exclusive access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts shared access without blocking. `None` if a writer
    /// holds (or std reports contention on) the lock. Never poisons.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive access without blocking. `None` if any guard
    /// is held. Never poisons.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// An owned mutex guard: holds the lock *and* an `Arc` keeping the
/// mutex alive, so the guard can outlive the borrow it was created
/// from (hand-over-hand traversal reassigns the guard binding while
/// the next lock is already held).
pub struct ArcMutexGuard<T: 'static> {
    /// INVARIANT: dropped (exactly once, in `Drop`) before `_arc`, and
    /// never moved out otherwise. The `'static` lifetime is a lie told
    /// to the type system; the true lifetime is "while `_arc` lives",
    /// which `Drop` enforces.
    guard: ManuallyDrop<std::sync::MutexGuard<'static, T>>,
    _arc: Arc<Mutex<T>>,
}

/// Extension trait providing [`LockArc::lock_arc`] on `Arc<Mutex<T>>`.
pub trait LockArc<T: 'static> {
    /// Acquires the mutex, returning an owned guard that keeps the
    /// mutex alive.
    fn lock_arc(&self) -> ArcMutexGuard<T>;
}

impl<T: 'static> LockArc<T> for Arc<Mutex<T>> {
    fn lock_arc(&self) -> ArcMutexGuard<T> {
        let arc = Arc::clone(self);
        let guard = arc.lock();
        // SAFETY: the guard borrows the mutex inside `arc`'s heap
        // allocation, which is stable across moves of the Arc and kept
        // alive by `_arc` until `Drop` releases the guard first.
        let guard: std::sync::MutexGuard<'static, T> =
            unsafe { std::mem::transmute::<MutexGuard<'_, T>, MutexGuard<'static, T>>(guard) };
        ArcMutexGuard { guard: ManuallyDrop::new(guard), _arc: arc }
    }
}

impl<T: 'static> Deref for ArcMutexGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: 'static> DerefMut for ArcMutexGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: 'static> Drop for ArcMutexGuard<T> {
    fn drop(&mut self) {
        // SAFETY: `guard` is initialized (only `Drop` extracts it) and
        // the mutex it releases is kept alive by `_arc`, which drops
        // after this struct field.
        unsafe { ManuallyDrop::drop(&mut self.guard) };
    }
}

impl<T: fmt::Debug + 'static> fmt::Debug for ArcMutexGuard<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ArcMutexGuard").field(&**self).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A poisoned std mutex would panic here; ours recovers.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(1);
        {
            let r = l.try_read().expect("uncontended try_read");
            assert_eq!(*r, 1);
            // A reader blocks writers but not other readers.
            assert!(l.try_write().is_none());
            assert!(l.try_read().is_some());
        }
        {
            let mut w = l.try_write().expect("uncontended try_write");
            *w = 3;
            assert!(l.try_read().is_none());
            assert!(l.try_write().is_none());
        }
        assert_eq!(*l.read(), 3);
    }

    #[test]
    fn arc_guard_hand_over_hand() {
        let a = Arc::new(Mutex::new(1));
        let b = Arc::new(Mutex::new(2));
        let mut guard = a.lock_arc();
        assert_eq!(*guard, 1);
        // Reassign while the old guard is still alive (the crux).
        let next = b.lock_arc();
        guard = next;
        assert_eq!(*guard, 2);
        *guard += 1;
        drop(guard);
        assert_eq!(*b.lock(), 3);
        // `a` was released when its guard was overwritten.
        assert_eq!(*a.lock(), 1);
    }

    #[test]
    fn arc_guard_keeps_mutex_alive() {
        let guard = {
            let m = Arc::new(Mutex::new(String::from("alive")));
            m.lock_arc()
            // The only other Arc to the mutex drops here.
        };
        assert_eq!(&*guard, "alive");
    }

    #[test]
    fn mutex_in_thread_scope() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4_000);
    }
}
