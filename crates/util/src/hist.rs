//! Log-linear histograms for latency percentiles.
//!
//! The service harness measures tens of millions of request latencies
//! per run; storing them individually would dominate the benchmark's
//! own memory traffic. A log-linear histogram (the HdrHistogram shape)
//! keeps a fixed ~2k-bucket table instead: each power-of-two octave is
//! split into 32 linear sub-buckets, bounding the relative error of any
//! recorded value — and therefore of any reported percentile — to
//! about 3%, independent of magnitude.
//!
//! # Examples
//!
//! ```
//! use omt_util::hist::LogHistogram;
//!
//! let mut h = LogHistogram::new();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! let p50 = h.percentile(50.0);
//! assert!((450..=550).contains(&p50));
//! ```

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: indices `0..SUB` are exact, then one group of
/// `SUB` sub-buckets per remaining octave of the u64 range.
const BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB as usize) + SUB as usize;

/// A fixed-size log-linear histogram of `u64` samples (typically
/// latencies in microseconds or nanoseconds).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    max: u64,
}

/// Bucket index of `v`: exact below `SUB`, otherwise the octave times
/// `SUB` plus the top `SUB_BITS` bits below the leading one.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BITS)) & (SUB - 1);
    (((exp - SUB_BITS + 1) as u64 * SUB) + sub) as usize
}

/// Lowest value mapping to bucket `idx` (inverse of [`index_of`]).
#[inline]
fn lower_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let group = idx / SUB; // 1-based octave group
    let sub = idx % SUB;
    let exp = group as u32 + SUB_BITS - 1;
    (1u64 << exp) + (sub << (exp - SUB_BITS))
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram { buckets: Box::new([0; BUCKETS]), count: 0, sum: 0, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[index_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact). 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Value at percentile `p` (in `0.0..=100.0`): the smallest bucket
    /// bound such that at least `p`% of samples fall at or below it,
    /// reported as the bucket's midpoint (±~3% relative error). Returns
    /// 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let lo = lower_bound(idx);
                let hi = if idx + 1 < BUCKETS { lower_bound(idx + 1) } else { u64::MAX };
                // Midpoint, clamped to the true max so the tail never
                // reads past any recorded sample.
                return (lo + (hi - lo) / 2).min(self.max);
            }
        }
        self.max
    }
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(lower_bound(index_of(v)), v);
        }
    }

    #[test]
    fn index_and_bound_are_consistent() {
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let idx = index_of(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            assert!(lower_bound(idx) <= v, "lower bound above {v}");
            if idx + 1 < BUCKETS {
                assert!(lower_bound(idx + 1) > v, "next bucket starts at or below {v}");
            }
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((4_700..=5_300).contains(&p50), "p50 = {p50}");
        assert!((9_400..=10_000).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99, "percentiles must be monotone");
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in 1..=500u64 {
            a.record(v);
            both.record(v);
        }
        for v in 501..=1_000u64 {
            b.record(v * 7);
            both.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        for p in [10.0, 50.0, 95.0, 99.9] {
            assert_eq!(a.percentile(p), both.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
