//! Deterministic pseudo-random numbers (SplitMix64).
//!
//! The workspace needs randomness in three places: workload generators
//! (which must be *reproducible*, so every run of an experiment sees
//! the same operation sequence), randomized backoff (which only needs
//! decorrelation between threads), and seeded property-style tests.
//! SplitMix64 is more than adequate for all three: it is a bijective
//! 64-bit mixer with provably full period, passes BigCrush, and costs a
//! handful of arithmetic instructions per draw.
//!
//! # Examples
//!
//! ```
//! use omt_util::rng::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! // Same seed, same sequence:
//! assert_eq!(StdRng::seed_from_u64(7).next_u64(), StdRng::seed_from_u64(7).next_u64());
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Advances a SplitMix64 state and returns the mixed output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable deterministic generator.
///
/// The name matches the `rand` crate's standard generator so call
/// sites read familiarly; the algorithm is SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical sequences on every platform.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform sample from an integer range (see [`RangeSample`] for
    /// the supported range shapes).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Output {
        range.sample(&mut || splitmix64(&mut self.state))
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside 0..=1");
        // Compare against a 53-bit mantissa-uniform draw.
        let draw = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        draw < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

/// A Zipf-distributed sampler over `0..n` (rank 0 is the hottest).
///
/// Service workloads hit keys with a power-law skew — a few hot
/// accounts take most of the traffic — and the traffic generator needs
/// that shape to produce realistic contention. The sampler precomputes
/// the normalized CDF once (`O(n)` memory) and draws by binary search
/// (`O(log n)` per sample), exact for any exponent.
///
/// # Examples
///
/// ```
/// use omt_util::rng::{StdRng, Zipf};
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `0..n` with exponent `s` (`s = 0` is
    /// uniform; `s ≈ 1` is the classic web/key-popularity skew).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent {s} invalid");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

/// Integer ranges that can be sampled uniformly.
///
/// Implemented for `Range` and `RangeInclusive` over the integer types
/// the workspace uses. Sampling uses multiply-shift reduction on a full
/// 64-bit draw; the modulo bias is below 2⁻³² for every range in this
/// codebase, which is far below anything the workloads could observe.
pub trait RangeSample {
    /// The sampled value's type.
    type Output;
    /// Draws one sample using `next` as the 64-bit entropy source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

/// Uniform draw in `0..span` (span > 0) via 128-bit multiply-shift.
#[inline]
fn reduce(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_sample {
    ($($ty:ty),+) => {$(
        impl RangeSample for std::ops::Range<$ty> {
            type Output = $ty;
            #[inline]
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reduce(next(), span) as i128) as $ty
            }
        }
        impl RangeSample for std::ops::RangeInclusive<$ty> {
            type Output = $ty;
            #[inline]
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return next() as $ty;
                }
                (start as i128 + reduce(next(), span + 1) as i128) as $ty
            }
        }
    )+};
}

impl_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

thread_local! {
    static THREAD_STATE: Cell<u64> = {
        static NEXT_THREAD_SEED: AtomicU64 = AtomicU64::new(0x0D15_EA5E);
        // Distinct per thread, stable within one: good enough for
        // backoff jitter, which only needs decorrelation.
        Cell::new(NEXT_THREAD_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    };
}

/// Handle to this thread's ambient generator (used for backoff jitter
/// and skip-list level draws, where reproducibility across runs is not
/// required but per-thread decorrelation is).
#[derive(Debug, Clone, Copy)]
pub struct ThreadRng;

/// This thread's ambient generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

impl ThreadRng {
    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        THREAD_STATE.with(|s| {
            let mut state = s.get();
            let out = splitmix64(&mut state);
            s.set(state);
            out
        })
    }

    /// Uniform sample from an integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Output {
        range.sample(&mut || self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside 0..=1");
        let draw = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        draw < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(123);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(123);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u = r.gen_range(0..7usize);
            assert!(u < 7);
            let i = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
            let c = r.gen_range(0..=3u32);
            assert!(c <= 3);
            let one = r.gen_range(2..3u64);
            assert_eq!(one, 2);
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.gen_range(1..=6usize) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "all die faces within 1000 rolls");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 gave {heads}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        StdRng::seed_from_u64(0).gen_range(3..3usize);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 32-element shuffle staying sorted is ~2^-117");
    }

    #[test]
    fn thread_rng_advances() {
        let mut t = thread_rng();
        assert_ne!(t.next_u64(), t.next_u64());
        let x = t.gen_range(0..=8u32);
        assert!(x <= 8);
    }

    #[test]
    fn threads_decorrelate() {
        let here = thread_rng().next_u64();
        let there = std::thread::spawn(|| thread_rng().next_u64()).join().unwrap();
        assert_ne!(here, there);
    }

    #[test]
    fn zipf_stays_in_bounds_and_is_deterministic() {
        let zipf = Zipf::new(100, 1.0);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let ra = zipf.sample(&mut a);
            assert!(ra < 100);
            assert_eq!(ra, zipf.sample(&mut b), "same seed, same ranks");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let zipf = Zipf::new(1_000, 1.0);
        let mut rng = StdRng::seed_from_u64(17);
        let mut hot = 0usize;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if zipf.sample(&mut rng) < 10 {
                hot += 1;
            }
        }
        // Under s=1 the top 1% of ranks carries ~39% of the mass
        // (H(10)/H(1000)); uniform would give 1%.
        assert!(hot > DRAWS / 5, "top-10 ranks drew only {hot}/{DRAWS}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(23);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform draw skewed: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipf_empty_domain_rejected() {
        Zipf::new(0, 1.0);
    }
}
