//! Barrier insertion: the first stage of the pipeline.
//!
//! Rewrites every transactional block so that each raw data access is
//! preceded by the decomposed operations that make it sound:
//!
//! - `GetField` ← `OpenForRead` (skipped for immutable `val` fields when
//!   the option is on — such fields cannot change after construction,
//!   so there is nothing to validate);
//! - `SetField` ← `OpenForUpdate` + `LogForUndo`.
//!
//! The output of insertion alone corresponds to the *unoptimized* STM
//! configuration (O0): every access pays the full barrier.

use omt_ir::{Inst, IrFunction, IrProgram};

/// Options controlling insertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertOptions {
    /// Do not emit `OpenForRead` for reads of immutable (`val`) fields
    /// (the O4 immutability optimization).
    pub elide_immutable_reads: bool,
}

/// Statistics from one insertion run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertReport {
    /// `OpenForRead` barriers inserted.
    pub open_reads: usize,
    /// `OpenForRead` barriers skipped because the field is immutable.
    pub immutable_elided: usize,
    /// `OpenForUpdate` barriers inserted.
    pub open_updates: usize,
    /// `LogForUndo` barriers inserted.
    pub log_undos: usize,
}

/// Inserts barriers into every transactional block of `program`.
///
/// Idempotent only in the sense that it should be run once, on barrier-
/// free IR straight out of lowering; running it twice duplicates
/// barriers (the duplicates are semantically harmless but distort
/// counts).
pub fn insert_barriers(program: &mut IrProgram, options: InsertOptions) -> InsertReport {
    let mut report = InsertReport::default();
    let classes = program.classes.clone();
    for function in &mut program.functions {
        insert_in_function(function, &classes, options, &mut report);
    }
    report
}

fn insert_in_function(
    function: &mut IrFunction,
    classes: &[omt_ir::IrClass],
    options: InsertOptions,
    report: &mut InsertReport,
) {
    for block in &mut function.blocks {
        if !block.in_tx {
            continue;
        }
        let mut out = Vec::with_capacity(block.insts.len() * 2);
        for inst in block.insts.drain(..) {
            match &inst {
                Inst::GetField { obj, class, field, .. } => {
                    let immutable = classes[class.0 as usize].fields[*field as usize].immutable;
                    if immutable && options.elide_immutable_reads {
                        report.immutable_elided += 1;
                    } else {
                        out.push(Inst::OpenForRead { obj: *obj });
                        report.open_reads += 1;
                    }
                }
                Inst::SetField { obj, class, field, .. } => {
                    out.push(Inst::OpenForUpdate { obj: *obj });
                    out.push(Inst::LogForUndo { obj: *obj, class: *class, field: *field });
                    report.open_updates += 1;
                    report.log_undos += 1;
                }
                _ => {}
            }
            out.push(inst);
        }
        block.insts = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_ir::{lower, verify};
    use omt_lang::{check, parse};

    fn lowered(src: &str) -> IrProgram {
        let program = parse(src).expect("parse");
        let info = check(&program).expect("check");
        lower(&program, &info)
    }

    const SRC: &str = "
        class C { val k: int; var x: int; }
        fn f(c: C) { atomic { c.x = c.x + c.k; } }
    ";

    #[test]
    fn every_access_gets_barriers() {
        let mut ir = lowered(SRC);
        let report = insert_barriers(&mut ir, InsertOptions::default());
        verify(&ir).unwrap();
        // In f: 2 reads (x, k), 1 write — times 2 (normal + clone).
        assert_eq!(report.open_reads, 4);
        assert_eq!(report.open_updates, 2);
        assert_eq!(report.log_undos, 2);
        assert_eq!(report.immutable_elided, 0);
    }

    #[test]
    fn immutable_reads_can_be_elided() {
        let mut ir = lowered(SRC);
        let report = insert_barriers(&mut ir, InsertOptions { elide_immutable_reads: true });
        verify(&ir).unwrap();
        assert_eq!(report.open_reads, 2, "only the `var x` read keeps its barrier");
        assert_eq!(report.immutable_elided, 2);
    }

    #[test]
    fn non_tx_code_is_untouched() {
        let mut ir = lowered("class C { var x: int; } fn f(c: C) -> int { return c.x; }");
        let report = insert_barriers(&mut ir, InsertOptions::default());
        // The normal version has no atomic block — but its tx clone is
        // fully transactional.
        assert_eq!(report.open_reads, 1);
        let f = ir.function(ir.function_id("f").unwrap());
        assert_eq!(f.barrier_counts(), (0, 0, 0));
        let clone = ir.function(ir.function_id("f$tx").unwrap());
        assert_eq!(clone.barrier_counts(), (1, 0, 0));
    }

    #[test]
    fn barriers_precede_their_accesses() {
        let mut ir = lowered(SRC);
        insert_barriers(&mut ir, InsertOptions::default());
        let f = ir.function(ir.function_id("f$tx").unwrap());
        for block in &f.blocks {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Inst::GetField { obj, .. } = inst {
                    assert_eq!(
                        block.insts[i - 1],
                        Inst::OpenForRead { obj: *obj },
                        "read barrier immediately before the load"
                    );
                }
                if let Inst::SetField { obj, class, field, .. } = inst {
                    assert_eq!(
                        block.insts[i - 1],
                        Inst::LogForUndo { obj: *obj, class: *class, field: *field }
                    );
                    assert_eq!(block.insts[i - 2], Inst::OpenForUpdate { obj: *obj });
                }
            }
        }
    }
}
