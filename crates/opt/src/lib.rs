//! # omt-opt — the PLDI 2006 barrier-optimization pipeline
//!
//! With STM barriers decomposed into ordinary IR operations (`omt-ir`),
//! classical compiler optimizations apply to them. This crate implements
//! the paper's pass suite:
//!
//! - [`insert_barriers`]: place `OpenForRead` / `OpenForUpdate` /
//!   `LogForUndo` before every transactional data access (optionally
//!   skipping immutable `val` fields);
//! - [`eliminate_redundant_barriers`]: local and global CSE over "open
//!   availability" facts — an object opened once in a transaction stays
//!   open;
//! - [`subsume_reads`]: promote `OpenForRead` to `OpenForUpdate` when
//!   an update is certain to follow, collapsing two barriers into one;
//! - [`hoist_opens`]: move loop-invariant opens to loop preheaders
//!   (opens are idempotent and null-tolerant, so hoisting is safe even
//!   speculatively);
//! - transaction-local allocation elision: objects created inside the
//!   transaction need no barriers at all (part of the CSE fact system).
//!
//! [`optimize`] runs them as the cumulative levels O0–O4 that the
//! evaluation sweeps; [`compile`] is the one-call front door.
//!
//! # Examples
//!
//! ```
//! use omt_opt::{compile, OptLevel};
//!
//! let src = "
//!     class C { var x: int; }
//!     fn f(c: C, n: int) {
//!         atomic { let i = 0; while i < n { c.x = c.x + 1; i = i + 1; } }
//!     }
//! ";
//! let (_, o0) = compile(src, OptLevel::O0)?;
//! let (_, o3) = compile(src, OptLevel::O3)?;
//! let total = |b: (usize, usize, usize)| b.0 + b.1 + b.2;
//! // The optimizer leaves strictly fewer barriers in the loop.
//! assert!(total(o3.static_barriers) <= total(o0.static_barriers));
//! # Ok::<(), omt_lang::Diagnostics>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cse;
mod facts;
mod hoist;
mod insert;
mod pipeline;
mod subsume;

pub use cse::{eliminate_redundant_barriers, CseScope};
pub use facts::TransferOptions;
pub use hoist::hoist_opens;
pub use insert::{insert_barriers, InsertOptions, InsertReport};
pub use pipeline::{compile, optimize, OptLevel, PipelineReport};
pub use subsume::subsume_reads;
