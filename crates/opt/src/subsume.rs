//! Read-to-update subsumption.
//!
//! If an object opened for read is certain to be opened for update
//! later in the same transaction, opening it for update *immediately*
//! is strictly cheaper: the later `OpenForUpdate` becomes redundant
//! (removed by the CSE pass that follows), and one ownership
//! acquisition replaces a read-log entry plus an acquisition.
//!
//! "Certain" is a backward must-analysis: a register is
//! *update-anticipated* at a point if every path to function exit
//! executes `OpenForUpdate` on it before redefining it (or crossing a
//! transaction boundary).

use std::collections::HashSet;

use omt_ir::{Cfg, Inst, IrFunction, Reg};

/// Promotes `OpenForRead` to `OpenForUpdate` where the update is
/// certain to follow. Returns the number promoted.
///
/// Run the CSE pass afterwards to delete the now-redundant later
/// `OpenForUpdate`s.
pub fn subsume_reads(function: &mut IrFunction) -> usize {
    let cfg = Cfg::new(function);
    let n = function.blocks.len();

    // Backward must-dataflow. `None` = unvisited (⊤).
    let mut exit_facts: Vec<Option<HashSet<Reg>>> = vec![None; n];
    let mut changed = true;
    while changed {
        changed = false;
        for &block_id in cfg.rpo.iter().rev() {
            let index = block_id.index();
            let block = &function.blocks[index];
            // Meet over successors' entry facts = transfer of their exit
            // facts through their own instructions; we store exit facts
            // and recompute entries on demand.
            let mut facts: HashSet<Reg> = match block.term.successors().as_slice() {
                [] => HashSet::new(),
                succs => {
                    let mut acc: Option<HashSet<Reg>> = None;
                    for s in succs {
                        let entry = entry_facts(function, &exit_facts, s.index());
                        acc = Some(match (acc, entry) {
                            (None, e) => e,
                            (Some(a), e) => a.intersection(&e).copied().collect(),
                        });
                    }
                    acc.unwrap_or_default()
                }
            };
            // `facts` is this block's exit set; nothing more to do with
            // the instructions here (entry sets are derived lazily).
            let slot = &mut exit_facts[index];
            if slot.as_ref() != Some(&facts) {
                *slot = Some(std::mem::take(&mut facts));
                changed = true;
            }
        }
    }

    // Rewrite: walk each block backward from its exit set, recording
    // anticipation at each instruction boundary, then promote.
    let mut promoted = 0;
    #[allow(clippy::needless_range_loop)] // exit_facts and blocks indexed in lockstep
    for index in 0..n {
        if !cfg.is_reachable(omt_ir::BlockId(index as u32)) {
            continue;
        }
        let exit = exit_facts[index].clone().unwrap_or_default();
        let block = &mut function.blocks[index];
        // anticipated[i] = facts holding *after* instruction i-1, i.e.
        // just before instruction i executes, considering insts i..end.
        let m = block.insts.len();
        let mut anticipated = vec![HashSet::new(); m + 1];
        anticipated[m] = exit;
        for i in (0..m).rev() {
            let mut facts = anticipated[i + 1].clone();
            backward_transfer(&block.insts[i], &mut facts);
            anticipated[i] = facts;
        }
        for (i, inst) in block.insts.iter_mut().enumerate() {
            if let Inst::OpenForRead { obj } = inst {
                // Anticipation *after* this instruction: the update
                // must still be ahead of us.
                if anticipated[i + 1].contains(obj) {
                    *inst = Inst::OpenForUpdate { obj: *obj };
                    promoted += 1;
                }
            }
        }
    }
    promoted
}

/// Entry facts of a block = its exit facts pushed backward through its
/// instructions.
fn entry_facts(
    function: &IrFunction,
    exit_facts: &[Option<HashSet<Reg>>],
    index: usize,
) -> HashSet<Reg> {
    let mut facts = exit_facts[index].clone().unwrap_or_default();
    for inst in function.blocks[index].insts.iter().rev() {
        backward_transfer(inst, &mut facts);
    }
    facts
}

fn backward_transfer(inst: &Inst, facts: &mut HashSet<Reg>) {
    match inst {
        Inst::OpenForUpdate { obj } => {
            facts.insert(*obj);
        }
        Inst::TxBegin | Inst::TxCommit => facts.clear(),
        other => {
            if let Some(dst) = other.def() {
                facts.remove(&dst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cse::{eliminate_redundant_barriers, CseScope};
    use crate::insert::{insert_barriers, InsertOptions};
    use omt_ir::{lower, verify, IrProgram};
    use omt_lang::{check, parse};

    fn prepared(src: &str) -> IrProgram {
        let program = parse(src).expect("parse");
        let info = check(&program).expect("check");
        let mut ir = lower(&program, &info);
        insert_barriers(&mut ir, InsertOptions::default());
        ir
    }

    fn subsume_then_cse(ir: &mut IrProgram, name: &str) -> usize {
        let id = ir.function_id(name).unwrap();
        let classes = ir.classes.clone();
        let promoted = subsume_reads(&mut ir.functions[id.0 as usize]);
        eliminate_redundant_barriers(
            &mut ir.functions[id.0 as usize],
            &classes,
            CseScope::Global,
            Default::default(),
        );
        verify(ir).unwrap();
        promoted
    }

    #[test]
    fn read_then_write_collapses_to_one_update_open() {
        let mut ir = prepared(
            "class C { var x: int; }
             fn f(c: C) { atomic { c.x = c.x + 1; } }",
        );
        let promoted = subsume_then_cse(&mut ir, "f");
        assert_eq!(promoted, 1);
        let f = ir.function(ir.function_id("f").unwrap());
        assert_eq!(f.barrier_counts(), (0, 1, 1), "one update open, no read open");
    }

    #[test]
    fn update_on_one_path_only_is_not_promoted() {
        let mut ir = prepared(
            "class C { var x: int; }
             fn f(c: C, b: bool) -> int {
                 let r = 0;
                 atomic {
                     r = c.x;
                     if b { c.x = 1; }
                 }
                 return r;
             }",
        );
        let promoted = subsume_then_cse(&mut ir, "f");
        assert_eq!(promoted, 0, "update is conditional; the read must stay a read");
        let f = ir.function(ir.function_id("f").unwrap());
        let (reads, updates, _) = f.barrier_counts();
        assert_eq!(reads, 1);
        assert_eq!(updates, 1);
    }

    #[test]
    fn update_on_both_paths_is_promoted() {
        let mut ir = prepared(
            "class C { var x: int; }
             fn f(c: C, b: bool) -> int {
                 let r = 0;
                 atomic {
                     r = c.x;
                     if b { c.x = 1; } else { c.x = 2; }
                 }
                 return r;
             }",
        );
        let promoted = subsume_then_cse(&mut ir, "f");
        assert_eq!(promoted, 1);
        let f = ir.function(ir.function_id("f").unwrap());
        let (reads, updates, _) = f.barrier_counts();
        assert_eq!(reads, 0);
        assert_eq!(updates, 1, "one promoted open serves both branches");
    }

    #[test]
    fn redefinition_blocks_anticipation() {
        let mut ir = prepared(
            "class C { var x: int; }
             fn f(a: C, b: C) -> int {
                 let r = 0;
                 atomic {
                     let c = a;
                     r = c.x;     // read c (= a)
                     c = b;
                     c.x = 1;     // update c (= b) — different object!
                 }
                 return r;
             }",
        );
        let promoted = subsume_then_cse(&mut ir, "f");
        assert_eq!(promoted, 0, "the later update is to a redefined register");
    }
}
