//! The optimization pipeline: the paper's cumulative configurations.
//!
//! | level | adds                                                        |
//! |-------|-------------------------------------------------------------|
//! | O0    | barrier insertion only (every access pays a full barrier)    |
//! | O1    | per-block redundant-barrier elimination                      |
//! | O2    | global CSE + read-to-update subsumption                      |
//! | O3    | loop-invariant open hoisting                                 |
//! | O4    | tx-local allocation elision + immutable-field elision        |
//!
//! Runtime log filtering is orthogonal (an `omt-stm` configuration
//! knob), exactly as in the paper.

use std::fmt;
use std::str::FromStr;

use omt_ir::IrProgram;
use omt_lang::Diagnostics;

use crate::cse::{eliminate_redundant_barriers, CseScope};
use crate::facts::TransferOptions;
use crate::hoist::hoist_opens;
use crate::insert::{insert_barriers, InsertOptions, InsertReport};
use crate::subsume::subsume_reads;

/// Cumulative optimization levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// Barrier insertion only.
    O0,
    /// + local CSE.
    O1,
    /// + global CSE and subsumption.
    O2,
    /// + loop hoisting.
    O3,
    /// + tx-local and immutability elision.
    O4,
}

impl OptLevel {
    /// All levels, lowest to highest.
    pub const ALL: [OptLevel; 5] =
        [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::O4];
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::O4 => "O4",
        };
        write!(f, "{s}")
    }
}

impl FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<OptLevel, String> {
        match s.to_ascii_uppercase().as_str() {
            "O0" | "0" => Ok(OptLevel::O0),
            "O1" | "1" => Ok(OptLevel::O1),
            "O2" | "2" => Ok(OptLevel::O2),
            "O3" | "3" => Ok(OptLevel::O3),
            "O4" | "4" => Ok(OptLevel::O4),
            other => Err(format!("unknown optimization level `{other}` (use O0..O4)")),
        }
    }
}

/// What the pipeline did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Barrier insertion counts.
    pub inserted: InsertReport,
    /// `OpenForRead`s promoted to `OpenForUpdate`.
    pub promoted: usize,
    /// Barriers moved out of loops.
    pub hoisted: usize,
    /// Redundant barriers deleted by CSE.
    pub removed: usize,
    /// Final static counts `(open_read, open_update, log_undo)`.
    pub static_barriers: (usize, usize, usize),
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (r, u, n) = self.static_barriers;
        write!(
            f,
            "inserted {}+{}+{} barriers ({} immutable reads elided), promoted {}, \
             hoisted {}, removed {}; static: {r} open-read, {u} open-update, {n} log-undo",
            self.inserted.open_reads,
            self.inserted.open_updates,
            self.inserted.log_undos,
            self.inserted.immutable_elided,
            self.promoted,
            self.hoisted,
            self.removed,
        )
    }
}

/// Runs the pipeline at `level` over barrier-free IR (fresh from
/// [`omt_ir::lower`]).
pub fn optimize(program: &mut IrProgram, level: OptLevel) -> PipelineReport {
    let mut report = PipelineReport {
        inserted: insert_barriers(
            program,
            InsertOptions { elide_immutable_reads: level >= OptLevel::O4 },
        ),
        ..PipelineReport::default()
    };

    let classes = program.classes.clone();
    for function in &mut program.functions {
        if level >= OptLevel::O2 {
            report.promoted += subsume_reads(function);
        }
        if level >= OptLevel::O3 {
            report.hoisted += hoist_opens(function);
        }
        if level >= OptLevel::O1 {
            let scope = if level >= OptLevel::O2 { CseScope::Global } else { CseScope::Local };
            let options = TransferOptions { tx_local_new: level >= OptLevel::O4 };
            report.removed += eliminate_redundant_barriers(function, &classes, scope, options);
        }
    }
    report.static_barriers = program.barrier_counts();
    report
}

/// Convenience: parse, check, lower, and optimize a TxIL source file.
///
/// # Errors
///
/// Returns the front-end diagnostics on parse or type errors.
///
/// # Examples
///
/// ```
/// use omt_opt::{compile, OptLevel};
///
/// let (ir, report) = compile("
///     class C { var x: int; }
///     fn bump(c: C) { atomic { c.x = c.x + 1; } }
/// ", OptLevel::O2)?;
/// assert!(report.promoted >= 1);
/// assert!(ir.function_id("bump").is_some());
/// # Ok::<(), omt_lang::Diagnostics>(())
/// ```
pub fn compile(source: &str, level: OptLevel) -> Result<(IrProgram, PipelineReport), Diagnostics> {
    let program = omt_lang::parse(source)?;
    let info = omt_lang::check(&program)?;
    let mut ir = omt_ir::lower(&program, &info);
    let report = optimize(&mut ir, level);
    debug_assert!(omt_ir::verify(&ir).is_ok(), "pipeline produced invalid IR");
    Ok((ir, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_ir::verify;

    const LIST_SUM: &str = "
        class Node { val key: int; var next: Node; }
        class Counter { var hits: int; }
        fn sum(h: Node, c: Counter, n: int) -> int {
            let t = 0;
            atomic {
                let i = 0;
                while i < n {
                    let p = h;
                    while p != null {
                        t = t + p.key;
                        p = p.next;
                    }
                    c.hits = c.hits + 1;
                    i = i + 1;
                }
            }
            return t;
        }
    ";

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("o3".parse::<OptLevel>().unwrap(), OptLevel::O3);
        assert!("O9".parse::<OptLevel>().is_err());
        assert!(OptLevel::O0 < OptLevel::O4);
        assert_eq!(OptLevel::ALL.len(), 5);
    }

    #[test]
    fn static_counts_monotonically_improve() {
        let mut previous = usize::MAX;
        for level in OptLevel::ALL {
            let (ir, report) = compile(LIST_SUM, level).unwrap();
            verify(&ir).unwrap();
            let (r, u, n) = report.static_barriers;
            let total = r + u + n;
            assert!(total <= previous, "{level}: {total} barriers, worse than previous {previous}");
            previous = total;
        }
    }

    #[test]
    fn o0_keeps_every_barrier() {
        let (_, report) = compile(LIST_SUM, OptLevel::O0).unwrap();
        let inserted =
            report.inserted.open_reads + report.inserted.open_updates + report.inserted.log_undos;
        let (r, u, n) = report.static_barriers;
        assert_eq!(inserted, r + u + n);
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn o3_hoists_the_counter_barriers() {
        let (_, report) = compile(LIST_SUM, OptLevel::O3).unwrap();
        assert!(report.hoisted > 0, "counter barriers are invariant in the outer loop");
    }

    #[test]
    fn o4_elides_immutable_key_reads() {
        // An object whose *only* accessed fields are `val`: at O4 the
        // open disappears entirely (at O3 one open remains after CSE).
        let src = "
            class P { val x: int; val y: int; }
            fn f(p: P) -> int {
                let r = 0;
                atomic { r = p.x + p.y; }
                return r;
            }
        ";
        let (_, o3) = compile(src, OptLevel::O3).unwrap();
        let (_, o4) = compile(src, OptLevel::O4).unwrap();
        assert_eq!(o3.static_barriers.0, 2, "one open per version (normal + clone)");
        assert_eq!(o4.inserted.immutable_elided, 4);
        assert_eq!(o4.static_barriers, (0, 0, 0), "no barriers remain at O4");
    }

    #[test]
    fn front_end_errors_propagate() {
        assert!(compile("fn f( {", OptLevel::O2).is_err());
        assert!(compile("fn f() { x = 1; }", OptLevel::O2).is_err());
    }
}
