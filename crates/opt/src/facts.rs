//! "Open availability" facts: the dataflow currency of the CSE pass.
//!
//! A fact records that, at a program point, an object register is
//! already open (for read or update) or a `(register, field)` pair is
//! already undo-logged — in the *current transaction*. Facts are
//! created by barrier instructions, copied through register moves,
//! killed by register redefinition, and cleared at transaction
//! boundaries. Once an object is open in a transaction it stays open
//! until commit, so calls do not kill facts.

use std::collections::HashSet;

use omt_ir::{Inst, IrClass, Reg};

/// One availability fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Fact {
    /// Register's object is open for read (or better).
    Read(Reg),
    /// Register's object is open for update.
    Update(Reg),
    /// `(register, field)` already has an undo-log entry.
    Undo(Reg, u32),
}

impl Fact {
    fn mentions(self, reg: Reg) -> bool {
        match self {
            Fact::Read(r) | Fact::Update(r) | Fact::Undo(r, _) => r == reg,
        }
    }
}

/// A lattice value: either ⊤ (unvisited; identity of meet) or a set.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FactSet {
    /// Unvisited block: everything available (meet identity).
    Top,
    /// Concrete available facts.
    Set(HashSet<Fact>),
}

impl FactSet {
    pub(crate) fn empty() -> FactSet {
        FactSet::Set(HashSet::new())
    }

    pub(crate) fn top() -> FactSet {
        FactSet::Top
    }

    pub(crate) fn contains(&self, fact: Fact) -> bool {
        match self {
            FactSet::Top => true,
            FactSet::Set(s) => s.contains(&fact),
        }
    }

    fn insert(&mut self, fact: Fact) {
        if let FactSet::Set(s) = self {
            s.insert(fact);
        }
    }

    fn kill_reg(&mut self, reg: Reg) {
        if let FactSet::Set(s) = self {
            s.retain(|f| !f.mentions(reg));
        }
    }

    fn clear(&mut self) {
        *self = FactSet::empty();
    }

    fn copy_facts(&mut self, from: Reg, to: Reg) {
        if let FactSet::Set(s) = self {
            let copied: Vec<Fact> = s
                .iter()
                .filter_map(|f| match f {
                    Fact::Read(r) if *r == from => Some(Fact::Read(to)),
                    Fact::Update(r) if *r == from => Some(Fact::Update(to)),
                    Fact::Undo(r, field) if *r == from => Some(Fact::Undo(to, *field)),
                    _ => None,
                })
                .collect();
            s.extend(copied);
        }
    }

    /// Meet (intersection); ⊤ is the identity.
    pub(crate) fn meet(&self, other: &FactSet) -> FactSet {
        match (self, other) {
            (FactSet::Top, x) | (x, FactSet::Top) => x.clone(),
            (FactSet::Set(a), FactSet::Set(b)) => {
                FactSet::Set(a.intersection(b).copied().collect())
            }
        }
    }
}

/// Options controlling the transfer function of the availability
/// analysis (shared by the CSE pass).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferOptions {
    /// `New` makes its destination fully open (the O4 transaction-local
    /// optimization: objects allocated in the transaction can never
    /// conflict, so all their barriers are redundant).
    pub tx_local_new: bool,
}

/// Applies `inst`'s transfer function to `facts`.
///
/// Returns `true` if `inst` is a *redundant barrier* under the incoming
/// facts — the caller may delete it. Facts are updated as if the
/// instruction executed (even a redundant barrier contributes its fact,
/// trivially, since it was already present).
pub(crate) fn transfer(
    facts: &mut FactSet,
    inst: &Inst,
    classes: &[IrClass],
    options: TransferOptions,
) -> bool {
    match inst {
        Inst::OpenForRead { obj } => {
            if facts.contains(Fact::Read(*obj)) || facts.contains(Fact::Update(*obj)) {
                return true;
            }
            facts.insert(Fact::Read(*obj));
            false
        }
        Inst::OpenForUpdate { obj } => {
            if facts.contains(Fact::Update(*obj)) {
                return true;
            }
            facts.insert(Fact::Update(*obj));
            facts.insert(Fact::Read(*obj)); // update subsumes read
            false
        }
        Inst::LogForUndo { obj, field, .. } => {
            if facts.contains(Fact::Undo(*obj, *field)) {
                return true;
            }
            facts.insert(Fact::Undo(*obj, *field));
            false
        }
        Inst::Copy { dst, src } => {
            if dst != src {
                facts.kill_reg(*dst);
                facts.copy_facts(*src, *dst);
            }
            false
        }
        Inst::New { dst, class, .. } => {
            facts.kill_reg(*dst);
            if options.tx_local_new {
                facts.insert(Fact::Read(*dst));
                facts.insert(Fact::Update(*dst));
                let field_count = classes[class.0 as usize].fields.len() as u32;
                for field in 0..field_count {
                    facts.insert(Fact::Undo(*dst, field));
                }
            }
            false
        }
        Inst::TxBegin | Inst::TxCommit => {
            facts.clear();
            false
        }
        other => {
            if let Some(dst) = other.def() {
                facts.kill_reg(dst);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_ir::IrClassId;

    fn classes() -> Vec<IrClass> {
        vec![IrClass {
            name: "C".into(),
            fields: vec![
                omt_ir::IrField { name: "a".into(), immutable: false, is_ref: false },
                omt_ir::IrField { name: "b".into(), immutable: false, is_ref: false },
            ],
        }]
    }

    #[test]
    fn duplicate_open_is_redundant() {
        let classes = classes();
        let mut facts = FactSet::empty();
        let open = Inst::OpenForRead { obj: Reg(1) };
        assert!(!transfer(&mut facts, &open, &classes, TransferOptions::default()));
        assert!(transfer(&mut facts, &open, &classes, TransferOptions::default()));
    }

    #[test]
    fn update_subsumes_read() {
        let classes = classes();
        let mut facts = FactSet::empty();
        let upd = Inst::OpenForUpdate { obj: Reg(1) };
        let read = Inst::OpenForRead { obj: Reg(1) };
        assert!(!transfer(&mut facts, &upd, &classes, TransferOptions::default()));
        assert!(transfer(&mut facts, &read, &classes, TransferOptions::default()));
    }

    #[test]
    fn read_does_not_subsume_update() {
        let classes = classes();
        let mut facts = FactSet::empty();
        transfer(&mut facts, &Inst::OpenForRead { obj: Reg(1) }, &classes, Default::default());
        assert!(!transfer(
            &mut facts,
            &Inst::OpenForUpdate { obj: Reg(1) },
            &classes,
            Default::default()
        ));
    }

    #[test]
    fn redefinition_kills_facts() {
        let classes = classes();
        let mut facts = FactSet::empty();
        transfer(&mut facts, &Inst::OpenForRead { obj: Reg(1) }, &classes, Default::default());
        transfer(&mut facts, &Inst::Const { dst: Reg(1), value: 0 }, &classes, Default::default());
        assert!(!transfer(
            &mut facts,
            &Inst::OpenForRead { obj: Reg(1) },
            &classes,
            Default::default()
        ));
    }

    #[test]
    fn copies_carry_facts() {
        let classes = classes();
        let mut facts = FactSet::empty();
        transfer(&mut facts, &Inst::OpenForUpdate { obj: Reg(1) }, &classes, Default::default());
        transfer(
            &mut facts,
            &Inst::Copy { dst: Reg(2), src: Reg(1) },
            &classes,
            Default::default(),
        );
        assert!(transfer(
            &mut facts,
            &Inst::OpenForUpdate { obj: Reg(2) },
            &classes,
            Default::default()
        ));
    }

    #[test]
    fn tx_boundaries_clear_facts() {
        let classes = classes();
        let mut facts = FactSet::empty();
        transfer(&mut facts, &Inst::OpenForRead { obj: Reg(1) }, &classes, Default::default());
        transfer(&mut facts, &Inst::TxCommit, &classes, Default::default());
        assert!(!transfer(
            &mut facts,
            &Inst::OpenForRead { obj: Reg(1) },
            &classes,
            Default::default()
        ));
    }

    #[test]
    fn tx_local_new_opens_everything() {
        let classes = classes();
        let mut facts = FactSet::empty();
        let new = Inst::New { dst: Reg(3), class: IrClassId(0), args: vec![] };
        transfer(&mut facts, &new, &classes, TransferOptions { tx_local_new: true });
        assert!(transfer(
            &mut facts,
            &Inst::OpenForRead { obj: Reg(3) },
            &classes,
            Default::default()
        ));
        assert!(transfer(
            &mut facts,
            &Inst::OpenForUpdate { obj: Reg(3) },
            &classes,
            Default::default()
        ));
        assert!(transfer(
            &mut facts,
            &Inst::LogForUndo { obj: Reg(3), class: IrClassId(0), field: 1 },
            &classes,
            Default::default()
        ));
    }

    #[test]
    fn without_tx_local_new_is_just_a_def() {
        let classes = classes();
        let mut facts = FactSet::empty();
        let new = Inst::New { dst: Reg(3), class: IrClassId(0), args: vec![] };
        transfer(&mut facts, &new, &classes, TransferOptions::default());
        assert!(!transfer(
            &mut facts,
            &Inst::OpenForRead { obj: Reg(3) },
            &classes,
            Default::default()
        ));
    }

    #[test]
    fn meet_intersects_and_top_is_identity() {
        let mut a = FactSet::empty();
        a.insert(Fact::Read(Reg(1)));
        a.insert(Fact::Read(Reg(2)));
        let mut b = FactSet::empty();
        b.insert(Fact::Read(Reg(2)));
        let m = a.meet(&b);
        assert!(!m.contains(Fact::Read(Reg(1))));
        assert!(m.contains(Fact::Read(Reg(2))));
        assert_eq!(FactSet::top().meet(&a), a);
    }
}
