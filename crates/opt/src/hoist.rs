//! Hoisting loop-invariant open operations out of loops.
//!
//! Opening an object (and undo-logging a field) is idempotent within a
//! transaction and tolerant of null references, so a barrier whose
//! object register is loop-invariant can run *once* before the loop
//! instead of on every iteration. This is where the big dynamic counts
//! fall: CSE cannot remove an in-loop barrier (nothing is available on
//! the loop-entry path), but hoisting can move it.
//!
//! Safety: hoisting is speculative (the barrier may now execute even if
//! the loop body never runs). That is sound — an extra open can cause a
//! false conflict but never wrong results — and is the paper's stated
//! trade-off. A loop is only processed if *all* of its blocks are
//! transactional, so a barrier can never move outside its transaction.

use std::collections::HashSet;

use omt_ir::{insert_preheader, natural_loops, Cfg, Dominators, Inst, IrFunction, Reg};

/// Hoists loop-invariant barriers to loop preheaders. Returns the
/// number of barrier instructions moved.
pub fn hoist_opens(function: &mut IrFunction) -> usize {
    let mut hoisted = 0;
    // Each round hoists from one loop then recomputes the CFG (preheader
    // insertion invalidates it). Barriers strictly leave loops, so this
    // terminates; the bound is a safety net.
    for _ in 0..1000 {
        let cfg = Cfg::new(function);
        let doms = Dominators::new(&cfg);
        let loops = natural_loops(&cfg, &doms);

        let mut moved_this_round = false;
        for lp in &loops {
            // Only fully-transactional loops: a barrier must not cross a
            // TxBegin/TxCommit boundary.
            if !lp.body.iter().all(|b| function.block(*b).in_tx) {
                continue;
            }
            // Registers defined anywhere inside the loop are not
            // invariant.
            let mut defined: HashSet<Reg> = HashSet::new();
            for &b in &lp.body {
                for inst in &function.block(b).insts {
                    if let Some(d) = inst.def() {
                        defined.insert(d);
                    }
                }
            }
            let is_candidate = |inst: &Inst| -> bool {
                match inst {
                    Inst::OpenForRead { obj }
                    | Inst::OpenForUpdate { obj }
                    | Inst::LogForUndo { obj, .. } => !defined.contains(obj),
                    _ => false,
                }
            };
            let any: bool =
                lp.body.iter().any(|&b| function.block(b).insts.iter().any(&is_candidate));
            if !any {
                continue;
            }

            // Collect candidates (preserving discovery order), remove
            // them from the loop, and place them in a fresh preheader —
            // updates first, then reads, then undo logs, deduplicated —
            // so ownership is always acquired before logging.
            let mut moved: Vec<Inst> = Vec::new();
            let mut body_blocks: Vec<_> = lp.body.iter().copied().collect();
            body_blocks.sort();
            for b in body_blocks {
                let block = function.block_mut(b);
                let mut kept = Vec::with_capacity(block.insts.len());
                for inst in block.insts.drain(..) {
                    if is_candidate(&inst) {
                        if !moved.contains(&inst) {
                            moved.push(inst);
                        }
                        hoisted += 1;
                    } else {
                        kept.push(inst);
                    }
                }
                block.insts = kept;
            }
            moved.sort_by_key(|inst| match inst {
                Inst::OpenForUpdate { .. } => 0,
                Inst::OpenForRead { .. } => 1,
                Inst::LogForUndo { .. } => 2,
                _ => unreachable!("only barriers are moved"),
            });
            let pre = insert_preheader(function, lp);
            function.block_mut(pre).insts = moved;
            moved_this_round = true;
            break; // CFG changed; recompute before the next loop
        }
        if !moved_this_round {
            break;
        }
    }
    hoisted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cse::{eliminate_redundant_barriers, CseScope};
    use crate::insert::{insert_barriers, InsertOptions};
    use omt_ir::{lower, verify, IrProgram};
    use omt_lang::{check, parse};

    fn prepared(src: &str) -> IrProgram {
        let program = parse(src).expect("parse");
        let info = check(&program).expect("check");
        let mut ir = lower(&program, &info);
        insert_barriers(&mut ir, InsertOptions::default());
        ir
    }

    fn hoist_fn(ir: &mut IrProgram, name: &str) -> usize {
        let id = ir.function_id(name).unwrap();
        let n = hoist_opens(&mut ir.functions[id.0 as usize]);
        verify(ir).unwrap();
        n
    }

    /// True if any loop block of `name` still contains a barrier.
    fn loop_has_barriers(ir: &IrProgram, name: &str) -> bool {
        let f = ir.function(ir.function_id(name).unwrap());
        let cfg = Cfg::new(f);
        let doms = Dominators::new(&cfg);
        let loops = natural_loops(&cfg, &doms);
        loops
            .iter()
            .any(|lp| lp.body.iter().any(|&b| f.block(b).insts.iter().any(Inst::is_barrier)))
    }

    #[test]
    fn invariant_open_moves_to_preheader() {
        let mut ir = prepared(
            "class C { var x: int; }
             fn f(c: C, n: int) {
                 atomic {
                     let i = 0;
                     while i < n { c.x = c.x + 1; i = i + 1; }
                 }
             }",
        );
        let moved = hoist_fn(&mut ir, "f");
        assert!(moved >= 3, "open-update, open-read, log-undo all hoisted, got {moved}");
        assert!(!loop_has_barriers(&ir, "f"));
        // Barrier instructions still exist, just outside the loop.
        let f = ir.function(ir.function_id("f").unwrap());
        let (r, u, n) = f.barrier_counts();
        assert!(u >= 1 && n >= 1 && r >= 1);
    }

    #[test]
    fn varying_register_is_not_hoisted() {
        // n.next changes every iteration: the open must stay inside.
        let mut ir = prepared(
            "class N { var v: int; var next: N; }
             fn sum(h: N) -> int {
                 let t = 0;
                 atomic {
                     let n = h;
                     while n != null { t = t + n.v; n = n.next; }
                 }
                 return t;
             }",
        );
        hoist_fn(&mut ir, "sum");
        assert!(loop_has_barriers(&ir, "sum"), "list-walk opens are not invariant");
    }

    #[test]
    fn loop_containing_tx_boundary_is_skipped() {
        // The atomic block is *inside* the loop: its blocks are not all
        // transactional, so nothing may be hoisted out.
        let mut ir = prepared(
            "class C { var x: int; }
             fn f(c: C, n: int) {
                 let i = 0;
                 while i < n {
                     atomic { c.x = c.x + 1; }
                     i = i + 1;
                 }
             }",
        );
        let moved = hoist_fn(&mut ir, "f");
        assert_eq!(moved, 0, "barriers must not escape their transaction");
    }

    #[test]
    fn hoist_then_cse_leaves_single_barriers() {
        let mut ir = prepared(
            "class C { var x: int; var y: int; }
             fn f(c: C, n: int) {
                 atomic {
                     let i = 0;
                     while i < n { c.x = c.x + c.y; i = i + 1; }
                 }
             }",
        );
        hoist_fn(&mut ir, "f");
        let id = ir.function_id("f").unwrap();
        let classes = ir.classes.clone();
        eliminate_redundant_barriers(
            &mut ir.functions[id.0 as usize],
            &classes,
            CseScope::Global,
            Default::default(),
        );
        verify(&ir).unwrap();
        let f = ir.function(id);
        let (r, u, n) = f.barrier_counts();
        // c opened once for update (covers the reads), x logged once.
        assert_eq!(u, 1, "counts: {:?}", (r, u, n));
        assert_eq!(r, 0, "read open of c subsumed by hoisted update open");
        assert_eq!(n, 1, "only the written field x needs an undo log");
    }

    #[test]
    fn nested_loops_hoist_to_outermost_invariant_point() {
        let mut ir = prepared(
            "class C { var x: int; }
             fn f(c: C, n: int) {
                 atomic {
                     let i = 0;
                     while i < n {
                         let j = 0;
                         while j < n { c.x = c.x + 1; j = j + 1; }
                         i = i + 1;
                     }
                 }
             }",
        );
        hoist_fn(&mut ir, "f");
        assert!(!loop_has_barriers(&ir, "f"), "barriers leave both loop levels");
    }
}
