//! Redundant-barrier elimination (the paper's CSE on open operations).
//!
//! Opening an object is idempotent within a transaction, so a second
//! `OpenForRead`/`OpenForUpdate` of the same register (and a second
//! `LogForUndo` of the same field) is dead code. The *local* variant
//! reasons within single blocks; the *global* variant runs a forward
//! must-dataflow over the CFG so availability flows across branches and
//! into join points.

use omt_ir::{Cfg, IrClass, IrFunction};

use crate::facts::{transfer, FactSet, TransferOptions};

/// Scope of the availability analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CseScope {
    /// Per-block only (optimization level O1).
    Local,
    /// Whole-CFG dataflow (levels O2+).
    Global,
}

/// Removes redundant barriers from `function`; returns how many were
/// deleted.
pub fn eliminate_redundant_barriers(
    function: &mut IrFunction,
    classes: &[IrClass],
    scope: CseScope,
    options: TransferOptions,
) -> usize {
    let entry_facts = match scope {
        CseScope::Local => None,
        CseScope::Global => Some(compute_entry_facts(function, classes, options)),
    };

    let cfg = Cfg::new(function);
    let mut removed = 0;
    for index in 0..function.blocks.len() {
        if !cfg.is_reachable(omt_ir::BlockId(index as u32)) {
            continue;
        }
        let mut facts = match &entry_facts {
            Some(per_block) => per_block[index].clone(),
            None => FactSet::empty(),
        };
        if facts == FactSet::Top {
            facts = FactSet::empty();
        }
        let block = &mut function.blocks[index];
        let before = block.insts.len();
        block.insts.retain(|inst| !transfer(&mut facts, inst, classes, options));
        removed += before - block.insts.len();
    }
    removed
}

/// Forward must-analysis: available facts at each block entry.
fn compute_entry_facts(
    function: &IrFunction,
    classes: &[IrClass],
    options: TransferOptions,
) -> Vec<FactSet> {
    let cfg = Cfg::new(function);
    let n = function.blocks.len();
    let mut entry: Vec<FactSet> = vec![FactSet::top(); n];
    entry[0] = FactSet::empty();

    let mut changed = true;
    while changed {
        changed = false;
        for &block_id in &cfg.rpo {
            let mut facts = entry[block_id.index()].clone();
            if facts == FactSet::Top {
                continue; // not yet reached via any processed predecessor
            }
            for inst in &function.block(block_id).insts {
                transfer(&mut facts, inst, classes, options);
            }
            for &succ in &cfg.succs[block_id.index()] {
                let met = entry[succ.index()].meet(&facts);
                if met != entry[succ.index()] {
                    entry[succ.index()] = met;
                    changed = true;
                }
            }
        }
    }
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert::{insert_barriers, InsertOptions};
    use omt_ir::{lower, verify, IrProgram};
    use omt_lang::{check, parse};

    fn prepared(src: &str) -> IrProgram {
        let program = parse(src).expect("parse");
        let info = check(&program).expect("check");
        let mut ir = lower(&program, &info);
        insert_barriers(&mut ir, InsertOptions::default());
        ir
    }

    fn run(ir: &mut IrProgram, name: &str, scope: CseScope, options: TransferOptions) -> usize {
        let id = ir.function_id(name).unwrap();
        let classes = ir.classes.clone();
        let removed = eliminate_redundant_barriers(
            &mut ir.functions[id.0 as usize],
            &classes,
            scope,
            options,
        );
        verify(ir).unwrap();
        removed
    }

    #[test]
    fn straight_line_duplicates_removed_locally() {
        // Three reads + one write of the same object in one block.
        let mut ir = prepared(
            "class C { var x: int; var y: int; }
             fn f(c: C) { atomic { c.x = c.x + c.y + c.x; } }",
        );
        let before = ir.function(ir.function_id("f").unwrap()).barrier_counts();
        assert_eq!(before, (3, 1, 1));
        let removed = run(&mut ir, "f", CseScope::Local, TransferOptions::default());
        let after = ir.function(ir.function_id("f").unwrap()).barrier_counts();
        // First read stays; 2 dup reads removed. Write barriers stay.
        assert_eq!(after, (1, 1, 1));
        assert_eq!(removed, 2);
    }

    #[test]
    fn availability_flows_across_branches_globally() {
        let mut ir = prepared(
            "class C { var x: int; }
             fn f(c: C, b: bool) {
                 atomic {
                     c.x = 1;
                     if b { c.x = 2; } else { c.x = 3; }
                     c.x = 4;
                 }
             }",
        );
        // Local CSE cannot see across the branch.
        let mut local = ir.clone();
        run(&mut local, "f", CseScope::Local, TransferOptions::default());
        let local_counts = local.function(local.function_id("f").unwrap()).barrier_counts();

        run(&mut ir, "f", CseScope::Global, TransferOptions::default());
        let global_counts = ir.function(ir.function_id("f").unwrap()).barrier_counts();
        // Globally, only the first open/log pair survives.
        assert_eq!(global_counts.1, 1, "one open_for_update remains: {global_counts:?}");
        assert_eq!(global_counts.2, 1, "one log_for_undo remains");
        assert!(local_counts.1 > global_counts.1);
    }

    #[test]
    fn partial_availability_is_not_enough() {
        // Opened only on the then-path: the join still needs a barrier.
        let mut ir = prepared(
            "class C { var x: int; }
             fn f(c: C, b: bool) -> int {
                 let r = 0;
                 atomic {
                     if b { c.x = 1; }
                     r = c.x;
                 }
                 return r;
             }",
        );
        run(&mut ir, "f", CseScope::Global, TransferOptions::default());
        let f = ir.function(ir.function_id("f").unwrap());
        let (reads, _, _) = f.barrier_counts();
        assert_eq!(reads, 1, "the read after the join keeps its barrier");
    }

    #[test]
    fn tx_local_allocation_elides_all_barriers() {
        let mut ir = prepared(
            "class C { var x: int; }
             fn f() -> int {
                 let r = 0;
                 atomic {
                     let c = new C();
                     c.x = 5;
                     r = c.x;
                 }
                 return r;
             }",
        );
        run(&mut ir, "f", CseScope::Global, TransferOptions { tx_local_new: true });
        let f = ir.function(ir.function_id("f").unwrap());
        assert_eq!(f.barrier_counts(), (0, 0, 0), "fresh object needs no barriers");
    }

    #[test]
    fn without_tx_local_fresh_objects_keep_barriers() {
        let mut ir = prepared(
            "class C { var x: int; }
             fn f() -> int {
                 let r = 0;
                 atomic { let c = new C(); c.x = 5; r = c.x; }
                 return r;
             }",
        );
        run(&mut ir, "f", CseScope::Global, TransferOptions::default());
        let f = ir.function(ir.function_id("f").unwrap());
        let (reads, updates, undos) = f.barrier_counts();
        assert_eq!((updates, undos), (1, 1));
        // The read after the write is subsumed by the update fact.
        assert_eq!(reads, 0);
    }

    #[test]
    fn loop_carried_availability_is_not_assumed() {
        // The open inside the loop must stay: on loop entry nothing is
        // open (this is precisely what hoisting, not CSE, fixes).
        let mut ir = prepared(
            "class C { var x: int; }
             fn f(c: C, n: int) {
                 atomic {
                     let i = 0;
                     while i < n { c.x = c.x + 1; i = i + 1; }
                 }
             }",
        );
        run(&mut ir, "f", CseScope::Global, TransferOptions::default());
        let f = ir.function(ir.function_id("f").unwrap());
        let (_, updates, _) = f.barrier_counts();
        assert_eq!(updates, 1, "in-loop open survives CSE");
    }
}
