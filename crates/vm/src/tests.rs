//! End-to-end interpreter tests: every backend runs the same compiled
//! programs to the same answers; conflicts retry; zombies are contained.

use std::sync::Arc;

use omt_heap::{Heap, Word};
use omt_opt::{compile, OptLevel};

use crate::{run_parallel, BackendKind, SyncBackend, Vm, VmConfig, VmError};

fn vm_for(src: &str, level: OptLevel, kind: BackendKind) -> Vm {
    let (ir, _) = compile(src, level).expect("compile");
    let heap = Arc::new(Heap::new());
    let backend = Arc::new(SyncBackend::new(kind, heap.clone()));
    Vm::new(Arc::new(ir), heap, backend)
}

fn run_scalar(vm: &Vm, name: &str, args: &[i64]) -> i64 {
    let words: Vec<Word> = args.iter().map(|a| Word::from_scalar(*a)).collect();
    vm.run(name, &words)
        .expect("run")
        .expect("function returns a value")
        .as_scalar()
        .expect("scalar result")
}

const FIB: &str = "
    fn fib(n: int) -> int {
        if n < 2 { return n; }
        return fib(n - 1) + fib(n - 2);
    }
";

const LIST_PROGRAM: &str = "
    class Node { val key: int; var next: Node; }
    fn build(n: int) -> Node {
        let head: Node = null;
        let i = 0;
        while i < n {
            let fresh = new Node(n - i, head);
            head = fresh;
            i = i + 1;
        }
        return head;
    }
    fn sum(h: Node) -> int {
        let t = 0;
        atomic {
            let p = h;
            while p != null {
                t = t + p.key;
                p = p.next;
            }
        }
        return t;
    }
    fn main(n: int) -> int {
        return sum(build(n));
    }
";

#[test]
fn recursion_without_transactions() {
    let vm = vm_for(FIB, OptLevel::O2, BackendKind::Sequential);
    assert_eq!(run_scalar(&vm, "fib", &[10]), 55);
}

#[test]
fn all_backends_agree_on_list_sum() {
    for kind in BackendKind::ALL {
        for level in OptLevel::ALL {
            let vm = vm_for(LIST_PROGRAM, level, kind);
            assert_eq!(run_scalar(&vm, "main", &[100]), 5050, "backend {kind}, level {level}");
        }
    }
}

#[test]
fn dynamic_barrier_counts_fall_with_optimization() {
    let mut totals = Vec::new();
    for level in OptLevel::ALL {
        let vm = vm_for(LIST_PROGRAM, level, BackendKind::DirectStm);
        run_scalar(&vm, "main", &[200]);
        totals.push(vm.counters().total_barriers());
    }
    for pair in totals.windows(2) {
        assert!(pair[1] <= pair[0], "dynamic barriers increased: {totals:?}");
    }
    assert!(
        totals[4] < totals[0],
        "O4 ({}) should execute far fewer barriers than O0 ({})",
        totals[4],
        totals[0]
    );
}

#[test]
fn immutable_key_reads_execute_no_read_barrier_at_o4() {
    // An object whose only read field is `val`: at O3 one (hoisted)
    // open still executes per call; at O4 none do.
    const SRC: &str = "
        class P { val x: int; }
        fn make(v: int) -> P { return new P(v); }
        fn spin(p: P, n: int) -> int {
            let t = 0;
            atomic {
                let i = 0;
                while i < n { t = t + p.x; i = i + 1; }
            }
            return t;
        }
    ";
    let mut opens = Vec::new();
    for level in [OptLevel::O3, OptLevel::O4] {
        let vm = vm_for(SRC, level, BackendKind::DirectStm);
        let p = vm.run("make", &[Word::from_scalar(3)]).unwrap().unwrap();
        let out = vm.run("spin", &[p, Word::from_scalar(50)]).unwrap().unwrap();
        assert_eq!(out.as_scalar(), Some(150));
        opens.push(vm.counters().open_read);
    }
    assert_eq!(opens[0], 1, "O3 hoists the open out of the loop");
    assert_eq!(opens[1], 0, "O4 elides it entirely (val field)");
}

#[test]
fn atomic_counter_is_exact_under_contention() {
    const SRC: &str = "
        class Counter { var hits: int; }
        fn bump(c: Counter, n: int) -> int {
            let i = 0;
            while i < n {
                atomic { c.hits = c.hits + 1; }
                i = i + 1;
            }
            return n;
        }
        fn make() -> Counter { return new Counter(); }
    ";
    for kind in
        [BackendKind::Coarse, BackendKind::TwoPhase, BackendKind::Buffered, BackendKind::DirectStm]
    {
        let (ir, _) = compile(SRC, OptLevel::O2).expect("compile");
        let ir = Arc::new(ir);
        let heap = Arc::new(Heap::new());
        let backend = Arc::new(SyncBackend::new(kind, heap.clone()));
        let setup = Vm::new(ir.clone(), heap.clone(), backend.clone());
        let counter = setup.run("make", &[]).unwrap().unwrap();

        let outcome = run_parallel(&ir, &heap, &backend, VmConfig::default(), "bump", 4, |_| {
            vec![counter, Word::from_scalar(250)]
        })
        .expect("parallel run");
        let c = counter.as_ref().unwrap();
        assert_eq!(heap.load(c, 0).as_scalar(), Some(1000), "lost updates under backend {kind}");
        assert_eq!(outcome.results.len(), 4);
    }
}

#[test]
fn conflicts_are_retried_and_counted() {
    const SRC: &str = "
        class Counter { var hits: int; }
        fn bump(c: Counter, n: int) -> int {
            let i = 0;
            while i < n {
                atomic { c.hits = c.hits + 1; }
                i = i + 1;
            }
            return n;
        }
        fn make() -> Counter { return new Counter(); }
    ";
    let (ir, _) = compile(SRC, OptLevel::O0).expect("compile");
    let ir = Arc::new(ir);
    let heap = Arc::new(Heap::new());
    let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
    let setup = Vm::new(ir.clone(), heap.clone(), backend.clone());
    let counter = setup.run("make", &[]).unwrap().unwrap();

    let outcome = run_parallel(&ir, &heap, &backend, VmConfig::default(), "bump", 8, |_| {
        vec![counter, Word::from_scalar(500)]
    })
    .expect("parallel run");
    assert_eq!(heap.load(counter.as_ref().unwrap(), 0).as_scalar(), Some(4000));
    assert_eq!(outcome.counters.tx_committed, 4000);
    // With 8 threads hammering one object, some retries are certain.
    let stm = backend.as_stm().expect("direct backend");
    assert_eq!(stm.stats().commits, 4000);
}

#[test]
fn zombie_division_by_zero_is_sandboxed() {
    // Two fields kept equal by every writer; a reader computing
    // 1 / (1 + a - b) can only divide by zero if it observes a torn
    // (inconsistent) state — the VM must convert that into a retry, so
    // the program never traps.
    const SRC: &str = "
        class Pair { var a: int; var b: int; }
        fn make() -> Pair { return new Pair(); }
        fn writer(p: Pair, n: int) -> int {
            let i = 0;
            while i < n {
                atomic { p.a = p.a + 1; p.b = p.b + 1; }
                i = i + 1;
            }
            return n;
        }
        fn reader(p: Pair, n: int) -> int {
            let acc = 0;
            let i = 0;
            while i < n {
                atomic {
                    let d = 1 + p.a - p.b;
                    acc = acc + 100 / d;
                }
                i = i + 1;
            }
            return acc;
        }
    ";
    let (ir, _) = compile(SRC, OptLevel::O2).expect("compile");
    let ir = Arc::new(ir);
    let heap = Arc::new(Heap::new());
    let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
    let setup = Vm::new(ir.clone(), heap.clone(), backend.clone());
    let pair = setup.run("make", &[]).unwrap().unwrap();

    let outcome = run_parallel(
        &ir,
        &heap,
        &backend,
        VmConfig::default(),
        "zombie_mix",
        1, // placeholder; real threads spawned below
        |_| vec![],
    );
    // `zombie_mix` doesn't exist — spawn manually instead.
    assert!(outcome.is_err());

    std::thread::scope(|scope| {
        for t in 0..4 {
            let ir = ir.clone();
            let heap = heap.clone();
            let backend = backend.clone();
            scope.spawn(move || {
                let vm = Vm::new(ir, heap, backend);
                let entry = if t % 2 == 0 { "writer" } else { "reader" };
                let out = vm.run(entry, &[pair, Word::from_scalar(2000)]);
                assert!(out.is_ok(), "{entry} trapped: {out:?}");
                if entry == "reader" {
                    // Every committed read saw a == b, so every term was
                    // exactly 100.
                    assert_eq!(out.unwrap().unwrap().as_scalar(), Some(2000 * 100));
                }
            });
        }
    });
}

#[test]
fn retry_rolls_registers_back() {
    // The accumulator is updated inside the region; a retry must not
    // double-count. We force retries via an explicit conflicting writer.
    const SRC: &str = "
        class Cell { var v: int; }
        fn make() -> Cell { return new Cell(); }
        fn addloop(c: Cell, n: int) -> int {
            let total = 0;
            let i = 0;
            while i < n {
                atomic {
                    total = total + 1;
                    c.v = c.v + 1;
                }
                i = i + 1;
            }
            return total;
        }
    ";
    let (ir, _) = compile(SRC, OptLevel::O0).expect("compile");
    let ir = Arc::new(ir);
    let heap = Arc::new(Heap::new());
    let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
    let setup = Vm::new(ir.clone(), heap.clone(), backend.clone());
    let cell = setup.run("make", &[]).unwrap().unwrap();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let ir = ir.clone();
            let heap = heap.clone();
            let backend = backend.clone();
            handles.push(scope.spawn(move || {
                let vm = Vm::new(ir, heap, backend);
                vm.run("addloop", &[cell, Word::from_scalar(500)])
                    .unwrap()
                    .unwrap()
                    .as_scalar()
                    .unwrap()
            }));
        }
        let totals: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(totals, vec![500; 4], "register rollback on retry");
    });
    assert_eq!(heap.load(cell.as_ref().unwrap(), 0).as_scalar(), Some(2000));
}

#[test]
fn null_dereference_outside_tx_is_a_real_trap() {
    const SRC: &str = "
        class C { var x: int; }
        fn f() -> int { let c: C = null; return c.x; }
    ";
    let vm = vm_for(SRC, OptLevel::O2, BackendKind::Sequential);
    match vm.run("f", &[]) {
        Err(VmError::Trap(msg)) => assert!(msg.contains("null"), "{msg}"),
        other => panic!("expected a trap, got {other:?}"),
    }
}

#[test]
fn unknown_function_and_arity_errors() {
    let vm = vm_for(FIB, OptLevel::O0, BackendKind::Sequential);
    assert!(matches!(vm.run("nope", &[]), Err(VmError::UnknownFunction(_))));
    assert!(matches!(vm.run("fib", &[]), Err(VmError::Trap(_))));
}

#[test]
fn sequential_backend_counts_barriers_without_paying_for_them() {
    let vm = vm_for(LIST_PROGRAM, OptLevel::O0, BackendKind::Sequential);
    run_scalar(&vm, "main", &[50]);
    let c = vm.counters();
    assert!(c.open_read > 0, "barrier ops are still counted");
    assert_eq!(c.tx_committed, 1);
}

#[test]
fn backend_kind_parsing_and_display() {
    for kind in BackendKind::ALL {
        let round: BackendKind = kind.to_string().parse().expect("own display parses");
        assert_eq!(round, kind);
    }
    assert!("martian".parse::<BackendKind>().is_err());
}

#[test]
fn vm_error_display_is_informative() {
    let vm = vm_for(FIB, OptLevel::O0, BackendKind::Sequential);
    let err = vm.run("nope", &[]).unwrap_err();
    assert!(err.to_string().contains("nope"));
}

#[test]
fn counters_reset() {
    let vm = vm_for(FIB, OptLevel::O0, BackendKind::Sequential);
    run_scalar(&vm, "fib", &[5]);
    assert!(vm.counters().insts > 0);
    vm.reset_counters();
    assert_eq!(vm.counters().insts, 0);
}
