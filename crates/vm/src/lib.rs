//! # omt-vm — interpreter over pluggable synchronization backends
//!
//! Executes optimized TxIL IR (from `omt-opt`) against any of the five
//! synchronization regimes the evaluation compares — uninstrumented
//! sequential, coarse global lock, per-object two-phase locking, a
//! TL2-style buffered STM, and the paper's direct-access STM — while
//! counting every dynamic barrier execution.
//!
//! Key reproduction points:
//!
//! - **decomposed execution**: `OpenForRead`/`OpenForUpdate`/`LogForUndo`
//!   are executed exactly where the optimizer left them, so dynamic
//!   barrier counts (experiment E4) directly reflect the pipeline;
//! - **region retry**: atomic regions snapshot their registers at
//!   `TxBegin`; conflicts roll back and re-enter with backoff;
//! - **sandboxing**: runtime errors inside invalid ("zombie")
//!   transactions become retries after validation, and loop back-edges
//!   re-validate periodically — the managed-runtime behaviour the
//!   paper's direct-update design relies on.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use omt_heap::Heap;
//! use omt_opt::{compile, OptLevel};
//! use omt_vm::{BackendKind, SyncBackend, Vm};
//!
//! let (ir, _) = compile("
//!     fn work(n: int) -> int {
//!         let c = new Counter();
//!         let i = 0;
//!         while i < n { atomic { c.hits = c.hits + 1; } i = i + 1; }
//!         return c.hits;
//!     }
//!     class Counter { var hits: int; }
//! ", OptLevel::O3)?;
//! let heap = Arc::new(Heap::new());
//! let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
//! let vm = Vm::new(Arc::new(ir), heap, backend);
//! let out = vm.run("work", &[omt_heap::Word::from_scalar(10)])?;
//! assert_eq!(out.unwrap().as_scalar(), Some(10));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod counters;
mod parallel;
mod vm;

#[cfg(test)]
mod tests;

pub use backend::{BackendKind, SyncBackend};
pub use counters::{VmCounters, VmCountersSnapshot};
pub use parallel::{run_parallel, ParallelOutcome};
pub use vm::{Vm, VmConfig, VmError};
