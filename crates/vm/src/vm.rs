//! The IR interpreter.
//!
//! Executes optimized IR against a [`SyncBackend`], mapping the
//! decomposed STM operations onto the backend's session operations and
//! handling atomic-region retry: on a conflict the session is aborted,
//! the region's register snapshot is restored, and execution re-enters
//! at `TxBegin` with randomized backoff.
//!
//! Two pieces of managed-runtime *sandboxing* from the paper are
//! reproduced here:
//!
//! - a runtime error raised inside a doomed ("zombie") transaction —
//!   division by zero, null dereference, type confusion — triggers
//!   validation first; if the transaction is invalid the error is
//!   converted into a retry instead of surfacing to the user;
//! - loop back-edges inside a transaction optionally re-validate every
//!   *n* iterations, bounding how long a zombie can run.

use std::fmt;
use std::sync::Arc;

use omt_heap::{ClassDesc, ClassId, FieldDesc, FieldMut, Heap, Word};
use omt_ir::{BinOpKind, FuncId, Inst, IrProgram, Terminator, UnOpKind};

use crate::backend::{Session, SyncBackend, Trap};
use crate::counters::{VmCounters, VmCountersSnapshot};

/// Interpreter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmConfig {
    /// Re-validate the active transaction every `n` loop back-edges
    /// (zombie containment). `None` disables.
    pub validate_backedges_every: Option<u32>,
    /// Give up after this many retries of one atomic region.
    pub max_region_retries: u32,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig { validate_backedges_every: Some(1024), max_region_retries: 10_000_000 }
    }
}

/// Errors surfaced to the caller of [`Vm::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// No function with that name in the program.
    UnknownFunction(String),
    /// A runtime trap (null dereference, arithmetic error, retry budget
    /// exhausted, ...).
    Trap(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            VmError::Trap(msg) => write!(f, "runtime trap: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}

/// A single-threaded interpreter instance.
///
/// Multiple `Vm`s may share one program, heap, and backend across
/// threads (see [`crate::run_parallel`]).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::{Heap, Word};
/// use omt_opt::{compile, OptLevel};
/// use omt_vm::{BackendKind, SyncBackend, Vm};
///
/// let (ir, _) = compile("
///     class C { var x: int; }
///     fn main() -> int {
///         let c = new C();
///         atomic { c.x = 41; c.x = c.x + 1; }
///         return c.x;
///     }
/// ", OptLevel::O2)?;
/// let heap = Arc::new(Heap::new());
/// let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
/// let vm = Vm::new(Arc::new(ir), heap, backend);
/// let result = vm.run("main", &[])?;
/// assert_eq!(result.unwrap().as_scalar(), Some(42));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Vm {
    program: Arc<IrProgram>,
    heap: Arc<Heap>,
    backend: Arc<SyncBackend>,
    class_map: Vec<ClassId>,
    counters: VmCounters,
    callee_backedges: std::cell::Cell<u32>,
    config: VmConfig,
}

struct RegionState {
    snapshot: Vec<Word>,
    block: usize,
    index: usize,
    attempt: u32,
    backedges: u32,
}

impl Vm {
    /// Creates a VM with the default configuration, registering the
    /// program's classes with the heap.
    pub fn new(program: Arc<IrProgram>, heap: Arc<Heap>, backend: Arc<SyncBackend>) -> Vm {
        Vm::with_config(program, heap, backend, VmConfig::default())
    }

    /// Creates a VM with an explicit configuration.
    pub fn with_config(
        program: Arc<IrProgram>,
        heap: Arc<Heap>,
        backend: Arc<SyncBackend>,
        config: VmConfig,
    ) -> Vm {
        let class_map = program
            .classes
            .iter()
            .map(|c| {
                heap.define_class(ClassDesc::new(
                    c.name.clone(),
                    c.fields
                        .iter()
                        .map(|f| {
                            FieldDesc::new(
                                f.name.clone(),
                                if f.immutable { FieldMut::Val } else { FieldMut::Var },
                            )
                        })
                        .collect(),
                ))
            })
            .collect();
        Vm {
            program,
            heap,
            backend,
            class_map,
            counters: VmCounters::default(),
            callee_backedges: std::cell::Cell::new(0),
            config,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<IrProgram> {
        &self.program
    }

    /// The shared heap.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// The synchronization backend.
    pub fn backend(&self) -> &Arc<SyncBackend> {
        &self.backend
    }

    /// Dynamic counters accumulated so far.
    pub fn counters(&self) -> VmCountersSnapshot {
        self.counters.snapshot()
    }

    /// Zeroes the dynamic counters.
    pub fn reset_counters(&self) {
        self.counters.reset();
    }

    /// Runs the named function with `args`.
    ///
    /// # Errors
    ///
    /// [`VmError::UnknownFunction`] for a bad name; [`VmError::Trap`]
    /// for runtime errors (including a wrong argument count and an
    /// exhausted retry budget).
    pub fn run(&self, name: &str, args: &[Word]) -> Result<Option<Word>, VmError> {
        let Some(func) = self.program.function_id(name) else {
            return Err(VmError::UnknownFunction(name.to_owned()));
        };
        let f = self.program.function(func);
        if args.len() != f.param_count as usize {
            return Err(VmError::Trap(format!(
                "`{name}` expects {} argument(s), got {}",
                f.param_count,
                args.len()
            )));
        }
        let backend = self.backend.clone();
        let mut session = Session::Idle;
        let result = self.exec(&backend, &mut session, func, args);
        session.abort(); // releases locks/ownership on error paths
        result.map_err(|t| match t {
            Trap::Conflict => VmError::Trap("conflict escaped all atomic regions".into()),
            Trap::Error(msg) => VmError::Trap(msg),
        })
    }

    fn exec<'b>(
        &self,
        backend: &'b SyncBackend,
        session: &mut Session<'b>,
        func: FuncId,
        args: &[Word],
    ) -> Result<Option<Word>, Trap> {
        let f = self.program.function(func);
        let mut regs: Vec<Word> = vec![Word::default(); f.reg_count.max(f.param_count) as usize];
        regs[..args.len()].copy_from_slice(args);

        let mut block = 0usize;
        let mut index = 0usize;
        let mut region: Option<RegionState> = None;

        'dispatch: loop {
            let insts = &f.blocks[block].insts;
            if index < insts.len() {
                let inst = &insts[index];
                VmCounters::bump(&self.counters.insts);
                let step =
                    self.exec_inst(backend, session, inst, &mut regs, block, index, &mut region);
                match step {
                    Ok(()) => {
                        index += 1;
                        continue 'dispatch;
                    }
                    Err(trap) => {
                        match self.handle_trap(trap, session, &mut region)? {
                            Recovery::Retry { to_block, to_index, snapshot } => {
                                regs.copy_from_slice(&snapshot);
                                // Keep the snapshot for the next retry.
                                if let Some(state) = &mut region {
                                    state.snapshot = snapshot;
                                }
                                block = to_block;
                                index = to_index;
                                continue 'dispatch;
                            }
                        }
                    }
                }
            }

            match &f.blocks[block].term {
                Terminator::Jump(t) => {
                    let target = t.index();
                    if let Err(trap) = self.on_edge(session, &mut region, block, target) {
                        match self.handle_trap(trap, session, &mut region)? {
                            Recovery::Retry { to_block, to_index, snapshot } => {
                                regs.copy_from_slice(&snapshot);
                                if let Some(state) = &mut region {
                                    state.snapshot = snapshot;
                                }
                                block = to_block;
                                index = to_index;
                                continue 'dispatch;
                            }
                        }
                    }
                    block = target;
                    index = 0;
                }
                Terminator::Branch { cond, then_b, else_b } => {
                    let w = regs[cond.0 as usize];
                    let taken = match w.as_scalar() {
                        Some(v) => v != 0,
                        None => {
                            // A reference where a bool was expected: only
                            // possible in a zombie; sandbox it.
                            match self.handle_trap(
                                Trap::Error("branch on a non-boolean value".into()),
                                session,
                                &mut region,
                            )? {
                                Recovery::Retry { to_block, to_index, snapshot } => {
                                    regs.copy_from_slice(&snapshot);
                                    if let Some(state) = &mut region {
                                        state.snapshot = snapshot;
                                    }
                                    block = to_block;
                                    index = to_index;
                                    continue 'dispatch;
                                }
                            }
                        }
                    };
                    let target = if taken { then_b.index() } else { else_b.index() };
                    if let Err(trap) = self.on_edge(session, &mut region, block, target) {
                        match self.handle_trap(trap, session, &mut region)? {
                            Recovery::Retry { to_block, to_index, snapshot } => {
                                regs.copy_from_slice(&snapshot);
                                if let Some(state) = &mut region {
                                    state.snapshot = snapshot;
                                }
                                block = to_block;
                                index = to_index;
                                continue 'dispatch;
                            }
                        }
                    }
                    block = target;
                    index = 0;
                }
                Terminator::Return(value) => {
                    if region.is_some() {
                        return Err(Trap::Error("return inside an atomic region".into()));
                    }
                    return Ok(value.map(|r| regs[r.0 as usize]));
                }
            }
        }
    }

    /// Back-edge hook: count and periodically validate (zombie
    /// containment).
    fn on_edge(
        &self,
        session: &mut Session<'_>,
        region: &mut Option<RegionState>,
        from: usize,
        to: usize,
    ) -> Result<(), Trap> {
        if to > from || !session.is_active() {
            return Ok(());
        }
        let Some(every) = self.config.validate_backedges_every else { return Ok(()) };
        if let Some(state) = region {
            state.backedges += 1;
            if state.backedges >= every {
                state.backedges = 0;
                VmCounters::bump(&self.counters.backedge_validations);
                session.validate()?;
            }
        } else {
            // We are in a callee of the region frame; use a VM-level
            // counter so callee loops are bounded the same way.
            let n = self.callee_backedges.get() + 1;
            if n >= every {
                self.callee_backedges.set(0);
                VmCounters::bump(&self.counters.backedge_validations);
                session.validate()?;
            } else {
                self.callee_backedges.set(n);
            }
        }
        Ok(())
    }

    fn handle_trap(
        &self,
        trap: Trap,
        session: &mut Session<'_>,
        region: &mut Option<RegionState>,
    ) -> Result<Recovery, Trap> {
        let trap = match trap {
            Trap::Error(msg) => {
                // Managed-runtime sandboxing: a runtime error inside an
                // invalid transaction is an artifact — retry instead.
                if session.is_active() && session.validate().is_err() {
                    Trap::Conflict
                } else {
                    return Err(Trap::Error(msg));
                }
            }
            Trap::Conflict => Trap::Conflict,
        };
        debug_assert!(matches!(trap, Trap::Conflict));

        let Some(state) = region else {
            // The region began in a caller frame; unwind to it.
            return Err(Trap::Conflict);
        };
        session.abort();
        VmCounters::bump(&self.counters.tx_retries);
        state.attempt += 1;
        if state.attempt > self.config.max_region_retries {
            return Err(Trap::Error("atomic region retry budget exhausted".into()));
        }
        backoff(state.attempt);
        Ok(Recovery::Retry {
            to_block: state.block,
            to_index: state.index,
            snapshot: state.snapshot.clone(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_inst<'b>(
        &self,
        backend: &'b SyncBackend,
        session: &mut Session<'b>,
        inst: &Inst,
        regs: &mut [Word],
        block: usize,
        index: usize,
        region: &mut Option<RegionState>,
    ) -> Result<(), Trap> {
        let c = &self.counters;
        match inst {
            Inst::Const { dst, value } => {
                regs[dst.0 as usize] = Word::from_scalar(*value);
                Ok(())
            }
            Inst::Null { dst } => {
                regs[dst.0 as usize] = Word::null();
                Ok(())
            }
            Inst::Copy { dst, src } => {
                regs[dst.0 as usize] = regs[src.0 as usize];
                Ok(())
            }
            Inst::UnOp { dst, op, src } => {
                let v = regs[src.0 as usize]
                    .as_scalar()
                    .ok_or_else(|| Trap::Error("unary operator on a reference".into()))?;
                let result = match op {
                    UnOpKind::Neg => Word::from_scalar_wrapping(v.wrapping_neg()),
                    UnOpKind::Not => Word::from_scalar(i64::from(v == 0)),
                };
                regs[dst.0 as usize] = result;
                Ok(())
            }
            Inst::BinOp { dst, op, lhs, rhs } => {
                regs[dst.0 as usize] = eval_binop(*op, regs[lhs.0 as usize], regs[rhs.0 as usize])?;
                Ok(())
            }
            Inst::New { dst, class, args } => {
                VmCounters::bump(&c.allocs);
                let heap_class = self.class_map[class.0 as usize];
                let obj = session.alloc(&self.heap, heap_class)?;
                if args.is_empty() {
                    // Zero-arg `new`: ints/bools default to 0/false (the
                    // heap's zero fill), class-typed fields to null.
                    for (i, field) in self.program.class(*class).fields.iter().enumerate() {
                        if field.is_ref {
                            self.heap.store(obj, i, Word::null());
                        }
                    }
                } else {
                    for (i, arg) in args.iter().enumerate() {
                        self.heap.store(obj, i, regs[arg.0 as usize]);
                    }
                }
                regs[dst.0 as usize] = Word::from_ref(obj);
                Ok(())
            }
            Inst::GetField { dst, obj, field, .. } => {
                VmCounters::bump(&c.get_field);
                let r = object_of(regs[obj.0 as usize])?;
                regs[dst.0 as usize] = session.load(&self.heap, r, *field as usize)?;
                Ok(())
            }
            Inst::SetField { obj, field, src, .. } => {
                VmCounters::bump(&c.set_field);
                let r = object_of(regs[obj.0 as usize])?;
                session.store(&self.heap, r, *field as usize, regs[src.0 as usize])
            }
            Inst::OpenForRead { obj } => {
                VmCounters::bump(&c.open_read);
                match regs[obj.0 as usize].as_ref() {
                    Some(r) => session.open_for_read(r),
                    None => Ok(()), // null-tolerant (hoisting safety)
                }
            }
            Inst::OpenForUpdate { obj } => {
                VmCounters::bump(&c.open_update);
                match regs[obj.0 as usize].as_ref() {
                    Some(r) => session.open_for_update(r),
                    None => Ok(()),
                }
            }
            Inst::LogForUndo { obj, field, .. } => {
                VmCounters::bump(&c.log_undo);
                match regs[obj.0 as usize].as_ref() {
                    Some(r) => session.log_for_undo(r, *field as usize),
                    None => Ok(()),
                }
            }
            Inst::Call { dst, func, args } => {
                VmCounters::bump(&c.calls);
                let arg_words: Vec<Word> = args.iter().map(|a| regs[a.0 as usize]).collect();
                let result = self.exec(backend, session, *func, &arg_words)?;
                if let Some(dst) = dst {
                    let value =
                        result.ok_or_else(|| Trap::Error("function returned no value".into()))?;
                    regs[dst.0 as usize] = value;
                }
                Ok(())
            }
            Inst::TxBegin => {
                if region.is_none() {
                    VmCounters::bump(&c.tx_begun);
                    *region = Some(RegionState {
                        snapshot: regs.to_vec(),
                        block,
                        index,
                        attempt: 0,
                        backedges: 0,
                    });
                }
                if session.is_active() {
                    return Err(Trap::Error("nested tx_begin".into()));
                }
                *session = Session::begin(backend);
                Ok(())
            }
            Inst::TxCommit => {
                session.commit()?;
                VmCounters::bump(&c.tx_committed);
                *region = None;
                Ok(())
            }
        }
    }
}

enum Recovery {
    Retry { to_block: usize, to_index: usize, snapshot: Vec<Word> },
}

fn object_of(w: Word) -> Result<omt_heap::ObjRef, Trap> {
    if w.is_null() {
        return Err(Trap::Error("null dereference".into()));
    }
    w.as_ref().ok_or_else(|| Trap::Error("field access on a non-object".into()))
}

fn eval_binop(op: BinOpKind, a: Word, b: Word) -> Result<Word, Trap> {
    use BinOpKind::*;
    match op {
        Eq => return Ok(Word::from_scalar(i64::from(a == b))),
        Ne => return Ok(Word::from_scalar(i64::from(a != b))),
        _ => {}
    }
    let (x, y) = match (a.as_scalar(), b.as_scalar()) {
        (Some(x), Some(y)) => (x, y),
        _ => return Err(Trap::Error("arithmetic on a reference".into())),
    };
    let result = match op {
        Add => Word::from_scalar_wrapping(x.wrapping_add(y)),
        Sub => Word::from_scalar_wrapping(x.wrapping_sub(y)),
        Mul => Word::from_scalar_wrapping(x.wrapping_mul(y)),
        Div => {
            if y == 0 {
                return Err(Trap::Error("division by zero".into()));
            }
            Word::from_scalar_wrapping(x.wrapping_div(y))
        }
        Mod => {
            if y == 0 {
                return Err(Trap::Error("remainder by zero".into()));
            }
            Word::from_scalar_wrapping(x.wrapping_rem(y))
        }
        Lt => Word::from_scalar(i64::from(x < y)),
        Le => Word::from_scalar(i64::from(x <= y)),
        Gt => Word::from_scalar(i64::from(x > y)),
        Ge => Word::from_scalar(i64::from(x >= y)),
        Eq | Ne => unreachable!("handled above"),
    };
    Ok(result)
}

fn backoff(attempt: u32) {
    let cap = 1u32 << attempt.min(12);
    let spins = omt_util::rng::thread_rng().gen_range(0..=cap);
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    if attempt > 8 {
        std::thread::yield_now();
    }
}
