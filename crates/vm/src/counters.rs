//! Dynamic operation counters — the evaluation's "barriers executed"
//! numbers.

use std::cell::Cell;
use std::fmt;

/// Per-VM dynamic counters (a VM is single-threaded; counters use
/// `Cell`).
#[derive(Debug, Default)]
pub struct VmCounters {
    pub(crate) insts: Cell<u64>,
    pub(crate) open_read: Cell<u64>,
    pub(crate) open_update: Cell<u64>,
    pub(crate) log_undo: Cell<u64>,
    pub(crate) get_field: Cell<u64>,
    pub(crate) set_field: Cell<u64>,
    pub(crate) allocs: Cell<u64>,
    pub(crate) calls: Cell<u64>,
    pub(crate) tx_begun: Cell<u64>,
    pub(crate) tx_committed: Cell<u64>,
    pub(crate) tx_retries: Cell<u64>,
    pub(crate) backedge_validations: Cell<u64>,
}

impl VmCounters {
    /// Takes a copy of all counters.
    pub fn snapshot(&self) -> VmCountersSnapshot {
        VmCountersSnapshot {
            insts: self.insts.get(),
            open_read: self.open_read.get(),
            open_update: self.open_update.get(),
            log_undo: self.log_undo.get(),
            get_field: self.get_field.get(),
            set_field: self.set_field.get(),
            allocs: self.allocs.get(),
            calls: self.calls.get(),
            tx_begun: self.tx_begun.get(),
            tx_committed: self.tx_committed.get(),
            tx_retries: self.tx_retries.get(),
            backedge_validations: self.backedge_validations.get(),
        }
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.insts.set(0);
        self.open_read.set(0);
        self.open_update.set(0);
        self.log_undo.set(0);
        self.get_field.set(0);
        self.set_field.set(0);
        self.allocs.set(0);
        self.calls.set(0);
        self.tx_begun.set(0);
        self.tx_committed.set(0);
        self.tx_retries.set(0);
        self.backedge_validations.set(0);
    }

    pub(crate) fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }
}

/// A copy of [`VmCounters`] at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmCountersSnapshot {
    /// IR instructions executed.
    pub insts: u64,
    /// `OpenForRead` barriers executed.
    pub open_read: u64,
    /// `OpenForUpdate` barriers executed.
    pub open_update: u64,
    /// `LogForUndo` barriers executed.
    pub log_undo: u64,
    /// Raw field loads.
    pub get_field: u64,
    /// Raw field stores.
    pub set_field: u64,
    /// Object allocations.
    pub allocs: u64,
    /// Function calls.
    pub calls: u64,
    /// Atomic regions entered (first attempts).
    pub tx_begun: u64,
    /// Atomic regions committed.
    pub tx_committed: u64,
    /// Region re-executions after conflicts.
    pub tx_retries: u64,
    /// Validations triggered at loop back-edges.
    pub backedge_validations: u64,
}

impl VmCountersSnapshot {
    /// Total dynamic barrier executions.
    pub fn total_barriers(&self) -> u64 {
        self.open_read + self.open_update + self.log_undo
    }

    /// Barriers per field access — the headline per-access overhead
    /// indicator (0 when no accesses happened).
    pub fn barriers_per_access(&self) -> f64 {
        let accesses = self.get_field + self.set_field;
        if accesses == 0 {
            0.0
        } else {
            self.total_barriers() as f64 / accesses as f64
        }
    }
}

impl fmt::Display for VmCountersSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts; barriers: {} open-read, {} open-update, {} log-undo \
             ({:.3}/access); {} tx ({} retries)",
            self.insts,
            self.open_read,
            self.open_update,
            self.log_undo,
            self.barriers_per_access(),
            self.tx_committed,
            self.tx_retries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let c = VmCounters::default();
        VmCounters::bump(&c.open_read);
        VmCounters::bump(&c.open_read);
        VmCounters::bump(&c.get_field);
        let s = c.snapshot();
        assert_eq!(s.open_read, 2);
        assert_eq!(s.total_barriers(), 2);
        assert!((s.barriers_per_access() - 2.0).abs() < 1e-9);
        c.reset();
        assert_eq!(c.snapshot(), VmCountersSnapshot::default());
    }

    #[test]
    fn display_is_informative() {
        let s = VmCountersSnapshot { open_read: 5, ..Default::default() };
        assert!(s.to_string().contains("5 open-read"));
    }
}
