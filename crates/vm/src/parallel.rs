//! Multithreaded execution harness.
//!
//! Spawns one [`Vm`] per thread over a shared program, heap, and
//! backend, runs a per-thread entry function, and aggregates dynamic
//! counters — the engine behind the scalability experiments.

use std::sync::Arc;
use std::time::{Duration, Instant};

use omt_heap::{Heap, Word};
use omt_ir::IrProgram;

use crate::backend::SyncBackend;
use crate::counters::VmCountersSnapshot;
use crate::vm::{Vm, VmConfig, VmError};

/// Result of a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Per-thread return values.
    pub results: Vec<Option<Word>>,
    /// Summed dynamic counters across threads.
    pub counters: VmCountersSnapshot,
}

impl ParallelOutcome {
    /// Throughput in "returned scalar units" per second: the sum of
    /// per-thread scalar return values divided by elapsed time. Threads
    /// conventionally return their completed-operation count.
    pub fn ops_per_second(&self) -> f64 {
        let total: i64 =
            self.results.iter().map(|r| r.and_then(Word::as_scalar).unwrap_or(0)).sum();
        total as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs `entry(thread_index)` on `threads` interpreter threads sharing
/// `program`, `heap`, and `backend`.
///
/// Each thread calls the entry function with the argument words
/// produced by `args_for`; the convention in the benchmark programs is
/// to return the number of operations completed.
///
/// # Errors
///
/// Returns the first per-thread error, if any.
pub fn run_parallel(
    program: &Arc<IrProgram>,
    heap: &Arc<Heap>,
    backend: &Arc<SyncBackend>,
    config: VmConfig,
    entry: &str,
    threads: usize,
    args_for: impl Fn(usize) -> Vec<Word> + Sync,
) -> Result<ParallelOutcome, VmError> {
    assert!(threads >= 1, "need at least one thread");
    let start = Instant::now();
    let outcomes: Vec<Result<(Option<Word>, VmCountersSnapshot), VmError>> =
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let program = Arc::clone(program);
                let heap = Arc::clone(heap);
                let backend = Arc::clone(backend);
                let args = args_for(t);
                handles.push(scope.spawn(move || {
                    let vm = Vm::with_config(program, heap, backend, config);
                    let result = vm.run(entry, &args)?;
                    Ok((result, vm.counters()))
                }));
            }
            handles.into_iter().map(|h| h.join().expect("vm thread panicked")).collect()
        });
    let elapsed = start.elapsed();

    let mut results = Vec::with_capacity(threads);
    let mut counters = VmCountersSnapshot::default();
    for outcome in outcomes {
        let (result, c) = outcome?;
        results.push(result);
        counters = sum(counters, c);
    }
    Ok(ParallelOutcome { elapsed, results, counters })
}

fn sum(a: VmCountersSnapshot, b: VmCountersSnapshot) -> VmCountersSnapshot {
    VmCountersSnapshot {
        insts: a.insts + b.insts,
        open_read: a.open_read + b.open_read,
        open_update: a.open_update + b.open_update,
        log_undo: a.log_undo + b.log_undo,
        get_field: a.get_field + b.get_field,
        set_field: a.set_field + b.set_field,
        allocs: a.allocs + b.allocs,
        calls: a.calls + b.calls,
        tx_begun: a.tx_begun + b.tx_begun,
        tx_committed: a.tx_committed + b.tx_committed,
        tx_retries: a.tx_retries + b.tx_retries,
        backedge_validations: a.backedge_validations + b.backedge_validations,
    }
}
