//! Synchronization backends and per-region sessions.
//!
//! One compiled program can execute under any of five synchronization
//! regimes — the comparison axis of the paper's evaluation:
//!
//! | backend | atomic region becomes |
//! |---------|------------------------|
//! | [`SyncBackend::Sequential`] | nothing (uninstrumented baseline)  |
//! | [`SyncBackend::Coarse`]     | one global mutex                   |
//! | [`SyncBackend::TwoPhase`]   | per-object encounter-time locks    |
//! | [`SyncBackend::Buffered`]   | TL2-style buffered transaction     |
//! | [`SyncBackend::DirectStm`]  | the paper's direct-access STM      |
//!
//! The interpreter maps each decomposed IR operation onto the session
//! of the active backend; note that the buffered STM *cannot* exploit
//! the decomposed barriers (every read must consult the write buffer),
//! which is exactly the structural disadvantage the paper identifies.

use std::fmt;
use std::sync::Arc;

use omt_baselines::{CoarseGuard, CoarseLock, TplTx, TwoPhaseLocking, WConflict, WStm, WTx};
use omt_heap::{Heap, ObjRef, Word};
use omt_stm::{Stm, StmConfig, Transaction, TxError};

/// Why an atomic region's execution could not continue.
#[derive(Debug)]
pub(crate) enum Trap {
    /// Synchronization conflict: roll back to the region start and
    /// retry.
    Conflict,
    /// A genuine runtime error (null dereference, division by zero,
    /// heap exhaustion...).
    Error(String),
}

/// A synchronization backend over a shared heap.
// One backend exists per VM, so the size skew from the Stm variant
// (serial gate + failpoint registry) does not matter.
#[allow(clippy::large_enum_variant)]
pub enum SyncBackend {
    /// No synchronization: the uninstrumented sequential baseline.
    Sequential,
    /// One global lock around every atomic region.
    Coarse(CoarseLock),
    /// Encounter-time per-object two-phase locking.
    TwoPhase(TwoPhaseLocking),
    /// Buffered-update word STM (TL2-style).
    Buffered(WStm),
    /// The direct-access STM of the paper.
    DirectStm(Stm),
}

impl SyncBackend {
    /// Creates a backend of the given kind over `heap`.
    pub fn new(kind: BackendKind, heap: Arc<Heap>) -> SyncBackend {
        SyncBackend::with_stm_config(kind, heap, StmConfig::default())
    }

    /// Creates a backend of the given kind over `heap`, using `config`
    /// for the direct STM (contention management, serial fallback,
    /// filtering...). Non-STM backends ignore the config.
    pub fn with_stm_config(kind: BackendKind, heap: Arc<Heap>, config: StmConfig) -> SyncBackend {
        match kind {
            BackendKind::Sequential => SyncBackend::Sequential,
            BackendKind::Coarse => SyncBackend::Coarse(CoarseLock::new()),
            BackendKind::TwoPhase => SyncBackend::TwoPhase(TwoPhaseLocking::new(heap)),
            BackendKind::Buffered => SyncBackend::Buffered(WStm::new(heap)),
            BackendKind::DirectStm => SyncBackend::DirectStm(Stm::with_config(heap, config)),
        }
    }

    /// The backend's kind.
    pub fn kind(&self) -> BackendKind {
        match self {
            SyncBackend::Sequential => BackendKind::Sequential,
            SyncBackend::Coarse(_) => BackendKind::Coarse,
            SyncBackend::TwoPhase(_) => BackendKind::TwoPhase,
            SyncBackend::Buffered(_) => BackendKind::Buffered,
            SyncBackend::DirectStm(_) => BackendKind::DirectStm,
        }
    }

    /// The inner direct STM, if this backend is one.
    pub fn as_stm(&self) -> Option<&Stm> {
        match self {
            SyncBackend::DirectStm(stm) => Some(stm),
            _ => None,
        }
    }
}

impl fmt::Debug for SyncBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SyncBackend::{:?}", self.kind())
    }
}

/// Identifies a backend kind (for CLI parsing and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Uninstrumented sequential execution.
    Sequential,
    /// Global mutex.
    Coarse,
    /// Per-object two-phase locking.
    TwoPhase,
    /// Buffered word STM.
    Buffered,
    /// Direct-access STM.
    DirectStm,
}

impl BackendKind {
    /// All kinds, in the order evaluation tables report them.
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Sequential,
        BackendKind::Coarse,
        BackendKind::TwoPhase,
        BackendKind::Buffered,
        BackendKind::DirectStm,
    ];
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BackendKind::Sequential => "sequential",
            BackendKind::Coarse => "coarse-lock",
            BackendKind::TwoPhase => "2pl",
            BackendKind::Buffered => "wstm",
            BackendKind::DirectStm => "stm",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "sequential" | "seq" => Ok(BackendKind::Sequential),
            "coarse" | "coarse-lock" => Ok(BackendKind::Coarse),
            "2pl" | "twophase" | "medium" => Ok(BackendKind::TwoPhase),
            "wstm" | "buffered" | "tl2" => Ok(BackendKind::Buffered),
            "stm" | "direct" => Ok(BackendKind::DirectStm),
            other => Err(format!("unknown backend `{other}` (sequential|coarse|2pl|wstm|stm)")),
        }
    }
}

/// The per-atomic-region synchronization state.
// One `Session` lives per interpreter, never in collections, so the
// size spread between `Idle` and a full `Transaction` costs nothing;
// boxing the STM variant would put an indirection on the hot path.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Session<'b> {
    /// No region active.
    Idle,
    /// Sequential: regions are free.
    SequentialRegion,
    /// Holding the global lock.
    Coarse(CoarseGuard<'b>),
    /// A 2PL section.
    Tpl(TplTx<'b>),
    /// A buffered transaction.
    Buffered(WTx<'b>),
    /// A direct-access transaction.
    Stm(Transaction<'b>),
}

impl<'b> Session<'b> {
    pub(crate) fn is_active(&self) -> bool {
        !matches!(self, Session::Idle)
    }

    /// Begins a region on `backend`.
    pub(crate) fn begin(backend: &'b SyncBackend) -> Session<'b> {
        match backend {
            SyncBackend::Sequential => Session::SequentialRegion,
            SyncBackend::Coarse(lock) => Session::Coarse(lock.enter()),
            SyncBackend::TwoPhase(tpl) => Session::Tpl(tpl.begin()),
            SyncBackend::Buffered(wstm) => Session::Buffered(wstm.begin()),
            SyncBackend::DirectStm(stm) => Session::Stm(stm.begin()),
        }
    }

    pub(crate) fn open_for_read(&mut self, obj: ObjRef) -> Result<(), Trap> {
        match self {
            // Under snapshot reads the decomposed open is deferred to
            // the load itself: `Session::load` routes through the
            // composed `Transaction::read`, which resolves the header,
            // sandwiches the data load, and can serve old values from
            // the version chain. Opening here as well would only burn
            // the abort-free `snapshot_clean` path (a decomposed open's
            // separate load cannot be sandwich-verified).
            Session::Stm(tx) if tx.snapshot_reads() => Ok(()),
            Session::Stm(tx) => tx.open_for_read(obj).map_err(Trap::from),
            Session::Tpl(tx) => tx.acquire(obj).map_err(|_| Trap::Conflict),
            Session::Idle => Err(Trap::Error("barrier outside atomic region".into())),
            _ => Ok(()),
        }
    }

    pub(crate) fn open_for_update(&mut self, obj: ObjRef) -> Result<(), Trap> {
        match self {
            Session::Stm(tx) => tx.open_for_update(obj).map_err(Trap::from),
            Session::Tpl(tx) => tx.acquire(obj).map_err(|_| Trap::Conflict),
            Session::Idle => Err(Trap::Error("barrier outside atomic region".into())),
            _ => Ok(()),
        }
    }

    pub(crate) fn log_for_undo(&mut self, obj: ObjRef, field: usize) -> Result<(), Trap> {
        match self {
            Session::Stm(tx) => {
                tx.log_for_undo(obj, field);
                Ok(())
            }
            Session::Tpl(tx) => {
                tx.log_undo(obj, field);
                Ok(())
            }
            Session::Idle => Err(Trap::Error("barrier outside atomic region".into())),
            _ => Ok(()),
        }
    }

    pub(crate) fn load(&mut self, heap: &Heap, obj: ObjRef, field: usize) -> Result<Word, Trap> {
        match self {
            Session::Buffered(tx) => tx.read(obj, field).map_err(Trap::from),
            // Snapshot mode: a bare `heap.load` after the decomposed
            // open would miss the seqlock sandwich and the version
            // chain — the open logged the header, but nothing ties the
            // data this load observes to `read_ver`. Route through the
            // composed read, which is where snapshot mode's guarantees
            // (and its abort-free chain service) live.
            Session::Stm(tx) if tx.snapshot_reads() => tx.read(obj, field).map_err(Trap::from),
            _ => Ok(heap.load(obj, field)),
        }
    }

    pub(crate) fn store(
        &mut self,
        heap: &Heap,
        obj: ObjRef,
        field: usize,
        value: Word,
    ) -> Result<(), Trap> {
        match self {
            Session::Buffered(tx) => {
                tx.write(obj, field, value);
                Ok(())
            }
            _ => {
                heap.store(obj, field, value);
                Ok(())
            }
        }
    }

    /// Allocates an object (recorded in the transaction's allocation
    /// log under the direct STM).
    pub(crate) fn alloc(&mut self, heap: &Heap, class: omt_heap::ClassId) -> Result<ObjRef, Trap> {
        match self {
            Session::Stm(tx) => tx.alloc(class).map_err(Trap::from),
            _ => heap.alloc(class).map_err(|e| Trap::Error(e.to_string())),
        }
    }

    /// Mid-region validation (direct STM only; others are always
    /// consistent).
    pub(crate) fn validate(&mut self) -> Result<(), Trap> {
        match self {
            Session::Stm(tx) => tx.validate().map_err(Trap::from),
            _ => Ok(()),
        }
    }

    /// Commits the region. On `Err` the session has been rolled back.
    pub(crate) fn commit(&mut self) -> Result<(), Trap> {
        match std::mem::replace(self, Session::Idle) {
            Session::Idle => Err(Trap::Error("tx_commit outside atomic region".into())),
            Session::SequentialRegion => Ok(()),
            Session::Coarse(guard) => {
                drop(guard);
                Ok(())
            }
            Session::Tpl(tx) => {
                tx.commit();
                Ok(())
            }
            Session::Buffered(tx) => tx.commit().map_err(Trap::from),
            Session::Stm(tx) => tx.commit().map_err(Trap::from),
        }
    }

    /// Aborts the region (idempotent on idle sessions).
    pub(crate) fn abort(&mut self) {
        match std::mem::replace(self, Session::Idle) {
            Session::Idle | Session::SequentialRegion => {}
            Session::Coarse(guard) => drop(guard),
            Session::Tpl(tx) => tx.abort(),
            Session::Buffered(tx) => drop(tx),
            Session::Stm(tx) => tx.abort(),
        }
    }
}

impl fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Session::Idle => "Idle",
            Session::SequentialRegion => "SequentialRegion",
            Session::Coarse(_) => "Coarse",
            Session::Tpl(_) => "Tpl",
            Session::Buffered(_) => "Buffered",
            Session::Stm(_) => "Stm",
        };
        write!(f, "Session::{name}")
    }
}

impl From<TxError> for Trap {
    fn from(e: TxError) -> Trap {
        match e {
            TxError::Conflict(_) => Trap::Conflict,
            TxError::HeapFull => Trap::Error("heap slot table exhausted".into()),
            TxError::DeadlineExceeded => Trap::Error("transaction deadline exceeded".into()),
        }
    }
}

impl From<WConflict> for Trap {
    fn from(_: WConflict) -> Trap {
        Trap::Conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::{ClassDesc, ClassId, FieldDesc, FieldMut};

    fn snapshot_setup(mv_depth: usize) -> (Arc<Heap>, SyncBackend, ClassId) {
        let heap = Arc::new(Heap::new());
        let class =
            heap.define_class(ClassDesc::new("Cell", vec![FieldDesc::new("v", FieldMut::Var)]));
        let config = StmConfig { snapshot_reads: true, mv_depth, ..StmConfig::default() };
        let backend = SyncBackend::with_stm_config(BackendKind::DirectStm, heap.clone(), config);
        (heap, backend, class)
    }

    /// Regression: a decomposed `OpenForRead` + bare load under
    /// snapshot mode used to bypass the transaction entirely
    /// (`Session::load` fell through to `heap.load`), observing a
    /// concurrent writer's committed value even though the session's
    /// snapshot predates that commit. With the routing fix the load
    /// goes through the composed snapshot read, which serves the
    /// pre-commit value from the version chain — no abort, no torn
    /// snapshot.
    #[test]
    fn decomposed_txil_load_is_served_at_the_session_snapshot() {
        let (heap, backend, class) = snapshot_setup(1);
        let stm = backend.as_stm().expect("direct STM backend");
        let obj = stm.atomically(|tx| {
            let obj = tx.alloc(class)?;
            tx.write(obj, 0, Word::from_scalar(1))?;
            Ok(obj)
        });

        // Reader session begins (pinning its snapshot) *before* the
        // writer publishes the new value.
        let mut session = Session::begin(&backend);
        stm.atomically(|tx| tx.write(obj, 0, Word::from_scalar(2)));

        // Decomposed TxIL sequence the optimizer emits: OpenForRead
        // then a bare data load.
        session.open_for_read(obj).expect("open");
        let value = session.load(&heap, obj, 0).expect("load");
        assert_eq!(
            value.as_scalar(),
            Some(1),
            "decomposed load must observe the session snapshot, not the later commit"
        );
        session.commit().expect("read-only session commits abort-free");

        let stats = stm.stats();
        assert!(stats.mv_read_hits >= 1, "old value must come from the version chain");
        assert_eq!(stats.readonly_aborts, 0);
        assert_eq!(stats.aborts_invalid, 0);
    }

    /// The same race at `mv_depth = 0` (no chains): the routed load
    /// must still be snapshot-consistent — here via timestamp
    /// extension, which moves the whole snapshot past the writer's
    /// commit and returns the *new* value. Either way, never the
    /// torn mix the bare `heap.load` produced.
    #[test]
    fn decomposed_txil_load_stays_consistent_without_chains() {
        let (heap, backend, class) = snapshot_setup(0);
        let stm = backend.as_stm().expect("direct STM backend");
        let obj = stm.atomically(|tx| {
            let obj = tx.alloc(class)?;
            tx.write(obj, 0, Word::from_scalar(1))?;
            Ok(obj)
        });

        let mut session = Session::begin(&backend);
        stm.atomically(|tx| tx.write(obj, 0, Word::from_scalar(2)));

        session.open_for_read(obj).expect("open");
        let value = session.load(&heap, obj, 0).expect("load");
        assert_eq!(value.as_scalar(), Some(2), "extension advances the snapshot past the commit");
        session.commit().expect("commit");
        assert!(stm.stats().ts_extensions >= 1);
    }
}
