//! `txil` — compile and run TxIL programs from the command line.
//!
//! ```text
//! txil run  <file.txil> [--entry main] [--arg N]... [--level O4] [--backend stm] [--stats]
//! txil dump <file.txil> [--level O4] [--function name]
//! txil check <file.txil>
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use omt_heap::{Heap, Word};
use omt_opt::{compile, OptLevel};
use omt_vm::{BackendKind, SyncBackend, Vm};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage("missing command");
    };
    match command.as_str() {
        "run" => run(&args[1..]),
        "dump" => dump(&args[1..]),
        "check" => check(&args[1..]),
        "--help" | "-h" | "help" => {
            let _ = usage("");
            ExitCode::SUCCESS
        }
        other => usage(&format!("unknown command `{other}`")),
    }
}

struct Options {
    file: String,
    entry: String,
    args: Vec<i64>,
    level: OptLevel,
    backend: BackendKind,
    stats: bool,
    function: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        file: String::new(),
        entry: "main".to_owned(),
        args: Vec::new(),
        level: OptLevel::O4,
        backend: BackendKind::DirectStm,
        stats: false,
        function: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value =
            |name: &str| iter.next().cloned().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--entry" => options.entry = value("--entry")?,
            "--arg" => {
                options.args.push(value("--arg")?.parse().map_err(|e| format!("bad --arg: {e}"))?)
            }
            "--level" => options.level = value("--level")?.parse()?,
            "--backend" => options.backend = value("--backend")?.parse()?,
            "--function" => options.function = Some(value("--function")?),
            "--stats" => options.stats = true,
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            file => {
                if !options.file.is_empty() {
                    return Err("multiple input files".to_owned());
                }
                options.file = file.to_owned();
            }
        }
    }
    if options.file.is_empty() {
        return Err("missing input file".to_owned());
    }
    Ok(options)
}

fn load(file: &str) -> Result<String, String> {
    std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))
}

fn run(args: &[String]) -> ExitCode {
    let options = match parse_options(args) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let source = match load(&options.file) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let (ir, report) = match compile(&source, options.level) {
        Ok(x) => x,
        Err(diags) => return fail(&diags.render(&source)),
    };
    let heap = Arc::new(Heap::new());
    let backend = Arc::new(SyncBackend::new(options.backend, heap.clone()));
    let vm = Vm::new(Arc::new(ir), heap.clone(), backend.clone());
    let words: Vec<Word> = options.args.iter().map(|a| Word::from_scalar(*a)).collect();
    match vm.run(&options.entry, &words) {
        Ok(Some(w)) => println!("{w}"),
        Ok(None) => {}
        Err(e) => return fail(&e.to_string()),
    }
    if options.stats {
        eprintln!("optimizer: {report}");
        eprintln!("dynamic:   {}", vm.counters());
        if let Some(stm) = backend.as_stm() {
            eprintln!("stm:       {}", stm.stats());
        }
        eprintln!("heap:      {}", heap.stats().snapshot());
    }
    ExitCode::SUCCESS
}

fn dump(args: &[String]) -> ExitCode {
    let options = match parse_options(args) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let source = match load(&options.file) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let (ir, report) = match compile(&source, options.level) {
        Ok(x) => x,
        Err(diags) => return fail(&diags.render(&source)),
    };
    match &options.function {
        Some(name) => match ir.function_id(name) {
            Some(id) => print!("{}", ir.function(id)),
            None => return fail(&format!("no function `{name}`")),
        },
        None => print!("{ir}"),
    }
    eprintln!("; {report}");
    ExitCode::SUCCESS
}

fn check(args: &[String]) -> ExitCode {
    let options = match parse_options(args) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let source = match load(&options.file) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    match omt_lang::parse(&source).and_then(|p| omt_lang::check(&p)) {
        Ok(info) => {
            println!(
                "ok: {} class(es), {} function(s)",
                info.classes.classes.len(),
                info.functions.sigs.len()
            );
            ExitCode::SUCCESS
        }
        Err(diags) => fail(&diags.render(&source)),
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("{message}");
    ExitCode::FAILURE
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage:\n  txil run   <file.txil> [--entry main] [--arg N]... [--level O0..O4] \
         [--backend sequential|coarse|2pl|wstm|stm] [--stats]\n  txil dump  <file.txil> \
         [--level O0..O4] [--function name]\n  txil check <file.txil>"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
