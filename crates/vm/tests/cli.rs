//! Integration tests for the `txil` command-line driver.

use std::process::Command;

fn txil() -> Command {
    Command::new(env!("CARGO_BIN_EXE_txil"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("omt-cli-{name}-{}.txil", std::process::id()));
    std::fs::write(&path, contents).expect("write temp program");
    path
}

const PROGRAM: &str = "
    class Counter { var hits: int; }
    fn main(n: int) -> int {
        let c = new Counter();
        let i = 0;
        while i < n {
            atomic { c.hits = c.hits + 1; }
            i = i + 1;
        }
        return c.hits;
    }
";

#[test]
fn run_executes_and_prints_the_result() {
    let path = write_temp("run", PROGRAM);
    let out = txil()
        .args(["run"])
        .arg(&path)
        .args(["--arg", "41", "--level", "O3"])
        .output()
        .expect("spawn txil");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "41");
}

#[test]
fn run_with_stats_reports_pipeline_and_counters() {
    let path = write_temp("stats", PROGRAM);
    let out = txil()
        .args(["run"])
        .arg(&path)
        .args(["--arg", "5", "--stats", "--backend", "stm"])
        .output()
        .expect("spawn txil");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("optimizer:"), "{stderr}");
    assert!(stderr.contains("stm:"), "{stderr}");
}

#[test]
fn every_backend_produces_the_same_answer() {
    let path = write_temp("backends", PROGRAM);
    for backend in ["sequential", "coarse", "2pl", "wstm", "stm"] {
        let out = txil()
            .args(["run"])
            .arg(&path)
            .args(["--arg", "17", "--backend", backend])
            .output()
            .expect("spawn txil");
        assert!(out.status.success(), "backend {backend}");
        assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "17", "backend {backend}");
    }
}

#[test]
fn dump_prints_ir_with_barriers() {
    let path = write_temp("dump", PROGRAM);
    let out = txil()
        .args(["dump"])
        .arg(&path)
        .args(["--level", "O0", "--function", "main"])
        .output()
        .expect("spawn txil");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tx_begin"), "{stdout}");
    assert!(stdout.contains("open_for_update"), "{stdout}");
}

#[test]
fn check_reports_summary_and_rejects_bad_programs() {
    let good = write_temp("check-good", PROGRAM);
    let out = txil().args(["check"]).arg(&good).output().expect("spawn txil");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 class(es), 1 function(s)"));

    let bad = write_temp("check-bad", "fn f() -> int { }");
    let out = txil().args(["check"]).arg(&bad).output().expect("spawn txil");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("may finish without returning"));
}

#[test]
fn bad_flags_exit_with_usage() {
    let out = txil().args(["run", "--bogus"]).output().expect("spawn txil");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = txil().args(["frobnicate"]).output().expect("spawn txil");
    assert!(!out.status.success());
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = txil().args(["run", "/nonexistent/nope.txil"]).output().expect("spawn txil");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
