//! IR validity checks, run after lowering and after every optimization
//! pass in tests.

use std::fmt;

use crate::cfg::Cfg;
use crate::ir::*;

/// An IR invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the violation occurred.
    pub function: String,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in `{}`: {}", self.function, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies structural invariants of a whole program.
///
/// # Errors
///
/// Returns the first violation found: out-of-range registers, blocks,
/// classes, fields or functions; barriers outside transactional blocks;
/// transaction markers inside clones.
pub fn verify(program: &IrProgram) -> Result<(), VerifyError> {
    for function in &program.functions {
        verify_function(program, function)?;
    }
    Ok(())
}

fn err(function: &IrFunction, message: impl Into<String>) -> VerifyError {
    VerifyError { function: function.name.clone(), message: message.into() }
}

fn verify_function(program: &IrProgram, function: &IrFunction) -> Result<(), VerifyError> {
    if function.blocks.is_empty() {
        return Err(err(function, "function has no blocks"));
    }
    if function.param_count > function.reg_count {
        return Err(err(function, "more parameters than registers"));
    }

    let check_reg = |r: Reg| -> Result<(), VerifyError> {
        if r.0 >= function.reg_count {
            Err(err(function, format!("register {r} out of range")))
        } else {
            Ok(())
        }
    };
    let check_block = |b: BlockId| -> Result<(), VerifyError> {
        if b.index() >= function.blocks.len() {
            Err(err(function, format!("block {b} out of range")))
        } else {
            Ok(())
        }
    };
    let check_field = |class: IrClassId, field: u32| -> Result<(), VerifyError> {
        let Some(c) = program.classes.get(class.0 as usize) else {
            return Err(err(function, format!("class c{} out of range", class.0)));
        };
        if field as usize >= c.fields.len() {
            return Err(err(function, format!("field #{field} out of range for `{}`", c.name)));
        }
        Ok(())
    };

    for (id, block) in function.iter_blocks() {
        for inst in &block.insts {
            if let Some(d) = inst.def() {
                check_reg(d)?;
            }
            let mut use_err = Ok(());
            inst.uses(|r| {
                if use_err.is_ok() {
                    use_err = check_reg(r);
                }
            });
            use_err?;

            match inst {
                Inst::New { class, args, .. } => {
                    let Some(c) = program.classes.get(class.0 as usize) else {
                        return Err(err(function, format!("class c{} out of range", class.0)));
                    };
                    if !args.is_empty() && args.len() != c.fields.len() {
                        return Err(err(
                            function,
                            format!(
                                "new `{}` with {} of {} initializers",
                                c.name,
                                args.len(),
                                c.fields.len()
                            ),
                        ));
                    }
                }
                Inst::GetField { class, field, .. }
                | Inst::SetField { class, field, .. }
                | Inst::LogForUndo { class, field, .. } => check_field(*class, *field)?,
                Inst::Call { func, .. } if program.functions.get(func.0 as usize).is_none() => {
                    return Err(err(function, format!("call to unknown f{}", func.0)));
                }
                Inst::TxBegin | Inst::TxCommit if function.is_tx_clone => {
                    return Err(err(function, "transaction marker inside a tx clone"));
                }
                _ => {}
            }

            if inst.is_barrier() && !block.in_tx {
                return Err(err(
                    function,
                    format!("barrier `{inst}` outside a transactional block ({id})"),
                ));
            }
        }
        match &block.term {
            Terminator::Jump(b) => check_block(*b)?,
            Terminator::Branch { cond, then_b, else_b } => {
                check_reg(*cond)?;
                check_block(*then_b)?;
                check_block(*else_b)?;
            }
            Terminator::Return(Some(r)) => check_reg(*r)?,
            Terminator::Return(None) => {}
        }
    }

    // Every reachable block must be well-formed under the CFG (this
    // computes successor structures and would catch inconsistencies).
    let _ = Cfg::new(function);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_program() -> IrProgram {
        let mut program = IrProgram::default();
        program.classes.push(IrClass {
            name: "C".into(),
            fields: vec![IrField { name: "x".into(), immutable: false, is_ref: false }],
        });
        program.add_function(IrFunction {
            name: "f".into(),
            param_count: 1,
            reg_count: 2,
            blocks: vec![Block {
                insts: vec![Inst::GetField {
                    dst: Reg(1),
                    obj: Reg(0),
                    class: IrClassId(0),
                    field: 0,
                }],
                term: Terminator::Return(Some(Reg(1))),
                in_tx: false,
            }],
            is_tx_clone: false,
        });
        program
    }

    #[test]
    fn valid_program_verifies() {
        verify(&trivial_program()).unwrap();
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut p = trivial_program();
        p.functions[0].blocks[0].insts.push(Inst::Copy { dst: Reg(9), src: Reg(0) });
        assert!(verify(&p).unwrap_err().message.contains("out of range"));
    }

    #[test]
    fn barrier_outside_tx_rejected() {
        let mut p = trivial_program();
        p.functions[0].blocks[0].insts.push(Inst::OpenForRead { obj: Reg(0) });
        assert!(verify(&p).unwrap_err().message.contains("outside a transactional block"));
    }

    #[test]
    fn marker_in_clone_rejected() {
        let mut p = trivial_program();
        p.functions[0].is_tx_clone = true;
        for b in &mut p.functions[0].blocks {
            b.in_tx = true;
        }
        p.functions[0].blocks[0].insts.push(Inst::TxBegin);
        assert!(verify(&p).unwrap_err().message.contains("marker inside a tx clone"));
    }

    #[test]
    fn bad_field_index_rejected() {
        let mut p = trivial_program();
        p.functions[0].blocks[0].insts.push(Inst::SetField {
            obj: Reg(0),
            class: IrClassId(0),
            field: 7,
            src: Reg(1),
        });
        assert!(verify(&p).unwrap_err().message.contains("field #7 out of range"));
    }

    #[test]
    fn bad_jump_target_rejected() {
        let mut p = trivial_program();
        p.functions[0].blocks[0].term = Terminator::Jump(BlockId(9));
        assert!(verify(&p).unwrap_err().message.contains("block bb9 out of range"));
    }
}
