//! Lowering: typed TxIL AST → IR.
//!
//! Every source function is lowered **twice**, mirroring Bartok's
//! transactional method clones:
//!
//! - the *normal* version, where `atomic { ... }` produces
//!   `TxBegin`/`TxCommit` markers around blocks flagged `in_tx`, and
//!   calls inside the region target transactional clones;
//! - the *transactional clone* (`name$tx`), whose every block is
//!   `in_tx`, used for calls made from inside transactions (nested
//!   `atomic` flattens).
//!
//! No STM barriers are emitted here: barrier insertion is itself a
//! compiler pass (`omt_opt::insert_barriers`), so that the whole
//! pipeline — insertion, then optimization — is visible in the IR.

use std::collections::HashMap;

use omt_lang::ast::{self, BinOp, ExprKind, StmtKind, UnOp};
use omt_lang::{Type, TypeInfo};

use crate::ir::*;

/// Lowers a type-checked program to IR.
///
/// # Panics
///
/// Panics if `info` does not belong to `program` (lowering relies on
/// the type checker's guarantees).
///
/// # Examples
///
/// ```
/// use omt_lang::{parse, check};
/// use omt_ir::lower;
///
/// let program = parse("fn f(x: int) -> int { return x + 1; }")?;
/// let info = check(&program)?;
/// let ir = lower(&program, &info);
/// assert!(ir.function_id("f").is_some());
/// assert!(ir.function_id("f$tx").is_some());
/// # Ok::<(), omt_lang::Diagnostics>(())
/// ```
pub fn lower(program: &ast::Program, info: &TypeInfo) -> IrProgram {
    let mut ir = IrProgram::default();
    for class in &info.classes.classes {
        ir.classes.push(IrClass {
            name: class.name.clone(),
            fields: class
                .fields
                .iter()
                .map(|f| IrField {
                    name: f.name.clone(),
                    immutable: f.immutable,
                    is_ref: matches!(f.ty, Type::Class(_)),
                })
                .collect(),
        });
    }

    // Precompute ids: source function i → normal 2i, clone 2i+1.
    let mut fn_ids: HashMap<String, (FuncId, FuncId)> = HashMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        fn_ids.insert(f.name.clone(), (FuncId(2 * i as u32), FuncId(2 * i as u32 + 1)));
    }

    for decl in &program.functions {
        let normal = FnLowerer::new(program, info, &fn_ids, decl, false).run();
        let clone = FnLowerer::new(program, info, &fn_ids, decl, true).run();
        ir.add_function(normal);
        ir.add_function(clone);
    }
    ir
}

struct PendingBlock {
    insts: Vec<Inst>,
    term: Option<Terminator>,
    in_tx: bool,
}

struct FnLowerer<'a> {
    info: &'a TypeInfo,
    fn_ids: &'a HashMap<String, (FuncId, FuncId)>,
    decl: &'a ast::FnDecl,
    is_clone: bool,
    blocks: Vec<PendingBlock>,
    current: usize,
    reg_count: u32,
    scopes: Vec<HashMap<String, Reg>>,
    in_tx: bool,
}

impl<'a> FnLowerer<'a> {
    fn new(
        _program: &'a ast::Program,
        info: &'a TypeInfo,
        fn_ids: &'a HashMap<String, (FuncId, FuncId)>,
        decl: &'a ast::FnDecl,
        is_clone: bool,
    ) -> FnLowerer<'a> {
        FnLowerer {
            info,
            fn_ids,
            decl,
            is_clone,
            blocks: vec![PendingBlock { insts: Vec::new(), term: None, in_tx: is_clone }],
            current: 0,
            reg_count: 0,
            scopes: vec![HashMap::new()],
            in_tx: is_clone,
        }
    }

    fn run(mut self) -> IrFunction {
        for param in &self.decl.params {
            let reg = self.fresh();
            self.scopes[0].insert(param.name.clone(), reg);
        }
        let body = &self.decl.body;
        self.lower_block(body);
        if self.blocks[self.current].term.is_none() {
            self.terminate(Terminator::Return(None));
        }
        // Terminate any dangling blocks (e.g. after a `return` in both
        // branches, the join block is unreachable but must be valid).
        for b in &mut self.blocks {
            if b.term.is_none() {
                b.term = Some(Terminator::Return(None));
            }
        }
        IrFunction {
            name: if self.is_clone {
                format!("{}$tx", self.decl.name)
            } else {
                self.decl.name.clone()
            },
            param_count: self.decl.params.len() as u32,
            reg_count: self.reg_count,
            blocks: self
                .blocks
                .into_iter()
                .map(|b| Block {
                    insts: b.insts,
                    term: b.term.expect("all blocks terminated"),
                    in_tx: b.in_tx,
                })
                .collect(),
            is_tx_clone: self.is_clone,
        }
    }

    fn fresh(&mut self) -> Reg {
        let reg = Reg(self.reg_count);
        self.reg_count += 1;
        reg
    }

    fn emit(&mut self, inst: Inst) {
        assert!(self.blocks[self.current].term.is_none(), "emitting into terminated block");
        self.blocks[self.current].insts.push(inst);
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(PendingBlock { insts: Vec::new(), term: None, in_tx: self.in_tx });
        id
    }

    fn terminate(&mut self, term: Terminator) {
        let block = &mut self.blocks[self.current];
        if block.term.is_none() {
            block.term = Some(term);
        }
    }

    fn switch_to(&mut self, block: BlockId) {
        self.current = block.index();
    }

    fn lookup(&self, name: &str) -> Reg {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name).copied())
            .expect("type checker verified variable exists")
    }

    fn lower_block(&mut self, block: &ast::Block) {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.lower_stmt(stmt);
            if self.blocks[self.current].term.is_some() {
                break; // unreachable code after return
            }
        }
        self.scopes.pop();
    }

    fn lower_stmt(&mut self, stmt: &ast::Stmt) {
        match &stmt.kind {
            StmtKind::Let { name, init, .. } => {
                let value = self.lower_expr(init).expect("let initializer has a value");
                let reg = self.fresh();
                self.emit(Inst::Copy { dst: reg, src: value });
                self.scopes.last_mut().expect("scope").insert(name.clone(), reg);
            }
            StmtKind::Assign { target, value } => match &target.kind {
                ExprKind::Var(name) => {
                    let src = self.lower_expr(value).expect("assignment rhs has a value");
                    let dst = self.lookup(name);
                    self.emit(Inst::Copy { dst, src });
                }
                ExprKind::Field { obj, field } => {
                    let obj_reg = self.lower_expr(obj).expect("object expression");
                    let src = self.lower_expr(value).expect("assignment rhs has a value");
                    let (class, field) = self.field_ref(obj, field);
                    self.emit(Inst::SetField { obj: obj_reg, class, field, src });
                }
                _ => unreachable!("parser restricts assignment targets"),
            },
            StmtKind::If { cond, then_blk, else_blk } => {
                let cond_reg = self.lower_expr(cond).expect("condition");
                let then_b = self.new_block();
                let else_b = self.new_block();
                let join = self.new_block();
                self.terminate(Terminator::Branch { cond: cond_reg, then_b, else_b });
                self.switch_to(then_b);
                self.lower_block(then_blk);
                self.terminate(Terminator::Jump(join));
                self.switch_to(else_b);
                if let Some(e) = else_blk {
                    self.lower_block(e);
                }
                self.terminate(Terminator::Jump(join));
                self.switch_to(join);
            }
            StmtKind::While { cond, body } => {
                let header = self.new_block();
                self.terminate(Terminator::Jump(header));
                self.switch_to(header);
                let cond_reg = self.lower_expr(cond).expect("condition");
                let body_b = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Branch { cond: cond_reg, then_b: body_b, else_b: exit });
                self.switch_to(body_b);
                self.lower_block(body);
                self.terminate(Terminator::Jump(header));
                self.switch_to(exit);
            }
            StmtKind::Atomic { body } => {
                if self.in_tx {
                    // Nested or clone context: flatten.
                    self.lower_block(body);
                } else {
                    self.emit(Inst::TxBegin);
                    self.in_tx = true;
                    let region = self.new_block();
                    self.terminate(Terminator::Jump(region));
                    self.switch_to(region);
                    self.lower_block(body);
                    self.in_tx = false;
                    let after = self.new_block();
                    self.terminate(Terminator::Jump(after));
                    self.switch_to(after);
                    self.emit(Inst::TxCommit);
                }
            }
            StmtKind::Return { value } => {
                let reg = value.as_ref().map(|v| self.lower_expr(v).expect("return value"));
                self.terminate(Terminator::Return(reg));
            }
            StmtKind::Expr { expr } => {
                self.lower_expr(expr);
            }
        }
    }

    fn field_ref(&self, obj: &ast::Expr, field: &str) -> (IrClassId, u32) {
        let Type::Class(class_index) = self.info.type_of(obj.id) else {
            unreachable!("type checker verified field access object");
        };
        let field_index = self
            .info
            .classes
            .class(class_index)
            .field_index(field)
            .expect("type checker verified field");
        (IrClassId(class_index as u32), field_index as u32)
    }

    /// Lowers an expression; `None` for unit-typed calls.
    fn lower_expr(&mut self, expr: &ast::Expr) -> Option<Reg> {
        match &expr.kind {
            ExprKind::Int(v) => {
                let dst = self.fresh();
                self.emit(Inst::Const { dst, value: *v });
                Some(dst)
            }
            ExprKind::Bool(b) => {
                let dst = self.fresh();
                self.emit(Inst::Const { dst, value: i64::from(*b) });
                Some(dst)
            }
            ExprKind::Null => {
                let dst = self.fresh();
                self.emit(Inst::Null { dst });
                Some(dst)
            }
            ExprKind::Var(name) => Some(self.lookup(name)),
            ExprKind::Field { obj, field } => {
                let obj_reg = self.lower_expr(obj).expect("object expression");
                let (class, field) = self.field_ref(obj, field);
                let dst = self.fresh();
                self.emit(Inst::GetField { dst, obj: obj_reg, class, field });
                Some(dst)
            }
            ExprKind::Unary { op, expr: inner } => {
                let src = self.lower_expr(inner).expect("unary operand");
                let dst = self.fresh();
                let op = match op {
                    UnOp::Neg => UnOpKind::Neg,
                    UnOp::Not => UnOpKind::Not,
                };
                self.emit(Inst::UnOp { dst, op, src });
                Some(dst)
            }
            ExprKind::Binary { op: BinOp::And, lhs, rhs } => {
                Some(self.lower_short_circuit(lhs, rhs, true))
            }
            ExprKind::Binary { op: BinOp::Or, lhs, rhs } => {
                Some(self.lower_short_circuit(lhs, rhs, false))
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.lower_expr(lhs).expect("binary lhs");
                let r = self.lower_expr(rhs).expect("binary rhs");
                let dst = self.fresh();
                let op = match op {
                    BinOp::Add => BinOpKind::Add,
                    BinOp::Sub => BinOpKind::Sub,
                    BinOp::Mul => BinOpKind::Mul,
                    BinOp::Div => BinOpKind::Div,
                    BinOp::Mod => BinOpKind::Mod,
                    BinOp::Eq => BinOpKind::Eq,
                    BinOp::Ne => BinOpKind::Ne,
                    BinOp::Lt => BinOpKind::Lt,
                    BinOp::Le => BinOpKind::Le,
                    BinOp::Gt => BinOpKind::Gt,
                    BinOp::Ge => BinOpKind::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                self.emit(Inst::BinOp { dst, op, lhs: l, rhs: r });
                Some(dst)
            }
            ExprKind::Call { callee, args } => {
                let arg_regs: Vec<Reg> =
                    args.iter().map(|a| self.lower_expr(a).expect("call argument")).collect();
                let (normal, tx) = self.fn_ids[callee.as_str()];
                let func = if self.in_tx { tx } else { normal };
                let has_value =
                    self.info.try_type_of(expr.id).is_some() && self.sig_has_ret(callee);
                let dst = if has_value { Some(self.fresh()) } else { None };
                self.emit(Inst::Call { dst, func, args: arg_regs });
                dst
            }
            ExprKind::New { class, args } => {
                let arg_regs: Vec<Reg> =
                    args.iter().map(|a| self.lower_expr(a).expect("initializer")).collect();
                let class_index =
                    self.info.classes.lookup(class).expect("type checker verified class");
                let dst = self.fresh();
                self.emit(Inst::New { dst, class: IrClassId(class_index as u32), args: arg_regs });
                Some(dst)
            }
        }
    }

    fn sig_has_ret(&self, callee: &str) -> bool {
        self.info
            .functions
            .lookup(callee)
            .map(|i| self.info.functions.sigs[i].ret.is_some())
            .unwrap_or(false)
    }

    /// Lowers `lhs && rhs` (and=true) or `lhs || rhs` (and=false) with
    /// short-circuit control flow.
    fn lower_short_circuit(&mut self, lhs: &ast::Expr, rhs: &ast::Expr, and: bool) -> Reg {
        let result = self.fresh();
        let l = self.lower_expr(lhs).expect("lhs");
        let rhs_b = self.new_block();
        let short_b = self.new_block();
        let join = self.new_block();
        if and {
            self.terminate(Terminator::Branch { cond: l, then_b: rhs_b, else_b: short_b });
        } else {
            self.terminate(Terminator::Branch { cond: l, then_b: short_b, else_b: rhs_b });
        }
        self.switch_to(rhs_b);
        let r = self.lower_expr(rhs).expect("rhs");
        self.emit(Inst::Copy { dst: result, src: r });
        self.terminate(Terminator::Jump(join));
        self.switch_to(short_b);
        self.emit(Inst::Const { dst: result, value: i64::from(!and) });
        self.terminate(Terminator::Jump(join));
        self.switch_to(join);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_lang::{check, parse};

    fn lower_src(src: &str) -> IrProgram {
        let program = parse(src).expect("parse");
        let info = check(&program).expect("check");
        lower(&program, &info)
    }

    #[test]
    fn every_function_gets_a_tx_clone() {
        let ir = lower_src("fn a() {} fn b() {}");
        assert_eq!(ir.functions.len(), 4);
        assert!(ir.function_id("a").is_some());
        assert!(ir.function_id("a$tx").is_some());
        assert!(ir.function(ir.function_id("a$tx").unwrap()).is_tx_clone);
    }

    #[test]
    fn atomic_produces_markers_and_tx_blocks() {
        let ir = lower_src(
            "class C { var x: int; }
             fn f(c: C) { atomic { c.x = 1; } }",
        );
        let f = ir.function(ir.function_id("f").unwrap());
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TxBegin)), 1);
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TxCommit)), 1);
        assert!(f.blocks.iter().any(|b| b.in_tx), "atomic body blocks are flagged");
        // No barriers at lowering time: insertion is a pass.
        assert_eq!(f.barrier_counts(), (0, 0, 0));
    }

    #[test]
    fn clones_have_no_markers_and_all_tx_blocks() {
        let ir = lower_src(
            "class C { var x: int; }
             fn f(c: C) { atomic { c.x = 1; } }",
        );
        let f = ir.function(ir.function_id("f$tx").unwrap());
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TxBegin | Inst::TxCommit)), 0);
        assert!(f.blocks.iter().all(|b| b.in_tx));
    }

    #[test]
    fn calls_inside_atomic_target_clones() {
        let ir = lower_src(
            "fn helper() {}
             fn f() { helper(); atomic { helper(); } }",
        );
        let f = ir.function(ir.function_id("f").unwrap());
        let helper = ir.function_id("helper").unwrap();
        let helper_tx = ir.function_id("helper$tx").unwrap();
        let mut called = Vec::new();
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Call { func, .. } = inst {
                    called.push(*func);
                }
            }
        }
        assert!(called.contains(&helper));
        assert!(called.contains(&helper_tx));
    }

    #[test]
    fn while_produces_a_loop() {
        let ir = lower_src("fn f(n: int) { let i = 0; while i < n { i = i + 1; } }");
        let f = ir.function(ir.function_id("f").unwrap());
        let cfg = crate::cfg::Cfg::new(f);
        let doms = crate::cfg::Dominators::new(&cfg);
        let loops = crate::cfg::natural_loops(&cfg, &doms);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn short_circuit_and_skips_rhs() {
        let ir = lower_src("fn f(a: bool, b: bool) -> bool { return a && b; }");
        let f = ir.function(ir.function_id("f").unwrap());
        // The entry must branch before evaluating b.
        assert!(matches!(f.blocks[0].term, Terminator::Branch { .. }));
    }

    #[test]
    fn field_access_carries_class_metadata() {
        let ir = lower_src(
            "class P { val x: int; var y: int; }
             fn f(p: P) -> int { return p.x + p.y; }",
        );
        let f = ir.function(ir.function_id("f").unwrap());
        let gets: Vec<_> = f.blocks[0]
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::GetField { class, field, .. } => Some((*class, *field)),
                _ => None,
            })
            .collect();
        assert_eq!(gets, vec![(IrClassId(0), 0), (IrClassId(0), 1)]);
        assert!(ir.class(IrClassId(0)).fields[0].immutable);
        assert!(!ir.class(IrClassId(0)).fields[1].immutable);
    }

    #[test]
    fn returns_in_both_branches_leave_valid_ir() {
        let ir = lower_src("fn f(c: bool) -> int { if c { return 1; } else { return 2; } }");
        let f = ir.function(ir.function_id("f").unwrap());
        for b in &f.blocks {
            let _ = &b.term; // all blocks terminated (would have panicked in lowering)
        }
    }

    #[test]
    fn printer_round_trips_key_syntax() {
        let ir = lower_src(
            "class C { var x: int; }
             fn f(c: C) { atomic { c.x = c.x + 1; } }",
        );
        let text = ir.to_string();
        assert!(text.contains("tx_begin"));
        assert!(text.contains("tx_commit"));
        assert!(text.contains("getfield"));
        assert!(text.contains("setfield"));
        assert!(text.contains("[tx]"));
        assert!(text.contains("f$tx"));
    }
}
