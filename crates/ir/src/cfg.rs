//! CFG analyses: predecessors, reverse postorder, dominators, natural
//! loops, and preheader insertion — the machinery the optimization
//! passes in `omt-opt` are built on.

use std::collections::HashSet;

use crate::ir::{Block, BlockId, IrFunction, Terminator};

/// Precomputed CFG structure for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Predecessors per block.
    pub preds: Vec<Vec<BlockId>>,
    /// Successors per block.
    pub succs: Vec<Vec<BlockId>>,
    /// Reachable blocks in reverse postorder (entry first).
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Computes the CFG of `function`.
    pub fn new(function: &IrFunction) -> Cfg {
        let n = function.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (id, block) in function.iter_blocks() {
            for s in block.term.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }

        // Iterative postorder DFS from the entry.
        let mut visited = vec![false; n];
        let mut postorder = Vec::new();
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        visited[0] = true;
        while let Some((block, child)) = stack.pop() {
            if child < succs[block.index()].len() {
                stack.push((block, child + 1));
                let next = succs[block.index()][child];
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                postorder.push(block);
            }
        }
        postorder.reverse();
        let rpo = postorder;
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg { preds, succs, rpo, rpo_index }
    }

    /// True if the block is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.rpo_index[block.index()] != usize::MAX
    }
}

/// Immediate dominators, computed with the Cooper–Harvey–Kennedy
/// iterative algorithm.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator of `b` (`None` for the entry and
    /// unreachable blocks).
    pub idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for `cfg`.
    pub fn new(cfg: &Cfg) -> Dominators {
        let n = cfg.preds.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0)); // temporarily self, per the algorithm

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self::intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom[0] = None; // the entry has no immediate dominator
        Dominators { idom, rpo_index: cfg.rpo_index.clone() }
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[a.index()] == usize::MAX || self.rpo_index[b.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

/// A natural loop: all back edges to one header, merged.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// All blocks in the loop (including the header).
    pub body: HashSet<BlockId>,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
}

impl NaturalLoop {
    /// True if `block` belongs to this loop.
    pub fn contains(&self, block: BlockId) -> bool {
        self.body.contains(&block)
    }
}

/// Finds all natural loops (one per header; multiple back edges merge).
pub fn natural_loops(cfg: &Cfg, doms: &Dominators) -> Vec<NaturalLoop> {
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for &b in &cfg.rpo {
        for &succ in &cfg.succs[b.index()] {
            if doms.dominates(succ, b) {
                // b -> succ is a back edge; succ is a header.
                let entry = loops.iter_mut().find(|l| l.header == succ);
                let l = match entry {
                    Some(l) => l,
                    None => {
                        loops.push(NaturalLoop {
                            header: succ,
                            body: HashSet::from([succ]),
                            latches: Vec::new(),
                        });
                        loops.last_mut().expect("just pushed")
                    }
                };
                l.latches.push(b);
                // Walk predecessors from the latch up to the header.
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if l.body.insert(x) {
                        for &p in &cfg.preds[x.index()] {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    loops
}

/// Inserts a preheader block for `lp`: every edge into the header from
/// outside the loop is redirected through a fresh block that falls
/// through to the header. Returns the new block's id.
///
/// Invalidates previously computed [`Cfg`]/[`Dominators`]; recompute
/// after calling.
pub fn insert_preheader(function: &mut IrFunction, lp: &NaturalLoop) -> BlockId {
    let header = lp.header;
    let preheader = BlockId(function.blocks.len() as u32);
    let in_tx = function.block(header).in_tx;
    function.blocks.push(Block { insts: Vec::new(), term: Terminator::Jump(header), in_tx });

    let n = function.blocks.len() - 1; // every block except the new one
    for index in 0..n {
        let id = BlockId(index as u32);
        if lp.contains(id) {
            continue; // latches keep their back edge
        }
        let term = &mut function.blocks[index].term;
        let redirect = |b: &mut BlockId| {
            if *b == header {
                *b = preheader;
            }
        };
        match term {
            Terminator::Jump(b) => redirect(b),
            Terminator::Branch { then_b, else_b, .. } => {
                redirect(then_b);
                redirect(else_b);
            }
            Terminator::Return(_) => {}
        }
    }
    preheader
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Inst, Reg};

    /// Builds the diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> IrFunction {
        let block = |term: Terminator| Block { insts: Vec::new(), term, in_tx: false };
        IrFunction {
            name: "d".into(),
            param_count: 0,
            reg_count: 1,
            blocks: vec![
                block(Terminator::Branch { cond: Reg(0), then_b: BlockId(1), else_b: BlockId(2) }),
                block(Terminator::Jump(BlockId(3))),
                block(Terminator::Jump(BlockId(3))),
                block(Terminator::Return(None)),
            ],
            is_tx_clone: false,
        }
    }

    /// Builds a while loop: 0(entry) -> 1(header) -> {2(body), 3(exit)};
    /// 2 -> 1.
    fn while_loop() -> IrFunction {
        let block = |term: Terminator| Block { insts: Vec::new(), term, in_tx: false };
        IrFunction {
            name: "w".into(),
            param_count: 0,
            reg_count: 1,
            blocks: vec![
                block(Terminator::Jump(BlockId(1))),
                block(Terminator::Branch { cond: Reg(0), then_b: BlockId(2), else_b: BlockId(3) }),
                block(Terminator::Jump(BlockId(1))),
                block(Terminator::Return(None)),
            ],
            is_tx_clone: false,
        }
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let doms = Dominators::new(&cfg);
        assert_eq!(doms.idom[1], Some(BlockId(0)));
        assert_eq!(doms.idom[2], Some(BlockId(0)));
        assert_eq!(doms.idom[3], Some(BlockId(0)), "join dominated by the fork, not a branch");
        assert!(doms.dominates(BlockId(0), BlockId(3)));
        assert!(!doms.dominates(BlockId(1), BlockId(3)));
        assert!(doms.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(cfg.rpo.len(), 4);
        assert!(cfg.is_reachable(BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut f = diamond();
        f.blocks.push(Block { insts: Vec::new(), term: Terminator::Return(None), in_tx: false });
        let cfg = Cfg::new(&f);
        assert!(!cfg.is_reachable(BlockId(4)));
    }

    #[test]
    fn while_loop_detected() {
        let f = while_loop();
        let cfg = Cfg::new(&f);
        let doms = Dominators::new(&cfg);
        let loops = natural_loops(&cfg, &doms);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert!(l.contains(BlockId(1)) && l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)) && !l.contains(BlockId(3)));
    }

    #[test]
    fn preheader_redirects_entry_edges_only() {
        let mut f = while_loop();
        let cfg = Cfg::new(&f);
        let doms = Dominators::new(&cfg);
        let loops = natural_loops(&cfg, &doms);
        let pre = insert_preheader(&mut f, &loops[0]);
        assert_eq!(pre, BlockId(4));
        // Entry now jumps to the preheader...
        assert_eq!(f.blocks[0].term, Terminator::Jump(pre));
        // ...the latch still jumps straight to the header...
        assert_eq!(f.blocks[2].term, Terminator::Jump(BlockId(1)));
        // ...and the preheader falls into the header.
        assert_eq!(f.blocks[4].term, Terminator::Jump(BlockId(1)));
        // The loop is still found after recomputation.
        let cfg = Cfg::new(&f);
        let doms = Dominators::new(&cfg);
        let loops = natural_loops(&cfg, &doms);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId(1));
    }

    #[test]
    fn nested_loops_have_two_headers() {
        let block = |term: Terminator| Block { insts: Vec::new(), term, in_tx: false };
        // 0 -> 1(outer hdr) -> 2(inner hdr) -> 3(inner latch -> 2 | 4)
        // 4(outer latch -> 1 | 5 exit)
        let f = IrFunction {
            name: "n".into(),
            param_count: 0,
            reg_count: 1,
            blocks: vec![
                block(Terminator::Jump(BlockId(1))),
                block(Terminator::Jump(BlockId(2))),
                block(Terminator::Jump(BlockId(3))),
                block(Terminator::Branch { cond: Reg(0), then_b: BlockId(2), else_b: BlockId(4) }),
                block(Terminator::Branch { cond: Reg(0), then_b: BlockId(1), else_b: BlockId(5) }),
                block(Terminator::Return(None)),
            ],
            is_tx_clone: false,
        };
        let cfg = Cfg::new(&f);
        let doms = Dominators::new(&cfg);
        let mut loops = natural_loops(&cfg, &doms);
        loops.sort_by_key(|l| l.header);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].header, BlockId(1));
        assert!(loops[0].body.len() > loops[1].body.len(), "outer contains inner");
        assert!(loops[0].contains(BlockId(2)));
    }

    #[test]
    fn barrier_counting_helper() {
        let mut f = diamond();
        f.blocks[1].insts.push(Inst::OpenForRead { obj: Reg(0) });
        f.blocks[2].insts.push(Inst::OpenForUpdate { obj: Reg(0) });
        assert_eq!(f.barrier_counts(), (1, 1, 0));
    }
}
