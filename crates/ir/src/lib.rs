//! # omt-ir — CFG IR with decomposed STM operations
//!
//! The central idea of *"Optimizing memory transactions"* (PLDI 2006)
//! is to expose STM barriers to the compiler as ordinary intermediate
//! operations. This crate defines that IR and its supporting analyses:
//!
//! - [`IrProgram`] / [`IrFunction`] / [`Inst`]: a register-based CFG IR
//!   whose instruction set includes `OpenForRead`, `OpenForUpdate`,
//!   `LogForUndo`, raw field accesses, and atomic-region markers;
//! - [`lower`]: AST → IR, generating a transactional clone (`f$tx`) of
//!   every function, as Bartok does for methods callable inside
//!   transactions;
//! - [`Cfg`] / [`Dominators`] / [`natural_loops`] /
//!   [`insert_preheader`]: the CFG machinery the optimization passes in
//!   `omt-opt` are built on;
//! - [`verify`]: structural invariants, run between passes in tests.
//!
//! # Examples
//!
//! ```
//! use omt_lang::{parse, check};
//! use omt_ir::{lower, verify};
//!
//! let program = parse("
//!     class C { var x: int; }
//!     fn bump(c: C) { atomic { c.x = c.x + 1; } }
//! ")?;
//! let info = check(&program)?;
//! let ir = lower(&program, &info);
//! verify(&ir)?;
//! println!("{ir}"); // textual IR
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cfg;
mod ir;
mod lower;
mod verify;

pub use cfg::{insert_preheader, natural_loops, Cfg, Dominators, NaturalLoop};
pub use ir::{
    BinOpKind, Block, BlockId, FuncId, Inst, IrClass, IrClassId, IrField, IrFunction, IrProgram,
    Reg, Terminator, UnOpKind,
};
pub use lower::lower;
pub use verify::{verify, VerifyError};
