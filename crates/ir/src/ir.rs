//! IR definitions: programs, functions, blocks, instructions.
//!
//! The IR is a conventional register-based CFG with one addition — the
//! paper's *decomposed STM operations* are first-class instructions:
//!
//! - [`Inst::OpenForRead`] / [`Inst::OpenForUpdate`] / [`Inst::LogForUndo`]
//!   are ordinary instructions that optimization passes may merge, move,
//!   or delete;
//! - [`Inst::GetField`] / [`Inst::SetField`] are *raw* data accesses —
//!   inside a transactional region their soundness depends on the opens
//!   the optimizer leaves in place;
//! - [`Inst::TxBegin`] / [`Inst::TxCommit`] delimit atomic regions in
//!   non-transactional functions (transactional *clones* are marked
//!   whole-function instead, mirroring Bartok's transactional method
//!   clones).

use std::collections::HashMap;
use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A basic-block id within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index into [`IrFunction::blocks`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A function id within an [`IrProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// A class id within an [`IrProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IrClassId(pub u32);

/// One field of an IR class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrField {
    /// Field name (for printing and heap registration).
    pub name: String,
    /// True for `val` fields: reads need no barrier (O4 elision).
    pub immutable: bool,
    /// True for class-typed fields: zero-arg `new` initializes them to
    /// null instead of scalar zero, and the GC traces them.
    pub is_ref: bool,
}

/// An IR class: name plus field metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrClass {
    /// Class name.
    pub name: String,
    /// Fields in layout order.
    pub fields: Vec<IrField>,
}

/// Binary operators over heap words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOpKind {
    /// Wrapping 63-bit addition.
    Add,
    /// Wrapping 63-bit subtraction.
    Sub,
    /// Wrapping 63-bit multiplication.
    Mul,
    /// Integer division (traps on zero divisor).
    Div,
    /// Remainder (traps on zero divisor).
    Mod,
    /// Equality (bitwise: scalars by value, references by identity).
    Eq,
    /// Inequality.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOpKind {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = const value`
    Const {
        /// Destination.
        dst: Reg,
        /// 63-bit scalar value.
        value: i64,
    },
    /// `dst = null`
    Null {
        /// Destination.
        dst: Reg,
    },
    /// `dst = src`
    Copy {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// `dst = op src`
    UnOp {
        /// Destination.
        dst: Reg,
        /// Operator.
        op: UnOpKind,
        /// Operand.
        src: Reg,
    },
    /// `dst = lhs op rhs`
    BinOp {
        /// Destination.
        dst: Reg,
        /// Operator.
        op: BinOpKind,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = new Class(args...)` — empty `args` zero-initializes.
    New {
        /// Destination.
        dst: Reg,
        /// Class to instantiate.
        class: IrClassId,
        /// Field initializers (all fields, or none).
        args: Vec<Reg>,
    },
    /// `dst = obj.field` — raw data load (no barrier).
    GetField {
        /// Destination.
        dst: Reg,
        /// Object register.
        obj: Reg,
        /// Static class (for field metadata).
        class: IrClassId,
        /// Field index.
        field: u32,
    },
    /// `obj.field = src` — raw data store (no barrier).
    SetField {
        /// Object register.
        obj: Reg,
        /// Static class.
        class: IrClassId,
        /// Field index.
        field: u32,
        /// Value to store.
        src: Reg,
    },
    /// `open_for_read obj` — no-op on null.
    OpenForRead {
        /// Object register.
        obj: Reg,
    },
    /// `open_for_update obj` — no-op on null.
    OpenForUpdate {
        /// Object register.
        obj: Reg,
    },
    /// `log_for_undo obj.field` — no-op on null.
    LogForUndo {
        /// Object register.
        obj: Reg,
        /// Static class.
        class: IrClassId,
        /// Field index.
        field: u32,
    },
    /// `dst = call func(args...)`
    Call {
        /// Destination (`None` for unit functions).
        dst: Option<Reg>,
        /// Callee.
        func: FuncId,
        /// Arguments.
        args: Vec<Reg>,
    },
    /// Start of an atomic region (only in non-clone functions).
    TxBegin,
    /// End of an atomic region (only in non-clone functions).
    TxCommit,
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Null { dst }
            | Inst::Copy { dst, .. }
            | Inst::UnOp { dst, .. }
            | Inst::BinOp { dst, .. }
            | Inst::New { dst, .. }
            | Inst::GetField { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Registers this instruction reads.
    pub fn uses(&self, mut f: impl FnMut(Reg)) {
        match self {
            Inst::Const { .. } | Inst::Null { .. } | Inst::TxBegin | Inst::TxCommit => {}
            Inst::Copy { src, .. } | Inst::UnOp { src, .. } => f(*src),
            Inst::BinOp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::New { args, .. } => args.iter().copied().for_each(f),
            Inst::GetField { obj, .. }
            | Inst::OpenForRead { obj }
            | Inst::OpenForUpdate { obj }
            | Inst::LogForUndo { obj, .. } => f(*obj),
            Inst::SetField { obj, src, .. } => {
                f(*obj);
                f(*src);
            }
            Inst::Call { args, .. } => args.iter().copied().for_each(f),
        }
    }

    /// True for the three decomposed STM operations.
    pub fn is_barrier(&self) -> bool {
        matches!(
            self,
            Inst::OpenForRead { .. } | Inst::OpenForUpdate { .. } | Inst::LogForUndo { .. }
        )
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a boolean register.
    Branch {
        /// Condition register (scalar 0 = false).
        cond: Reg,
        /// Target when true.
        then_b: BlockId,
        /// Target when false.
        else_b: BlockId,
    },
    /// Function return.
    Return(Option<Reg>),
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_b, else_b, .. } => vec![*then_b, *else_b],
            Terminator::Return(_) => vec![],
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
    /// True if this block executes inside a transaction (atomic region
    /// or transactional clone) — the domain of barrier insertion.
    pub in_tx: bool,
}

/// An IR function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrFunction {
    /// Function name (clones are suffixed `$tx`).
    pub name: String,
    /// Number of parameters; they occupy registers `0..param_count`.
    pub param_count: u32,
    /// Total virtual registers.
    pub reg_count: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// True for transactional clones: every block is `in_tx` and the
    /// function contains no `TxBegin`/`TxCommit` markers.
    pub is_tx_clone: bool,
}

impl IrFunction {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The block with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to the block with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates `(BlockId, &Block)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Counts instructions matching `pred` across all blocks.
    pub fn count_insts(&self, pred: impl Fn(&Inst) -> bool) -> usize {
        self.blocks.iter().map(|b| b.insts.iter().filter(|i| pred(i)).count()).sum()
    }

    /// Static barrier-count summary `(open_read, open_update, log_undo)`.
    pub fn barrier_counts(&self) -> (usize, usize, usize) {
        (
            self.count_insts(|i| matches!(i, Inst::OpenForRead { .. })),
            self.count_insts(|i| matches!(i, Inst::OpenForUpdate { .. })),
            self.count_insts(|i| matches!(i, Inst::LogForUndo { .. })),
        )
    }
}

/// A whole IR program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IrProgram {
    /// Classes (indexed by [`IrClassId`]).
    pub classes: Vec<IrClass>,
    /// Functions (indexed by [`FuncId`]).
    pub functions: Vec<IrFunction>,
    pub(crate) by_name: HashMap<String, FuncId>,
}

impl IrProgram {
    /// Looks a function up by name (`foo` or `foo$tx`).
    pub fn function_id(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// The function with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &IrFunction {
        &self.functions[id.0 as usize]
    }

    /// The class with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn class(&self, id: IrClassId) -> &IrClass {
        &self.classes[id.0 as usize]
    }

    /// Registers a function, returning its id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn add_function(&mut self, function: IrFunction) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        let previous = self.by_name.insert(function.name.clone(), id);
        assert!(previous.is_none(), "duplicate IR function `{}`", function.name);
        self.functions.push(function);
        id
    }

    /// Total static barrier counts `(open_read, open_update, log_undo)`
    /// across all functions.
    pub fn barrier_counts(&self) -> (usize, usize, usize) {
        let mut totals = (0, 0, 0);
        for f in &self.functions {
            let (r, u, n) = f.barrier_counts();
            totals.0 += r;
            totals.1 += u;
            totals.2 += n;
        }
        totals
    }
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "{dst} = const {value}"),
            Inst::Null { dst } => write!(f, "{dst} = null"),
            Inst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Inst::UnOp { dst, op, src } => write!(f, "{dst} = {op:?} {src}"),
            Inst::BinOp { dst, op, lhs, rhs } => write!(f, "{dst} = {op:?} {lhs}, {rhs}"),
            Inst::New { dst, class, args } => {
                write!(f, "{dst} = new c{}(", class.0)?;
                fmt_regs(f, args)?;
                write!(f, ")")
            }
            Inst::GetField { dst, obj, class, field } => {
                write!(f, "{dst} = getfield {obj}.c{}#{field}", class.0)
            }
            Inst::SetField { obj, class, field, src } => {
                write!(f, "setfield {obj}.c{}#{field} = {src}", class.0)
            }
            Inst::OpenForRead { obj } => write!(f, "open_for_read {obj}"),
            Inst::OpenForUpdate { obj } => write!(f, "open_for_update {obj}"),
            Inst::LogForUndo { obj, class, field } => {
                write!(f, "log_for_undo {obj}.c{}#{field}", class.0)
            }
            Inst::Call { dst, func, args } => {
                if let Some(dst) = dst {
                    write!(f, "{dst} = ")?;
                }
                write!(f, "call f{}(", func.0)?;
                fmt_regs(f, args)?;
                write!(f, ")")
            }
            Inst::TxBegin => write!(f, "tx_begin"),
            Inst::TxCommit => write!(f, "tx_commit"),
        }
    }
}

fn fmt_regs(f: &mut fmt::Formatter<'_>, regs: &[Reg]) -> fmt::Result {
    for (i, r) in regs.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{r}")?;
    }
    Ok(())
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jump {b}"),
            Terminator::Branch { cond, then_b, else_b } => {
                write!(f, "branch {cond} ? {then_b} : {else_b}")
            }
            Terminator::Return(Some(r)) => write!(f, "return {r}"),
            Terminator::Return(None) => write!(f, "return"),
        }
    }
}

impl fmt::Display for IrFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {}({} params, {} regs){}:",
            self.name,
            self.param_count,
            self.reg_count,
            if self.is_tx_clone { " [tx-clone]" } else { "" }
        )?;
        for (id, block) in self.iter_blocks() {
            writeln!(f, "{id}{}:", if block.in_tx { " [tx]" } else { "" })?;
            for inst in &block.insts {
                writeln!(f, "    {inst}")?;
            }
            writeln!(f, "    {}", block.term)?;
        }
        Ok(())
    }
}

impl fmt::Display for IrProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, class) in self.classes.iter().enumerate() {
            write!(f, "class c{i} {} {{ ", class.name)?;
            for field in &class.fields {
                write!(f, "{}{} ", if field.immutable { "val " } else { "" }, field.name)?;
            }
            writeln!(f, "}}")?;
        }
        for (i, function) in self.functions.iter().enumerate() {
            writeln!(f, "; f{i}")?;
            write!(f, "{function}")?;
        }
        Ok(())
    }
}
