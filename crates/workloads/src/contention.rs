//! The contention dial: an array of transactional counters where the
//! fraction of "hot" cells controls the conflict probability
//! (experiment E7's x-axis).

use std::sync::Arc;
use std::time::{Duration, Instant};

use omt_heap::{ClassDesc, ObjRef, Word};
use omt_stm::{Stm, StmStatsSnapshot};
use omt_util::rng::StdRng;

const VALUE: usize = 0;

/// Concurrent counter cells: atomic per-cell increment plus a
/// consistent audit. Implemented by the STM-backed [`CounterArray`] and
/// its lock-based competitors ([`crate::CoarseCounterArray`],
/// [`crate::StripedCounterArray`]), so scalability sweeps can drive all
/// three through one interface.
pub trait CounterCells: Sync {
    /// Atomically increments cell `index`.
    fn increment(&self, index: usize);
    /// Consistent sum of all cells.
    fn total(&self) -> i64;
    /// Number of cells.
    fn len(&self) -> usize;
    /// True if there are no cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An array of transactional counters.
#[derive(Debug)]
pub struct CounterArray {
    stm: Arc<Stm>,
    cells: Vec<ObjRef>,
}

impl CounterArray {
    /// Creates `n` zeroed counters.
    ///
    /// # Panics
    ///
    /// Panics if the heap is full.
    pub fn new(stm: Arc<Stm>, n: usize) -> CounterArray {
        let class = stm.heap().define_class(ClassDesc::with_var_fields("Counter", &["value"]));
        let cells = (0..n).map(|_| stm.heap().alloc(class).expect("heap full")).collect();
        CounterArray { stm, cells }
    }

    /// The STM the counters run on.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Transactionally increments cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn increment(&self, index: usize) {
        let cell = self.cells[index];
        self.stm.atomically(|tx| {
            let v = tx.read(cell, VALUE)?.as_scalar().unwrap_or(0);
            tx.write(cell, VALUE, Word::from_scalar(v + 1))
        });
    }

    /// Sum of all counters (read-only transaction).
    pub fn total(&self) -> i64 {
        self.stm.atomically(|tx| {
            let mut sum = 0;
            for cell in &self.cells {
                sum += tx.read(*cell, VALUE)?.as_scalar().unwrap_or(0);
            }
            Ok(sum)
        })
    }
}

impl CounterCells for CounterArray {
    fn increment(&self, index: usize) {
        CounterArray::increment(self, index);
    }

    fn total(&self) -> i64 {
        CounterArray::total(self)
    }

    fn len(&self) -> usize {
        CounterArray::len(self)
    }
}

/// Runs `ops_per_thread` uniform-random increments per thread and
/// returns the wall-clock duration — the throughput driver shared by
/// every [`CounterCells`] implementation.
pub fn run_counter_throughput(
    cells: &dyn CounterCells,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> Duration {
    let n = cells.len();
    assert!(n > 0, "need at least one cell");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 48611));
                for _ in 0..ops_per_thread {
                    cells.increment(rng.gen_range(0..n));
                }
            });
        }
    });
    start.elapsed()
}

/// Result of a contention sweep point.
#[derive(Debug, Clone, Copy)]
pub struct ContentionOutcome {
    /// Cells each thread was restricted to ("hot set" size).
    pub hot_cells: usize,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Increments performed.
    pub increments: u64,
    /// STM statistics delta over the run.
    pub stats: StmStatsSnapshot,
}

impl ContentionOutcome {
    /// Increments per second.
    pub fn ops_per_second(&self) -> f64 {
        self.increments as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs `increments_per_thread` increments per thread, all restricted
/// to the first `hot_cells` cells. Returns throughput and abort
/// statistics for this point of the sweep.
pub fn run_contention_point(
    counters: &CounterArray,
    threads: usize,
    increments_per_thread: usize,
    hot_cells: usize,
    seed: u64,
) -> ContentionOutcome {
    let hot = hot_cells.clamp(1, counters.len());
    let before = counters.stm().stats();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 31337));
                for _ in 0..increments_per_thread {
                    counters.increment(rng.gen_range(0..hot));
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = counters.stm().stats().delta_since(&before);
    ContentionOutcome {
        hot_cells: hot,
        elapsed,
        increments: (threads * increments_per_thread) as u64,
        stats,
    }
}

/// Result of a contention storm (see [`run_contention_storm`]).
#[derive(Debug, Clone)]
pub struct StormOutcome {
    /// Threads that participated.
    pub threads: usize,
    /// Increments each thread committed (every entry must equal the
    /// requested per-thread count — the zero-livelock check).
    pub per_thread: Vec<u64>,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// STM statistics delta over the storm.
    pub stats: StmStatsSnapshot,
}

impl StormOutcome {
    /// Total committed increments.
    pub fn total(&self) -> u64 {
        self.per_thread.iter().sum()
    }
}

/// The worst case of the contention dial: every thread hammers the
/// *same* cell. Used to demonstrate the livelock-freedom guarantee of
/// the serial-mode fallback — the storm must complete with every
/// thread having committed all its increments, under any
/// contention-management policy.
pub fn run_contention_storm(
    counters: &CounterArray,
    threads: usize,
    increments_per_thread: usize,
) -> StormOutcome {
    let before = counters.stm().stats();
    let start = Instant::now();
    let per_thread = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut committed = 0u64;
                    for _ in 0..increments_per_thread {
                        counters.increment(0);
                        committed += 1;
                    }
                    committed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("storm thread panicked")).collect()
    });
    StormOutcome {
        threads,
        per_thread,
        elapsed: start.elapsed(),
        stats: counters.stm().stats().delta_since(&before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::Heap;

    fn counters(n: usize) -> CounterArray {
        CounterArray::new(Arc::new(Stm::new(Arc::new(Heap::new()))), n)
    }

    #[test]
    fn increments_are_exact() {
        let c = counters(64);
        let outcome = run_contention_point(&c, 4, 1_000, 64, 3);
        assert_eq!(c.total(), 4_000);
        assert_eq!(outcome.increments, 4_000);
        assert_eq!(outcome.stats.commits, 4_000 + 1 /* the total() audit is separate */ - 1);
    }

    #[test]
    fn sweep_points_stay_exact_under_any_contention() {
        // Abort *counts* are scheduling-dependent (near zero on a
        // single-core host), so only exactness is asserted here; the
        // deterministic conflict path is covered below.
        for hot in [256, 1] {
            let c = counters(256);
            let outcome = run_contention_point(&c, 4, 2_000, hot, 5);
            assert_eq!(c.total(), 8_000);
            assert_eq!(outcome.increments, 8_000);
            assert_eq!(outcome.stats.commits, 8_000);
        }
    }

    #[test]
    fn overlapping_increments_conflict_deterministically() -> Result<(), omt_stm::TxError> {
        use omt_heap::Word;
        let c = counters(1);
        let cell = c.cells[0];
        // Interleave two increments by hand: the slower one must abort.
        // `?` instead of unwrap on the transactional accesses: a
        // conflict on this path aborts the transaction cleanly (Drop
        // rolls back) rather than panicking.
        let mut slow = c.stm().begin();
        let v = slow.read(cell, VALUE)?.as_scalar().unwrap_or(0);
        c.increment(0); // a full transaction commits in between
        slow.write(cell, VALUE, Word::from_scalar(v + 1))?;
        assert!(slow.commit().is_err(), "stale read must fail validation");
        assert_eq!(c.total(), 1);
        assert!(c.stm().stats().aborts() >= 1);
        Ok(())
    }

    #[test]
    fn hot_cells_clamped_to_len() {
        let c = counters(4);
        let outcome = run_contention_point(&c, 2, 100, 999, 7);
        assert_eq!(outcome.hot_cells, 4);
        assert_eq!(c.total(), 200);
    }

    #[test]
    fn storm_commits_every_thread() {
        use omt_stm::{CmPolicy, StmConfig};
        let heap = Arc::new(Heap::new());
        let stm = Arc::new(Stm::with_config(
            heap,
            StmConfig {
                cm: CmPolicy::AbortSelf,
                serial_after_aborts: Some(4),
                ..StmConfig::default()
            },
        ));
        let c = CounterArray::new(stm, 1);
        let outcome = run_contention_storm(&c, 4, 500);
        assert_eq!(outcome.per_thread, vec![500u64; 4], "every thread committed everything");
        assert_eq!(outcome.total(), 2_000);
        assert_eq!(c.total(), 2_000);
    }
}
