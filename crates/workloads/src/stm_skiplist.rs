//! A skip-list set over the direct-access STM.
//!
//! Skip lists were the third classic shape in STM evaluations of the
//! period: multi-level towers give short transactional walks (like
//! trees) with simple pointer surgery (like lists).

use std::sync::Arc;

use omt_heap::{ClassDesc, ClassId, FieldDesc, FieldMut, ObjRef, Word};
use omt_stm::{Stm, Transaction, TxResult};

use crate::set::ConcurrentSet;

/// Maximum tower height.
pub const MAX_LEVEL: usize = 8;

const KEY: usize = 0;
const LEVEL: usize = 1;
const NEXT0: usize = 2; // next pointers occupy fields NEXT0..NEXT0+MAX_LEVEL

/// A transactional skip list.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::Heap;
/// use omt_stm::Stm;
/// use omt_workloads::{ConcurrentSet, StmSkipList};
///
/// let sl = StmSkipList::new(Arc::new(Stm::new(Arc::new(Heap::new()))));
/// for k in 0..32 { assert!(sl.insert(k)); }
/// assert_eq!(sl.len(), 32);
/// assert!(sl.remove(17));
/// assert!(!sl.contains(17));
/// ```
#[derive(Debug)]
pub struct StmSkipList {
    stm: Arc<Stm>,
    node_class: ClassId,
    /// Sentinel head with a full-height tower.
    head: ObjRef,
}

impl StmSkipList {
    /// Creates an empty skip list.
    ///
    /// # Panics
    ///
    /// Panics if the heap is full.
    pub fn new(stm: Arc<Stm>) -> StmSkipList {
        let mut fields =
            vec![FieldDesc::new("key", FieldMut::Val), FieldDesc::new("level", FieldMut::Val)];
        for i in 0..MAX_LEVEL {
            fields.push(FieldDesc::new(format!("next{i}"), FieldMut::Var));
        }
        let node_class = stm.heap().define_class(ClassDesc::new("SkipNode", fields));
        let head = stm.heap().alloc(node_class).expect("heap full");
        stm.heap().store(head, LEVEL, Word::from_scalar(MAX_LEVEL as i64));
        StmSkipList { stm, node_class, head }
    }

    /// The STM this skip list runs on.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    fn key_of(&self, tx: &mut Transaction<'_>, node: ObjRef) -> TxResult<i64> {
        Ok(tx.read(node, KEY)?.as_scalar().unwrap_or(i64::MAX))
    }

    /// Finds the predecessors of `key` at every level, plus the node at
    /// level 0 if the key is present.
    fn locate(
        &self,
        tx: &mut Transaction<'_>,
        key: i64,
    ) -> TxResult<([ObjRef; MAX_LEVEL], Option<ObjRef>)> {
        let mut preds = [self.head; MAX_LEVEL];
        let mut node = self.head;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let next = tx.read(node, NEXT0 + level)?.as_ref();
                match next {
                    Some(n) if self.key_of(tx, n)? < key => node = n,
                    _ => break,
                }
            }
            preds[level] = node;
        }
        let candidate = tx.read(node, NEXT0)?.as_ref();
        let found = match candidate {
            Some(c) if self.key_of(tx, c)? == key => Some(c),
            _ => None,
        };
        Ok((preds, found))
    }

    fn random_level() -> usize {
        let mut level = 1;
        let mut rng = omt_util::rng::thread_rng();
        while level < MAX_LEVEL && rng.gen_bool(0.5) {
            level += 1;
        }
        level
    }
}

impl ConcurrentSet for StmSkipList {
    fn insert(&self, key: i64) -> bool {
        let level = Self::random_level();
        self.stm.atomically(|tx| {
            let (preds, found) = self.locate(tx, key)?;
            if found.is_some() {
                return Ok(false);
            }
            let fresh = tx.alloc(self.node_class)?;
            let heap = self.stm.heap();
            heap.store(fresh, KEY, Word::from_scalar(key));
            heap.store(fresh, LEVEL, Word::from_scalar(level as i64));
            for (l, pred) in preds.iter().enumerate().take(level) {
                let succ = tx.read(*pred, NEXT0 + l)?;
                heap.store(fresh, NEXT0 + l, succ); // tx-local init
                tx.write(*pred, NEXT0 + l, Word::from_ref(fresh))?;
            }
            Ok(true)
        })
    }

    fn remove(&self, key: i64) -> bool {
        self.stm.atomically(|tx| {
            let (preds, found) = self.locate(tx, key)?;
            let Some(node) = found else { return Ok(false) };
            let level = tx.read(node, LEVEL)?.as_scalar().unwrap_or(1) as usize;
            for (l, pred) in preds.iter().enumerate().take(level.min(MAX_LEVEL)) {
                // The predecessor at level l may not point at `node` if
                // the tower is shorter there; check before unlinking.
                let succ = tx.read(*pred, NEXT0 + l)?.as_ref();
                if succ == Some(node) {
                    let after = tx.read(node, NEXT0 + l)?;
                    tx.write(*pred, NEXT0 + l, after)?;
                }
            }
            Ok(true)
        })
    }

    fn contains(&self, key: i64) -> bool {
        self.stm.atomically(|tx| Ok(self.locate(tx, key)?.1.is_some()))
    }

    fn len(&self) -> usize {
        self.stm.atomically(|tx| {
            let mut n = 0usize;
            let mut current = tx.read(self.head, NEXT0)?.as_ref();
            while let Some(node) = current {
                n += 1;
                current = tx.read(node, NEXT0)?.as_ref();
            }
            Ok(n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::Heap;

    fn skiplist() -> StmSkipList {
        StmSkipList::new(Arc::new(Stm::new(Arc::new(Heap::new()))))
    }

    #[test]
    fn insert_contains_remove() {
        let sl = skiplist();
        for k in [9, 3, 7, 1, 5] {
            assert!(sl.insert(k));
        }
        assert!(!sl.insert(7));
        assert_eq!(sl.len(), 5);
        for k in [1, 3, 5, 7, 9] {
            assert!(sl.contains(k));
        }
        assert!(!sl.contains(4));
        assert!(sl.remove(7));
        assert!(!sl.remove(7));
        assert_eq!(sl.len(), 4);
    }

    #[test]
    fn level0_order_is_sorted() {
        let sl = skiplist();
        for k in [30, 10, 50, 20, 40] {
            sl.insert(k);
        }
        let heap = sl.stm.heap();
        let mut keys = Vec::new();
        let mut cur = heap.load(sl.head, NEXT0).as_ref();
        while let Some(n) = cur {
            keys.push(heap.load(n, KEY).as_scalar().unwrap());
            cur = heap.load(n, NEXT0).as_ref();
        }
        assert_eq!(keys, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn higher_levels_are_sublists_of_level0() {
        let sl = skiplist();
        for k in 0..100 {
            sl.insert(k);
        }
        let heap = sl.stm.heap();
        let collect = |level: usize| {
            let mut keys = Vec::new();
            let mut cur = heap.load(sl.head, NEXT0 + level).as_ref();
            while let Some(n) = cur {
                keys.push(heap.load(n, KEY).as_scalar().unwrap());
                cur = heap.load(n, NEXT0 + level).as_ref();
            }
            keys
        };
        let level0 = collect(0);
        assert_eq!(level0.len(), 100);
        for level in 1..MAX_LEVEL {
            let keys = collect(level);
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted, "level {level} must stay sorted");
            assert!(keys.iter().all(|k| level0.contains(k)));
        }
    }

    #[test]
    fn concurrent_inserts_and_removes_stay_consistent() {
        let sl = Arc::new(skiplist());
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let sl = sl.clone();
                scope.spawn(move || {
                    for i in 0..150 {
                        let k = (t * 41 + i * 13) % 128;
                        if i % 2 == 0 {
                            sl.insert(k);
                        } else {
                            sl.remove(k);
                        }
                    }
                });
            }
        });
        // Level-0 walk must be strictly sorted (no duplicates, no cycles).
        let heap = sl.stm.heap();
        let mut prev = i64::MIN;
        let mut cur = heap.load(sl.head, NEXT0).as_ref();
        let mut steps = 0;
        while let Some(n) = cur {
            let k = heap.load(n, KEY).as_scalar().unwrap();
            assert!(k > prev, "sorted and duplicate-free");
            prev = k;
            cur = heap.load(n, NEXT0).as_ref();
            steps += 1;
            assert!(steps <= 128, "cycle detected");
        }
    }
}
