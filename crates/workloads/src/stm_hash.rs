//! A chained hash-table set over the direct-access STM — the headline
//! scalability workload of the paper's evaluation.
//!
//! With enough buckets, transactions touch disjoint chains and the STM
//! should scale like fine-grained locking; with few buckets it degrades
//! gracefully via conflicts.

use std::sync::Arc;

use omt_heap::{ClassDesc, ClassId, FieldDesc, FieldMut, ObjRef, Word};
use omt_stm::{Stm, Transaction, TxResult};

use crate::set::ConcurrentSet;

const BUCKET_HEAD: usize = 0;
const KEY: usize = 0;
const NEXT: usize = 1;

/// A transactional chained hash set.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::Heap;
/// use omt_stm::Stm;
/// use omt_workloads::{ConcurrentSet, StmHashSet};
///
/// let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
/// let set = StmHashSet::new(stm, 64);
/// assert!(set.insert(7));
/// assert!(set.contains(7));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug)]
pub struct StmHashSet {
    stm: Arc<Stm>,
    node_class: ClassId,
    /// One single-field head object per bucket (fixed after creation).
    buckets: Vec<ObjRef>,
}

impl StmHashSet {
    /// Creates a hash set with `buckets` chains.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or the heap is full.
    pub fn new(stm: Arc<Stm>, buckets: usize) -> StmHashSet {
        assert!(buckets > 0, "need at least one bucket");
        let bucket_class = stm.heap().define_class(ClassDesc::new(
            "HashBucket",
            vec![FieldDesc::new("head", FieldMut::Var)],
        ));
        let node_class = stm.heap().define_class(ClassDesc::new(
            "HashNode",
            vec![FieldDesc::new("key", FieldMut::Val), FieldDesc::new("next", FieldMut::Var)],
        ));
        let buckets =
            (0..buckets).map(|_| stm.heap().alloc(bucket_class).expect("heap full")).collect();
        StmHashSet { stm, node_class, buckets }
    }

    /// The STM this set runs on.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket(&self, key: i64) -> ObjRef {
        self.buckets[key.rem_euclid(self.buckets.len() as i64) as usize]
    }

    /// Walks the chain; returns `(prev, node-with-key)` where `prev` is
    /// the bucket head or the preceding node.
    fn locate(
        &self,
        tx: &mut Transaction<'_>,
        key: i64,
    ) -> TxResult<(ObjRef, usize, Option<ObjRef>)> {
        let bucket = self.bucket(key);
        let mut prev = bucket;
        let mut prev_field = BUCKET_HEAD;
        let mut current = tx.read(bucket, BUCKET_HEAD)?.as_ref();
        while let Some(node) = current {
            if tx.read(node, KEY)?.as_scalar() == Some(key) {
                return Ok((prev, prev_field, Some(node)));
            }
            prev = node;
            prev_field = NEXT;
            current = tx.read(node, NEXT)?.as_ref();
        }
        Ok((prev, prev_field, None))
    }
}

impl ConcurrentSet for StmHashSet {
    fn insert(&self, key: i64) -> bool {
        self.stm.atomically(|tx| {
            let (_, _, found) = self.locate(tx, key)?;
            if found.is_some() {
                return Ok(false);
            }
            let bucket = self.bucket(key);
            let first = tx.read(bucket, BUCKET_HEAD)?;
            let fresh = tx.alloc(self.node_class)?;
            // Transaction-local initialization (no barriers needed).
            self.stm.heap().store(fresh, KEY, Word::from_scalar(key));
            self.stm.heap().store(fresh, NEXT, first);
            tx.write(bucket, BUCKET_HEAD, Word::from_ref(fresh))?;
            Ok(true)
        })
    }

    fn remove(&self, key: i64) -> bool {
        self.stm.atomically(|tx| {
            let (prev, prev_field, found) = self.locate(tx, key)?;
            let Some(node) = found else { return Ok(false) };
            let after = tx.read(node, NEXT)?;
            tx.write(prev, prev_field, after)?;
            Ok(true)
        })
    }

    fn contains(&self, key: i64) -> bool {
        self.stm.atomically(|tx| Ok(self.locate(tx, key)?.2.is_some()))
    }

    fn len(&self) -> usize {
        self.stm.atomically(|tx| {
            let mut n = 0usize;
            for bucket in &self.buckets {
                let mut current = tx.read(*bucket, BUCKET_HEAD)?.as_ref();
                while let Some(node) = current {
                    n += 1;
                    current = tx.read(node, NEXT)?.as_ref();
                }
            }
            Ok(n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::{prefill, run_set_workload, SetWorkload};
    use omt_heap::Heap;

    fn set(buckets: usize) -> StmHashSet {
        StmHashSet::new(Arc::new(Stm::new(Arc::new(Heap::new()))), buckets)
    }

    #[test]
    fn basic_operations() {
        let s = set(16);
        assert!(s.insert(1));
        assert!(s.insert(17)); // same bucket as 1 with 16 buckets
        assert!(s.insert(33));
        assert!(!s.insert(17));
        assert_eq!(s.len(), 3);
        assert!(s.remove(17));
        assert!(s.contains(1) && s.contains(33) && !s.contains(17));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn negative_keys_hash_correctly() {
        let s = set(8);
        assert!(s.insert(-5));
        assert!(s.contains(-5));
        assert!(s.remove(-5));
    }

    #[test]
    fn single_bucket_degenerates_to_a_list() {
        let s = set(1);
        for k in 0..50 {
            assert!(s.insert(k));
        }
        assert_eq!(s.len(), 50);
        for k in 0..50 {
            assert!(s.contains(k));
        }
    }

    #[test]
    fn workload_preserves_sanity_under_threads() {
        let s = set(64);
        let workload = SetWorkload {
            initial_size: 128,
            key_range: 512,
            ops_per_thread: 2_000,
            ..SetWorkload::default()
        };
        prefill(&s, &workload);
        assert_eq!(s.len(), 128);
        let outcome = run_set_workload(&s, &workload, 4);
        assert_eq!(outcome.total_ops, 8_000);
        // Set size must stay within the key range.
        assert!(s.len() <= 512);
        // And the STM must have committed every operation.
        assert!(s.stm().stats().commits >= 8_000);
    }
}
