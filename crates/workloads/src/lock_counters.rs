//! Lock-based competitors for the counter-array workload: the coarse
//! and fine ends of the locking spectrum the scalability sweeps (E2/E3)
//! compare the STM against.

use omt_util::sync::Mutex;

use crate::contention::CounterCells;

/// Coarse-grained baseline: every increment takes one global lock, so
/// throughput cannot scale past a single thread no matter how disjoint
/// the accesses are.
#[derive(Debug)]
pub struct CoarseCounterArray {
    cells: Mutex<Vec<i64>>,
}

impl CoarseCounterArray {
    /// Creates `n` zeroed counters behind a single mutex.
    pub fn new(n: usize) -> CoarseCounterArray {
        CoarseCounterArray { cells: Mutex::new(vec![0; n]) }
    }
}

impl CounterCells for CoarseCounterArray {
    fn increment(&self, index: usize) {
        self.cells.lock()[index] += 1;
    }

    fn total(&self) -> i64 {
        self.cells.lock().iter().sum()
    }

    fn len(&self) -> usize {
        self.cells.lock().len()
    }
}

/// Fine-grained baseline: one mutex per cell — the hand-crafted
/// best case for this access pattern (single-cell operations never
/// need multi-lock protocols).
#[derive(Debug)]
pub struct StripedCounterArray {
    cells: Vec<Mutex<i64>>,
}

impl StripedCounterArray {
    /// Creates `n` zeroed counters, each behind its own mutex.
    pub fn new(n: usize) -> StripedCounterArray {
        StripedCounterArray { cells: (0..n).map(|_| Mutex::new(0)).collect() }
    }
}

impl CounterCells for StripedCounterArray {
    fn increment(&self, index: usize) {
        *self.cells[index].lock() += 1;
    }

    fn total(&self) -> i64 {
        // Lock everything for a consistent audit (the drivers only
        // audit at quiescence, but the interface promises consistency).
        let guards: Vec<_> = self.cells.iter().map(Mutex::lock).collect();
        guards.iter().map(|g| **g).sum()
    }

    fn len(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::run_counter_throughput;

    #[test]
    fn coarse_counts_exactly() {
        let c = CoarseCounterArray::new(16);
        run_counter_throughput(&c, 4, 1_000, 3);
        assert_eq!(c.total(), 4_000);
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn striped_counts_exactly() {
        let c = StripedCounterArray::new(16);
        run_counter_throughput(&c, 4, 1_000, 5);
        assert_eq!(c.total(), 4_000);
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn stm_counters_drive_through_the_same_trait() {
        use crate::CounterArray;
        use omt_heap::Heap;
        use omt_stm::Stm;
        use std::sync::Arc;

        let c = CounterArray::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 8);
        run_counter_throughput(&c, 2, 500, 7);
        assert_eq!(CounterCells::total(&c), 1_000);
    }
}
