//! A travel-reservation workload in the Vacation tradition: multi-step
//! bookings composed from several transactional structures in **one**
//! transaction — the kind of whole-operation atomicity that motivates
//! transactional memory in the first place.
//!
//! A trip books one flight, one room, and one car. Either all three
//! resources move from their *available* trees to the *booked* trees
//! and the customer's itinerary count rises, or nothing changes at all.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use omt_heap::{ClassDesc, ObjRef, Word};
use omt_stm::{Stm, TxError, TxResult};
use omt_util::rng::StdRng;

use crate::stm_bst::StmBst;

/// The three resource kinds of a trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// A flight seat.
    Flight,
    /// A hotel room.
    Room,
    /// A rental car.
    Car,
}

impl Resource {
    /// All resource kinds.
    pub const ALL: [Resource; 3] = [Resource::Flight, Resource::Room, Resource::Car];

    fn index(self) -> usize {
        match self {
            Resource::Flight => 0,
            Resource::Room => 1,
            Resource::Car => 2,
        }
    }
}

const TRIPS: usize = 0;

/// The reservation system.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::Heap;
/// use omt_stm::Stm;
/// use omt_workloads::TravelSystem;
///
/// let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
/// let travel = TravelSystem::new(stm, 8, 4);
/// assert!(travel.book_trip(0, 3, 3, 3));
/// assert!(!travel.book_trip(1, 3, 0, 0), "flight 3 is taken");
/// assert!(travel.cancel_trip(0, 3, 3, 3));
/// travel.check_invariants();
/// ```
#[derive(Debug)]
pub struct TravelSystem {
    stm: Arc<Stm>,
    available: [StmBst; 3],
    booked: [StmBst; 3],
    customers: Vec<ObjRef>,
    resources_per_kind: usize,
}

impl TravelSystem {
    /// Creates a system with `resources_per_kind` of each resource
    /// (ids `0..resources_per_kind`) and `customers` customers.
    ///
    /// # Panics
    ///
    /// Panics if the heap fills up during construction.
    pub fn new(stm: Arc<Stm>, resources_per_kind: usize, customers: usize) -> TravelSystem {
        let customer_class =
            stm.heap().define_class(ClassDesc::with_var_fields("Customer", &["trips"]));
        let available =
            [StmBst::new(stm.clone()), StmBst::new(stm.clone()), StmBst::new(stm.clone())];
        let booked = [StmBst::new(stm.clone()), StmBst::new(stm.clone()), StmBst::new(stm.clone())];
        for tree in &available {
            for id in 0..resources_per_kind {
                use crate::set::ConcurrentSet;
                tree.insert(id as i64);
            }
        }
        let customers =
            (0..customers).map(|_| stm.heap().alloc(customer_class).expect("heap full")).collect();
        TravelSystem { stm, available, booked, customers, resources_per_kind }
    }

    /// The STM the system runs on.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Number of resources per kind.
    pub fn resources_per_kind(&self) -> usize {
        self.resources_per_kind
    }

    /// Books a whole trip atomically. Returns false (leaving *nothing*
    /// changed) if any leg is unavailable.
    ///
    /// # Panics
    ///
    /// Panics if `customer` is out of range.
    pub fn book_trip(&self, customer: usize, flight: i64, room: i64, car: i64) -> bool {
        let customer = self.customers[customer];
        self.stm.atomically(|tx| {
            let ids = [flight, room, car];
            // Check availability of every leg first: failing later
            // would be correct too (the transaction aborts), but
            // checking first avoids useless ownership acquisition.
            for kind in Resource::ALL {
                if !self.available[kind.index()].contains_in(tx, ids[kind.index()])? {
                    return Ok(false);
                }
            }
            for kind in Resource::ALL {
                let id = ids[kind.index()];
                let moved = self.available[kind.index()].remove_in(tx, id)?
                    && self.booked[kind.index()].insert_in(tx, id)?;
                if !moved {
                    // Cannot happen after the checks above within one
                    // transaction; abort defensively rather than commit
                    // a half-booked trip.
                    return Err(TxError::EXPLICIT);
                }
            }
            let trips = tx.read(customer, TRIPS)?.as_scalar().unwrap_or(0);
            tx.write(customer, TRIPS, Word::from_scalar(trips + 1))?;
            Ok(true)
        })
    }

    /// Cancels a trip atomically (the reverse move). Returns false if
    /// any leg was not actually booked.
    ///
    /// # Panics
    ///
    /// Panics if `customer` is out of range.
    pub fn cancel_trip(&self, customer: usize, flight: i64, room: i64, car: i64) -> bool {
        let customer = self.customers[customer];
        self.stm.atomically(|tx| {
            let ids = [flight, room, car];
            for kind in Resource::ALL {
                if !self.booked[kind.index()].contains_in(tx, ids[kind.index()])? {
                    return Ok(false);
                }
            }
            for kind in Resource::ALL {
                let id = ids[kind.index()];
                if !(self.booked[kind.index()].remove_in(tx, id)?
                    && self.available[kind.index()].insert_in(tx, id)?)
                {
                    return Err(TxError::EXPLICIT);
                }
            }
            let trips = tx.read(customer, TRIPS)?.as_scalar().unwrap_or(0);
            tx.write(customer, TRIPS, Word::from_scalar(trips - 1))?;
            Ok(true)
        })
    }

    /// Total trips currently held by all customers (consistent
    /// read-only transaction).
    pub fn total_trips(&self) -> i64 {
        self.stm.atomically(|tx| {
            let mut sum = 0;
            for c in &self.customers {
                sum += tx.read(*c, TRIPS)?.as_scalar().unwrap_or(0);
            }
            Ok(sum)
        })
    }

    /// Counts `(available, booked)` for one resource kind, atomically.
    ///
    /// Two separate `len()` calls would be two transactions and could
    /// race a booking; one transaction over both trees cannot.
    pub fn census(&self, kind: Resource) -> (usize, usize) {
        self.stm.atomically(|tx| {
            let count = |tree: &StmBst, tx: &mut omt_stm::Transaction<'_>| -> TxResult<usize> {
                let mut n = 0;
                for id in 0..self.resources_per_kind as i64 {
                    if tree.contains_in(tx, id)? {
                        n += 1;
                    }
                }
                Ok(n)
            };
            Ok((count(&self.available[kind.index()], tx)?, count(&self.booked[kind.index()], tx)?))
        })
    }

    /// Asserts every conservation invariant.
    ///
    /// # Panics
    ///
    /// Panics if a resource leaked or was double-booked.
    pub fn check_invariants(&self) {
        let mut total_booked = 0;
        for kind in Resource::ALL {
            let (available, booked) = self.census(kind);
            assert_eq!(
                available + booked,
                self.resources_per_kind,
                "{kind:?}: resources leaked or duplicated"
            );
            total_booked += booked;
        }
        assert_eq!(
            total_booked as i64,
            self.total_trips() * 3,
            "itinerary counts disagree with booked resources"
        );
    }
}

/// Outcome of a timed reservation run.
#[derive(Debug, Clone, Copy)]
pub struct TravelOutcome {
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Booking attempts made.
    pub attempts: u64,
    /// Bookings that succeeded.
    pub booked: u64,
}

impl TravelOutcome {
    /// Attempts per second.
    pub fn attempts_per_second(&self) -> f64 {
        self.attempts as f64 / self.elapsed.as_secs_f64()
    }
}

impl fmt::Display for TravelOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempts ({} booked) in {:.3}s ({:.0}/s)",
            self.attempts,
            self.booked,
            self.elapsed.as_secs_f64(),
            self.attempts_per_second()
        )
    }
}

/// Runs a mixed book/cancel workload on `threads` threads.
pub fn run_travel_workload(
    system: &TravelSystem,
    threads: usize,
    attempts_per_thread: usize,
    seed: u64,
) -> TravelOutcome {
    let n = system.resources_per_kind() as i64;
    let customers = system.customers.len();
    let start = Instant::now();
    let booked: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 6151));
                    let mut owned: Vec<(usize, i64, i64, i64)> = Vec::new();
                    let mut booked = 0u64;
                    for _ in 0..attempts_per_thread {
                        if !owned.is_empty() && rng.gen_bool(0.3) {
                            let (c, f, r, k) = owned.swap_remove(rng.gen_range(0..owned.len()));
                            assert!(system.cancel_trip(c, f, r, k), "owned trip must cancel");
                        } else {
                            let c = rng.gen_range(0..customers);
                            let (f, r, k) =
                                (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(0..n));
                            if system.book_trip(c, f, r, k) {
                                owned.push((c, f, r, k));
                                booked += 1;
                            }
                        }
                    }
                    // Release everything so invariants are easy to read.
                    for (c, f, r, k) in owned {
                        assert!(system.cancel_trip(c, f, r, k));
                    }
                    booked
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).sum()
    });
    TravelOutcome {
        elapsed: start.elapsed(),
        attempts: (threads * attempts_per_thread) as u64,
        booked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::Heap;

    fn system(resources: usize, customers: usize) -> TravelSystem {
        TravelSystem::new(Arc::new(Stm::new(Arc::new(Heap::new()))), resources, customers)
    }

    #[test]
    fn booking_is_all_or_nothing() {
        let travel = system(4, 2);
        assert!(travel.book_trip(0, 1, 1, 1));
        // Flight 1 is taken: the whole second trip must fail, leaving
        // room 2 and car 2 untouched.
        assert!(!travel.book_trip(1, 1, 2, 2));
        let (avail_rooms, booked_rooms) = travel.census(Resource::Room);
        assert_eq!((avail_rooms, booked_rooms), (3, 1));
        travel.check_invariants();
    }

    #[test]
    fn cancel_restores_availability() {
        let travel = system(4, 1);
        assert!(travel.book_trip(0, 2, 3, 0));
        assert!(travel.cancel_trip(0, 2, 3, 0));
        assert!(!travel.cancel_trip(0, 2, 3, 0), "double cancel");
        assert_eq!(travel.total_trips(), 0);
        for kind in Resource::ALL {
            assert_eq!(travel.census(kind), (4, 0));
        }
    }

    #[test]
    fn concurrent_bookings_preserve_invariants() {
        let travel = system(16, 8);
        let outcome = run_travel_workload(&travel, 4, 300, 61);
        assert_eq!(outcome.attempts, 1200);
        travel.check_invariants();
        assert_eq!(travel.total_trips(), 0, "every owned trip was released");
    }

    #[test]
    fn contended_single_resource_books_exactly_once() {
        let travel = Arc::new(system(1, 8));
        let winners: u64 = std::thread::scope(|scope| {
            (0..8)
                .map(|c| {
                    let travel = travel.clone();
                    scope.spawn(move || u64::from(travel.book_trip(c, 0, 0, 0)))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        travel.check_invariants();
        assert_eq!(travel.total_trips(), 1);
    }
}
