//! # omt-workloads — benchmark data structures and drivers
//!
//! The workloads behind the evaluation's scalability experiments:
//! transactional data structures written against the `omt-stm`
//! decomposed API (the way the paper's compiler would emit them —
//! including transaction-local initialization of fresh nodes), their
//! lock-based competitors, and multithreaded drivers.
//!
//! STM structures: [`StmHashSet`], [`StmSortedList`], [`StmBst`],
//! [`StmSkipList`], [`StmBank`], [`CounterArray`], the composite
//! [`TravelSystem`] (multi-structure transactions via the `_in`
//! transaction-composable operations), and the boosted
//! [`BoostedHashMap`] (semantic conflict detection: per-key abstract
//! locks and inverse-operation undo over the word-level STM).
//!
//! Lock-based competitors: [`StripedHashSet`] and [`HandOverHandList`]
//! (fine-grained), [`CoarseStdSet`] and [`RwStdSet`] (coarse),
//! [`LockBank`] (ordered two-lock transfers) vs [`CoarseBank`], and
//! [`StripedCounterArray`] vs [`CoarseCounterArray`] for the counter
//! workload (all three counter implementations drive through
//! [`CounterCells`]).
//!
//! Drivers: [`run_set_workload`], [`run_bank_workload`],
//! [`run_contention_point`], [`run_counter_throughput`].
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use omt_heap::Heap;
//! use omt_stm::Stm;
//! use omt_workloads::{prefill, run_set_workload, SetWorkload, StmHashSet};
//!
//! let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
//! let set = StmHashSet::new(stm, 64);
//! let workload = SetWorkload { ops_per_thread: 1_000, ..Default::default() };
//! prefill(&set, &workload);
//! let outcome = run_set_workload(&set, &workload, 2);
//! assert_eq!(outcome.total_ops, 2_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bank;
mod boosted_hash;
mod contention;
mod heap_lock_hash;
mod lock_counters;
mod lock_sets;
mod set;
mod stm_bst;
mod stm_hash;
mod stm_list;
mod stm_skiplist;
mod travel;

pub use bank::{run_bank_workload, Bank, BankOutcome, CoarseBank, LockBank, StmBank};
pub use boosted_hash::BoostedHashMap;
pub use contention::{
    run_contention_point, run_contention_storm, run_counter_throughput, ContentionOutcome,
    CounterArray, CounterCells, StormOutcome,
};
pub use heap_lock_hash::HeapStripedHashSet;
pub use lock_counters::{CoarseCounterArray, StripedCounterArray};
pub use lock_sets::{CoarseStdSet, HandOverHandList, RwStdSet, StripedHashSet};
pub use set::{
    prefill, run_set_workload, sets_agree, ConcurrentSet, OpMix, SetOutcome, SetWorkload,
};
pub use stm_bst::StmBst;
pub use stm_hash::StmHashSet;
pub use stm_list::StmSortedList;
pub use stm_skiplist::StmSkipList;
pub use travel::{run_travel_workload, Resource, TravelOutcome, TravelSystem};
