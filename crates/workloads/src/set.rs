//! The concurrent-set interface and workload driver.
//!
//! All scalability experiments run the same shape of workload — a mix
//! of lookups, inserts, and removes over integer keys — against
//! implementations synchronized in different ways. This module defines
//! the common trait and the multithreaded driver that measures them.

use std::fmt;
use std::time::{Duration, Instant};

use omt_util::rng::StdRng;

/// A set of 63-bit integers usable from many threads.
pub trait ConcurrentSet: Sync {
    /// Inserts `key`; true if it was not present.
    fn insert(&self, key: i64) -> bool;
    /// Removes `key`; true if it was present.
    fn remove(&self, key: i64) -> bool;
    /// True if `key` is present.
    fn contains(&self, key: i64) -> bool;
    /// Number of elements (may take the structure offline; used only in
    /// tests and validation, never timed).
    fn len(&self) -> usize;
    /// True if the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Operation mix in percent (summing to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percent lookups.
    pub lookup: u32,
    /// Percent inserts.
    pub insert: u32,
    /// Percent removes.
    pub remove: u32,
}

impl OpMix {
    /// The read-dominated mix used by the paper-era hashtable benchmarks.
    pub const READ_HEAVY: OpMix = OpMix { lookup: 90, insert: 5, remove: 5 };
    /// A write-heavy mix.
    pub const WRITE_HEAVY: OpMix = OpMix { lookup: 50, insert: 25, remove: 25 };

    /// Validates that the percentages sum to 100.
    ///
    /// # Panics
    ///
    /// Panics otherwise.
    pub fn validate(&self) {
        assert_eq!(self.lookup + self.insert + self.remove, 100, "operation mix must sum to 100%");
    }
}

impl fmt::Display for OpMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.lookup, self.insert, self.remove)
    }
}

/// A set workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetWorkload {
    /// Elements inserted before timing starts.
    pub initial_size: usize,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: i64,
    /// Operation mix.
    pub mix: OpMix,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for SetWorkload {
    fn default() -> SetWorkload {
        SetWorkload {
            initial_size: 512,
            key_range: 2048,
            mix: OpMix::READ_HEAVY,
            ops_per_thread: 10_000,
            seed: 0x00D1CE,
        }
    }
}

/// Result of one timed run.
#[derive(Debug, Clone, Copy)]
pub struct SetOutcome {
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Total operations completed.
    pub total_ops: u64,
    /// Lookups that found their key.
    pub hits: u64,
}

impl SetOutcome {
    /// Operations per second.
    pub fn ops_per_second(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64()
    }
}

impl fmt::Display for SetOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops in {:.3}s ({:.0} ops/s)",
            self.total_ops,
            self.elapsed.as_secs_f64(),
            self.ops_per_second()
        )
    }
}

/// Fills `set` with `workload.initial_size` distinct keys.
pub fn prefill(set: &dyn ConcurrentSet, workload: &SetWorkload) {
    let mut rng = StdRng::seed_from_u64(workload.seed ^ 0xF17_7ED);
    let mut inserted = 0;
    while inserted < workload.initial_size {
        if set.insert(rng.gen_range(0..workload.key_range)) {
            inserted += 1;
        }
    }
}

/// Runs the workload on `threads` threads and returns throughput.
pub fn run_set_workload(
    set: &dyn ConcurrentSet,
    workload: &SetWorkload,
    threads: usize,
) -> SetOutcome {
    workload.mix.validate();
    assert!(threads >= 1);
    let start = Instant::now();
    let hits: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(workload.seed.wrapping_add(t as u64 * 7919));
                let mut hits = 0u64;
                for _ in 0..workload.ops_per_thread {
                    let key = rng.gen_range(0..workload.key_range);
                    let dice = rng.gen_range(0..100u32);
                    if dice < workload.mix.lookup {
                        if set.contains(key) {
                            hits += 1;
                        }
                    } else if dice < workload.mix.lookup + workload.mix.insert {
                        set.insert(key);
                    } else {
                        set.remove(key);
                    }
                }
                hits
            }));
        }
        // A worker panic means the structure under test corrupted (its
        // own asserts fired); re-raising it here is the report.
        handles.into_iter().map(|h| h.join().expect("worker panicked")).sum()
    });
    let elapsed = start.elapsed();
    SetOutcome { elapsed, total_ops: (threads * workload.ops_per_thread) as u64, hits }
}

/// Cross-checks two set implementations under the same deterministic
/// single-threaded operation sequence (used by tests).
pub fn sets_agree(a: &dyn ConcurrentSet, b: &dyn ConcurrentSet, ops: usize, seed: u64) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..ops {
        let key = rng.gen_range(0..256i64);
        match rng.gen_range(0..3u32) {
            0 => {
                if a.insert(key) != b.insert(key) {
                    return false;
                }
            }
            1 => {
                if a.remove(key) != b.remove(key) {
                    return false;
                }
            }
            _ => {
                if a.contains(key) != b.contains(key) {
                    return false;
                }
            }
        }
    }
    a.len() == b.len()
}
