//! The bank workload: random transfers between accounts with a global
//! conservation invariant — the classic serializability smoke test and
//! the contention knob for experiment E7 (fewer accounts ⇒ more
//! conflicts).

use std::sync::Arc;
use std::time::{Duration, Instant};

use omt_heap::{ClassDesc, ObjRef, Word};
use omt_stm::Stm;
use omt_util::rng::StdRng;
use omt_util::sync::Mutex;

const BALANCE: usize = 0;

/// Accounts that can transfer and audit.
pub trait Bank: Sync {
    /// Atomically moves `amount` from account `from` to account `to`.
    fn transfer(&self, from: usize, to: usize, amount: i64);
    /// Atomically sums all balances.
    fn total(&self) -> i64;
    /// Number of accounts.
    fn accounts(&self) -> usize;
}

/// STM-backed accounts.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::Heap;
/// use omt_stm::Stm;
/// use omt_workloads::{Bank, StmBank};
///
/// let bank = StmBank::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 8, 100);
/// bank.transfer(0, 1, 25);
/// assert_eq!(bank.total(), 800);
/// ```
#[derive(Debug)]
pub struct StmBank {
    stm: Arc<Stm>,
    accounts: Vec<ObjRef>,
}

impl StmBank {
    /// Creates `n` accounts with `initial` balance each.
    ///
    /// # Panics
    ///
    /// Panics if the heap is full.
    pub fn new(stm: Arc<Stm>, n: usize, initial: i64) -> StmBank {
        let class = stm.heap().define_class(ClassDesc::with_var_fields("Account", &["balance"]));
        let accounts = (0..n)
            .map(|_| {
                let a = stm.heap().alloc(class).expect("heap full");
                stm.heap().store(a, BALANCE, Word::from_scalar(initial));
                a
            })
            .collect();
        StmBank { stm, accounts }
    }

    /// The STM this bank runs on.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }
}

impl Bank for StmBank {
    fn transfer(&self, from: usize, to: usize, amount: i64) {
        let (from, to) = (self.accounts[from], self.accounts[to]);
        self.stm.atomically(|tx| {
            let fb = tx.read(from, BALANCE)?.as_scalar().unwrap_or(0);
            let tb = tx.read(to, BALANCE)?.as_scalar().unwrap_or(0);
            tx.write(from, BALANCE, Word::from_scalar(fb - amount))?;
            tx.write(to, BALANCE, Word::from_scalar(tb + amount))?;
            Ok(())
        });
    }

    fn total(&self) -> i64 {
        self.stm.atomically(|tx| {
            let mut sum = 0i64;
            for account in &self.accounts {
                sum += tx.read(*account, BALANCE)?.as_scalar().unwrap_or(0);
            }
            Ok(sum)
        })
    }

    fn accounts(&self) -> usize {
        self.accounts.len()
    }
}

/// Coarse-grained lock-based accounts: one mutex over the whole ledger.
/// Trivially correct and trivially serial — the lower anchor of the
/// scalability comparison.
#[derive(Debug)]
pub struct CoarseBank {
    accounts: Mutex<Vec<i64>>,
}

impl CoarseBank {
    /// Creates `n` accounts with `initial` balance each.
    pub fn new(n: usize, initial: i64) -> CoarseBank {
        CoarseBank { accounts: Mutex::new(vec![initial; n]) }
    }
}

impl Bank for CoarseBank {
    fn transfer(&self, from: usize, to: usize, amount: i64) {
        let mut accounts = self.accounts.lock();
        accounts[from] -= amount;
        accounts[to] += amount;
    }

    fn total(&self) -> i64 {
        self.accounts.lock().iter().sum()
    }

    fn accounts(&self) -> usize {
        self.accounts.lock().len()
    }
}

/// Fine-grained lock-based accounts: one mutex per account, acquired in
/// index order to avoid deadlock — the hand-crafted protocol an expert
/// would write for exactly this access pattern.
#[derive(Debug)]
pub struct LockBank {
    accounts: Vec<Mutex<i64>>,
}

impl LockBank {
    /// Creates `n` accounts with `initial` balance each.
    pub fn new(n: usize, initial: i64) -> LockBank {
        LockBank { accounts: (0..n).map(|_| Mutex::new(initial)).collect() }
    }
}

impl Bank for LockBank {
    fn transfer(&self, from: usize, to: usize, amount: i64) {
        assert!(from != to, "transfer requires distinct accounts");
        // Ordered acquisition prevents deadlock.
        let (first, second) = if from < to { (from, to) } else { (to, from) };
        let mut first_guard = self.accounts[first].lock();
        let mut second_guard = self.accounts[second].lock();
        let (from_guard, to_guard) = if from < to {
            (&mut first_guard, &mut second_guard)
        } else {
            (&mut second_guard, &mut first_guard)
        };
        **from_guard -= amount;
        **to_guard += amount;
    }

    fn total(&self) -> i64 {
        // Lock everything in order for a consistent audit.
        let guards: Vec<_> = self.accounts.iter().map(Mutex::lock).collect();
        guards.iter().map(|g| **g).sum()
    }

    fn accounts(&self) -> usize {
        self.accounts.len()
    }
}

/// Result of a timed bank run.
#[derive(Debug, Clone, Copy)]
pub struct BankOutcome {
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Transfers completed.
    pub transfers: u64,
}

impl BankOutcome {
    /// Transfers per second.
    pub fn transfers_per_second(&self) -> f64 {
        self.transfers as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs `transfers_per_thread` random transfers on each of `threads`
/// threads, optionally mixing in audits every `audit_every` transfers.
pub fn run_bank_workload(
    bank: &dyn Bank,
    threads: usize,
    transfers_per_thread: usize,
    audit_every: Option<usize>,
    seed: u64,
) -> BankOutcome {
    let n = bank.accounts();
    assert!(n >= 2, "need at least two accounts");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 104729));
                for i in 0..transfers_per_thread {
                    let from = rng.gen_range(0..n);
                    let mut to = rng.gen_range(0..n - 1);
                    if to >= from {
                        to += 1;
                    }
                    bank.transfer(from, to, rng.gen_range(1..100i64));
                    if let Some(every) = audit_every {
                        if i % every == 0 {
                            let _ = bank.total();
                        }
                    }
                }
            });
        }
    });
    BankOutcome { elapsed: start.elapsed(), transfers: (threads * transfers_per_thread) as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::Heap;

    #[test]
    fn stm_bank_conserves_money() {
        let bank = StmBank::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 10, 1_000);
        run_bank_workload(&bank, 4, 1_000, Some(100), 11);
        assert_eq!(bank.total(), 10_000);
    }

    #[test]
    fn lock_bank_conserves_money() {
        let bank = LockBank::new(10, 1_000);
        run_bank_workload(&bank, 4, 1_000, Some(100), 13);
        assert_eq!(bank.total(), 10_000);
    }

    #[test]
    fn coarse_bank_conserves_money() {
        let bank = CoarseBank::new(10, 1_000);
        run_bank_workload(&bank, 4, 1_000, Some(100), 13);
        assert_eq!(bank.total(), 10_000);
        assert_eq!(bank.accounts(), 10);
    }

    #[test]
    fn two_account_bank_maximizes_contention_but_stays_correct() {
        let bank = StmBank::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 2, 500);
        run_bank_workload(&bank, 8, 500, None, 17);
        assert_eq!(bank.total(), 1_000);
    }

    #[test]
    fn overlapping_transfers_conflict_deterministically() -> Result<(), omt_stm::TxError> {
        let bank = StmBank::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 2, 500);
        // A hand-rolled transfer that pauses between read and commit
        // while a full transfer commits: it must abort and retry.
        // Transactional reads/writes can conflict, so this path uses `?`
        // instead of unwrapping (a panic here would take down a virtual
        // thread when the scenario runs under the schedule explorer).
        let a = bank.accounts[0];
        let mut stale = bank.stm().begin();
        let balance = stale.read(a, BALANCE)?.as_scalar().unwrap_or(0);
        bank.transfer(0, 1, 100);
        stale.write(a, BALANCE, Word::from_scalar(balance - 1))?;
        assert!(stale.commit().is_err());
        assert_eq!(bank.total(), 1_000);
        Ok(())
    }

    #[test]
    fn stm_audits_see_consistent_totals() {
        // Auditing concurrently with transfers: every audit is a
        // read-only transaction and must observe exactly the invariant.
        let bank = Arc::new(StmBank::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 16, 1_000));
        std::thread::scope(|scope| {
            let b = bank.clone();
            scope.spawn(move || {
                run_bank_workload(&*b, 3, 2_000, None, 23);
            });
            for _ in 0..200 {
                assert_eq!(bank.total(), 16_000, "torn audit");
            }
        });
    }

    #[test]
    #[should_panic(expected = "distinct accounts")]
    fn lock_bank_rejects_self_transfer() {
        let bank = LockBank::new(4, 10);
        bank.transfer(2, 2, 5);
    }
}
