//! A boosted transactional hash map: semantic conflict detection over
//! the word-level STM (DESIGN.md §4.12).
//!
//! The word-level [`StmHashSet`](crate::StmHashSet) aborts transactions
//! whose operations *commute* whenever they rewrite the same bucket
//! words — two inserts of distinct keys into one bucket both CAS the
//! bucket head, so one of them restarts even though either order
//! produces the same set. `BoostedHashMap` recovers that concurrency by
//! boosting (Herlihy & Koskinen; Proust in PAPERS.md):
//!
//! - every operation takes a **per-key abstract lock**
//!   ([`omt_stm::AbstractLockTable`]) held two-phase until the outer
//!   transaction commits or aborts;
//! - the physical mutation runs as a small **immediately-committed
//!   inner transaction** on the same STM, so each step is individually
//!   atomic and opaque at the word level;
//! - effectful operations log an **inverse operation**
//!   (`put` ↔ `delete`) on the outer transaction's abort-handler list,
//!   so a semantic rollback restores the exact pre-state — running
//!   newest-first under the still-held locks, no observer that respects
//!   the locks can see un-undone state.
//!
//! Conflicts now happen at key granularity: operations on distinct keys
//! never contend (given enough lock stripes), whatever buckets they
//! share. Opacity for the *composed* outer transaction holds because
//! the outer transaction reads map state only through lock-guarded
//! operations whose physical reads are word-level snapshots; the
//! word-level fallback (validation of anything the outer transaction
//! touches directly) is unchanged.
//!
//! # Discipline
//!
//! The outer transaction must never open the map's own words — all
//! access goes through the `*_in` operations. Inner transactions use
//! manual [`Stm::begin`], never `atomically` (the outer attempt already
//! holds the serial-mode gate shared; re-entering would deadlock
//! against a queued serial writer).

use std::sync::Arc;

use omt_heap::{ClassDesc, ClassId, FieldDesc, FieldMut, ObjRef, Word};
use omt_stm::{schedpt, AbstractLockTable, Stm, Transaction, TxResult};
use omt_util::sched::yield_point;

use crate::set::ConcurrentSet;

const BUCKET_HEAD: usize = 0;
const KEY: usize = 0;
const VAL: usize = 1;
const NEXT: usize = 2;

/// A boosted transactional hash map from `i64` keys to `i64` values.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::Heap;
/// use omt_stm::Stm;
/// use omt_workloads::BoostedHashMap;
///
/// let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
/// let map = BoostedHashMap::new(stm, 16, 64);
/// assert!(map.put(7, 70));
/// assert_eq!(map.get(7), Some(70));
/// assert_eq!(map.delete(7), Some(70));
/// ```
#[derive(Debug)]
pub struct BoostedHashMap {
    stm: Arc<Stm>,
    locks: Arc<AbstractLockTable>,
    node_class: ClassId,
    /// One single-field head object per bucket (fixed after creation).
    buckets: Arc<[ObjRef]>,
}

/// Runs one physical operation as an immediately-committed inner
/// transaction, retrying word-level conflicts indefinitely (each op
/// touches a handful of words in one chain; some contender always
/// commits, so the retry terminates in practice exactly like any
/// word-level workload). Non-retryable errors (heap exhaustion)
/// propagate to the caller's outer transaction.
///
/// Deadlock-free by construction: physical operations take no abstract
/// locks, so they can never close a cycle against the bounded
/// abstract-lock waits.
fn run_phys<R>(stm: &Stm, f: impl Fn(&mut Transaction<'_>) -> TxResult<R>) -> TxResult<R> {
    let mut attempts = 0u32;
    loop {
        let mut tx = stm.begin();
        match f(&mut tx) {
            Ok(v) => {
                if tx.commit().is_ok() {
                    return Ok(v);
                }
            }
            Err(e) if e.is_retryable() => tx.abort(),
            Err(e) => {
                tx.abort();
                return Err(e);
            }
        }
        attempts = attempts.wrapping_add(1);
        if attempts.is_multiple_of(8) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Walks `bucket`'s chain inside `tx`; returns `(prev, prev_field,
/// node-with-key)`.
fn phys_locate(
    tx: &mut Transaction<'_>,
    bucket: ObjRef,
    key: i64,
) -> TxResult<(ObjRef, usize, Option<ObjRef>)> {
    let mut prev = bucket;
    let mut prev_field = BUCKET_HEAD;
    let mut current = tx.read(bucket, BUCKET_HEAD)?.as_ref();
    while let Some(node) = current {
        if tx.read(node, KEY)?.as_scalar() == Some(key) {
            return Ok((prev, prev_field, Some(node)));
        }
        prev = node;
        prev_field = NEXT;
        current = tx.read(node, NEXT)?.as_ref();
    }
    Ok((prev, prev_field, None))
}

/// Physical insert: links a fresh node unless the key is present.
/// Returns whether it inserted.
fn phys_put(
    tx: &mut Transaction<'_>,
    node_class: ClassId,
    bucket: ObjRef,
    key: i64,
    value: i64,
) -> TxResult<bool> {
    let (_, _, found) = phys_locate(tx, bucket, key)?;
    if found.is_some() {
        return Ok(false);
    }
    let first = tx.read(bucket, BUCKET_HEAD)?;
    let fresh = tx.alloc(node_class)?;
    // Transaction-local initialization (no barriers needed).
    tx.store_direct(fresh, KEY, Word::from_scalar(key));
    tx.store_direct(fresh, VAL, Word::from_scalar(value));
    tx.store_direct(fresh, NEXT, first);
    tx.write(bucket, BUCKET_HEAD, Word::from_ref(fresh))?;
    Ok(true)
}

/// Physical remove: unlinks the key's node. Returns the removed value.
fn phys_delete(tx: &mut Transaction<'_>, bucket: ObjRef, key: i64) -> TxResult<Option<i64>> {
    let (prev, prev_field, found) = phys_locate(tx, bucket, key)?;
    let Some(node) = found else { return Ok(None) };
    let value = tx.read(node, VAL)?.as_scalar();
    let after = tx.read(node, NEXT)?;
    tx.write(prev, prev_field, after)?;
    Ok(value)
}

/// Physical lookup. Returns the key's value, if present.
fn phys_get(tx: &mut Transaction<'_>, bucket: ObjRef, key: i64) -> TxResult<Option<i64>> {
    let (_, _, found) = phys_locate(tx, bucket, key)?;
    match found {
        Some(node) => Ok(tx.read(node, VAL)?.as_scalar()),
        None => Ok(None),
    }
}

impl BoostedHashMap {
    /// Creates a map with `buckets` chains and at least `lock_stripes`
    /// abstract locks (rounded up to a power of two).
    ///
    /// Lock striping is *identity* (`key & mask`): size `lock_stripes`
    /// at or above the live-key range and distinct keys get genuinely
    /// disjoint locks — the configuration under which commuting
    /// operations never contend at all, however few buckets exist.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or the heap is full.
    pub fn new(stm: Arc<Stm>, buckets: usize, lock_stripes: usize) -> BoostedHashMap {
        assert!(buckets > 0, "need at least one bucket");
        let bucket_class = stm.heap().define_class(ClassDesc::new(
            "BoostedBucket",
            vec![FieldDesc::new("head", FieldMut::Var)],
        ));
        let node_class = stm.heap().define_class(ClassDesc::new(
            "BoostedNode",
            vec![
                FieldDesc::new("key", FieldMut::Val),
                FieldDesc::new("val", FieldMut::Var),
                FieldDesc::new("next", FieldMut::Var),
            ],
        ));
        let buckets: Arc<[ObjRef]> =
            (0..buckets).map(|_| stm.heap().alloc(bucket_class).expect("heap full")).collect();
        BoostedHashMap { stm, locks: AbstractLockTable::new(lock_stripes), node_class, buckets }
    }

    /// The STM this map runs on.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// The abstract-lock table (counters for tests and benches).
    pub fn locks(&self) -> &Arc<AbstractLockTable> {
        &self.locks
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket(&self, key: i64) -> ObjRef {
        self.buckets[key.rem_euclid(self.buckets.len() as i64) as usize]
    }

    /// Composable boosted insert: takes `key`'s abstract lock for the
    /// rest of `tx`'s lifetime, inserts unless present, and arranges
    /// for a semantic undo if `tx` later aborts. Returns whether it
    /// inserted (an existing key is left untouched).
    ///
    /// # Errors
    ///
    /// [`omt_stm::TxError::BUSY`] / `DOOMED` from the lock acquisition
    /// (retry the outer transaction), or heap exhaustion from the
    /// physical insert.
    pub fn put_in(&self, tx: &mut Transaction<'_>, key: i64, value: i64) -> TxResult<bool> {
        self.locks.acquire(tx, key as u64)?;
        let bucket = self.bucket(key);
        let node_class = self.node_class;
        let inserted = run_phys(&self.stm, |ptx| phys_put(ptx, node_class, bucket, key, value))?;
        if inserted {
            let stm = Arc::clone(&self.stm);
            tx.on_abort(move || {
                yield_point(schedpt::BOOST_PRE_INVERSE);
                // Inverse of a successful put: delete the key. Runs
                // under the still-held abstract lock; the key was
                // absent before and present now, so the delete cannot
                // miss, and it never allocates, so the retry loop has
                // no non-retryable exit.
                run_phys(&stm, |ptx| phys_delete(ptx, bucket, key))
                    .expect("inverse delete allocates nothing and cannot fail terminally");
            });
        }
        Ok(inserted)
    }

    /// Composable boosted remove: takes `key`'s abstract lock, unlinks
    /// the key, and arranges re-insertion of the removed value if `tx`
    /// later aborts. Returns the removed value.
    ///
    /// # Errors
    ///
    /// See [`Self::put_in`].
    pub fn delete_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<Option<i64>> {
        self.locks.acquire(tx, key as u64)?;
        let bucket = self.bucket(key);
        let removed = run_phys(&self.stm, |ptx| phys_delete(ptx, bucket, key))?;
        if let Some(value) = removed {
            let stm = Arc::clone(&self.stm);
            let node_class = self.node_class;
            tx.on_abort(move || {
                yield_point(schedpt::BOOST_PRE_INVERSE);
                // Inverse of a successful delete: put the value back.
                // The only terminal error is heap exhaustion; a heap
                // that cannot hold the node it just freed is already
                // lost, so surface it loudly rather than silently
                // dropping the key.
                run_phys(&stm, |ptx| phys_put(ptx, node_class, bucket, key, value))
                    .expect("inverse put failed: heap exhausted during semantic rollback");
            });
        }
        Ok(removed)
    }

    /// Composable boosted lookup: takes `key`'s abstract lock
    /// (conservatively exclusive — the lock *is* the conflict
    /// footprint, so a reader blocks a writer of the same key and
    /// nothing else) and returns the value.
    ///
    /// # Errors
    ///
    /// See [`Self::put_in`].
    pub fn get_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<Option<i64>> {
        self.locks.acquire(tx, key as u64)?;
        let bucket = self.bucket(key);
        run_phys(&self.stm, |ptx| phys_get(ptx, bucket, key))
    }

    /// Boosted insert in its own transaction. Returns whether it
    /// inserted.
    pub fn put(&self, key: i64, value: i64) -> bool {
        self.stm.atomically(|tx| self.put_in(tx, key, value))
    }

    /// Boosted remove in its own transaction. Returns the removed
    /// value.
    pub fn delete(&self, key: i64) -> Option<i64> {
        self.stm.atomically(|tx| self.delete_in(tx, key))
    }

    /// Boosted lookup in its own transaction.
    pub fn get(&self, key: i64) -> Option<i64> {
        self.stm.atomically(|tx| self.get_in(tx, key))
    }

    /// Composable word-level insert on the same physical structure,
    /// bypassing the abstract locks: `tx` opens the bucket words
    /// directly, so conflicts are at word granularity (two inserts into
    /// one bucket collide even on distinct keys). The baseline the
    /// boosted path is measured against (E2) and the backend of the
    /// server's word-level KV mode. A store must be driven either
    /// entirely boosted (`*_in`) or entirely raw — mixing the two skips
    /// the abstract locks the boosted side relies on.
    ///
    /// # Errors
    ///
    /// Word-level conflicts and heap exhaustion, as for any direct
    /// transactional access.
    pub fn raw_put_in(&self, tx: &mut Transaction<'_>, key: i64, value: i64) -> TxResult<bool> {
        phys_put(tx, self.node_class, self.bucket(key), key, value)
    }

    /// Composable word-level remove (see [`Self::raw_put_in`]).
    ///
    /// # Errors
    ///
    /// See [`Self::raw_put_in`].
    pub fn raw_delete_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<Option<i64>> {
        phys_delete(tx, self.bucket(key), key)
    }

    /// Composable word-level lookup (see [`Self::raw_put_in`]).
    ///
    /// # Errors
    ///
    /// See [`Self::raw_put_in`].
    pub fn raw_get_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<Option<i64>> {
        phys_get(tx, self.bucket(key), key)
    }

    /// Word-level insert in its own transaction (see
    /// [`Self::raw_put_in`]).
    pub fn raw_put(&self, key: i64, value: i64) -> bool {
        self.stm.atomically(|tx| self.raw_put_in(tx, key, value))
    }

    /// Word-level remove in its own transaction.
    pub fn raw_delete(&self, key: i64) -> Option<i64> {
        self.stm.atomically(|tx| self.raw_delete_in(tx, key))
    }

    /// Word-level lookup in its own transaction.
    pub fn raw_get(&self, key: i64) -> Option<i64> {
        self.stm.atomically(|tx| self.raw_get_in(tx, key))
    }

    /// Word-level snapshot of the whole map, as `(key, value)` pairs in
    /// no particular order. An audit/test helper: it is atomic at the
    /// *word* level (one transaction) but takes no abstract locks, so
    /// it can observe the mid-flight physical steps of a concurrent
    /// boosted transaction. For a semantically isolated read, go
    /// through [`Self::get_in`] under the keys' locks.
    pub fn snapshot(&self) -> Vec<(i64, i64)> {
        self.stm.atomically(|tx| {
            let mut pairs = Vec::new();
            for bucket in self.buckets.iter() {
                let mut current = tx.read(*bucket, BUCKET_HEAD)?.as_ref();
                while let Some(node) = current {
                    let key = tx.read(node, KEY)?.as_scalar().expect("node key is a scalar");
                    let val = tx.read(node, VAL)?.as_scalar().expect("node value is a scalar");
                    pairs.push((key, val));
                    current = tx.read(node, NEXT)?.as_ref();
                }
            }
            Ok(pairs)
        })
    }
}

impl ConcurrentSet for BoostedHashMap {
    fn insert(&self, key: i64) -> bool {
        self.put(key, key)
    }

    fn remove(&self, key: i64) -> bool {
        self.delete(key).is_some()
    }

    fn contains(&self, key: i64) -> bool {
        self.get(key).is_some()
    }

    fn len(&self) -> usize {
        self.snapshot().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::{prefill, run_set_workload, sets_agree, SetWorkload};
    use crate::stm_hash::StmHashSet;
    use omt_heap::Heap;
    use omt_stm::TxError;

    fn map(buckets: usize, stripes: usize) -> BoostedHashMap {
        BoostedHashMap::new(Arc::new(Stm::new(Arc::new(Heap::new()))), buckets, stripes)
    }

    #[test]
    fn basic_map_operations() {
        let m = map(4, 64);
        assert!(m.put(1, 10));
        assert!(m.put(5, 50)); // same bucket as 1
        assert!(!m.put(1, 99), "existing key is left untouched");
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.get(5), Some(50));
        assert_eq!(m.delete(5), Some(50));
        assert_eq!(m.get(5), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn abort_restores_exact_pre_state() {
        let m = map(2, 64);
        m.put(1, 10);
        m.put(2, 20);
        let before = {
            let mut s = m.snapshot();
            s.sort_unstable();
            s
        };
        // A transaction that inserts, deletes, and then aborts: the
        // inverse ops must restore the exact pre-state.
        let mut tx = m.stm().begin();
        assert!(m.put_in(&mut tx, 3, 30).unwrap());
        assert_eq!(m.delete_in(&mut tx, 1).unwrap(), Some(10));
        tx.abort();
        let mut after = m.snapshot();
        after.sort_unstable();
        assert_eq!(after, before);
        assert_eq!(m.locks().holder(1), None);
        assert_eq!(m.locks().holder(3), None);
    }

    #[test]
    fn savepoint_partial_rollback_undoes_only_nested_ops() {
        let m = map(2, 64);
        m.put(1, 10);
        let mut tx = m.stm().begin();
        assert!(m.put_in(&mut tx, 2, 20).unwrap());
        let sp = tx.savepoint();
        assert!(m.put_in(&mut tx, 3, 30).unwrap());
        assert_eq!(m.delete_in(&mut tx, 1).unwrap(), Some(10));
        tx.rollback_to(sp);
        // The nested region's ops are undone (3 gone, 1 back), the
        // outer op (2) survives, and so does its lock.
        assert_eq!(m.locks().holder(2), Some(tx.token()));
        tx.commit().unwrap();
        let mut state = m.snapshot();
        state.sort_unstable();
        assert_eq!(state, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn kill_failpoint_runs_semantic_undo() {
        use omt_stm::{FailAction, Trigger};
        let m = map(2, 64);
        m.put(1, 10);
        let before = {
            let mut s = m.snapshot();
            s.sort_unstable();
            s
        };
        let mut tx = m.stm().begin();
        assert!(m.put_in(&mut tx, 7, 70).unwrap());
        assert_eq!(m.delete_in(&mut tx, 1).unwrap(), Some(10));
        // Simulate thread death at commit time: the semantic undo runs
        // on the dying thread (handlers cannot be parked), restoring
        // the map, and the abstract locks are released.
        m.stm().failpoints().set(
            omt_stm::failpoint::sites::COMMIT_BEFORE_VALIDATE,
            FailAction::Kill,
            Trigger::Once,
        );
        assert_eq!(tx.commit(), Err(TxError::DOOMED));
        let mut after = m.snapshot();
        after.sort_unstable();
        assert_eq!(after, before);
        assert_eq!(m.locks().holder(1), None);
        assert_eq!(m.locks().holder(7), None);
    }

    #[test]
    fn commuting_ops_on_one_bucket_do_not_conflict() {
        // Two transactions insert distinct keys into the same bucket
        // and hold their locks at the same time — word-level maps
        // cannot interleave these without one abort.
        let m = map(1, 64);
        let mut a = m.stm().begin();
        let mut b = m.stm().begin();
        assert!(m.put_in(&mut a, 1, 10).unwrap());
        assert!(m.put_in(&mut b, 2, 20).unwrap());
        a.commit().unwrap();
        b.commit().unwrap();
        let mut state = m.snapshot();
        state.sort_unstable();
        assert_eq!(state, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn same_key_ops_do_conflict() {
        let m = map(1, 64);
        let mut a = m.stm().begin();
        let mut b = m.stm().begin();
        assert!(m.put_in(&mut a, 1, 10).unwrap());
        // Default CM (Spin) waits then gives up: same-key access from
        // another live transaction must fail BUSY, not interleave.
        assert_eq!(m.put_in(&mut b, 1, 99), Err(TxError::BUSY));
        a.abort();
        b.abort();
        assert_eq!(m.get(1), None, "a's abort removed its insert");
    }

    #[test]
    fn agrees_with_reference_set_single_threaded() {
        let m = map(16, 1024);
        let reference = StmHashSet::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 16);
        assert!(sets_agree(&m, &reference, 4_000, 0x0B00_57ED));
    }

    #[test]
    fn seeded_cross_thread_storm_conserves_value_sum() {
        // K accounts with initial balance; each thread transfers 1 from
        // one account to another per transaction (delete both, put back
        // adjusted), while auditors snapshot the sum under all K locks.
        // Total balance is conserved at every semantically isolated
        // observation point and at the end.
        const KEYS: i64 = 8;
        const BALANCE: i64 = 1_000;
        const TRANSFERS: usize = 300;
        let m = Arc::new(map(2, KEYS as usize));
        for k in 0..KEYS {
            m.put(k, BALANCE);
        }
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1);
                    for _ in 0..TRANSFERS {
                        rng =
                            rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let from = (rng >> 33) as i64 % KEYS;
                        let to = (rng >> 13) as i64 % KEYS;
                        if from == to {
                            continue;
                        }
                        m.stm().atomically(|tx| {
                            let a = m.delete_in(tx, from)?.expect("accounts never vanish");
                            let b = m.delete_in(tx, to)?.expect("accounts never vanish");
                            m.put_in(tx, from, a - 1)?;
                            m.put_in(tx, to, b + 1)?;
                            Ok(())
                        });
                    }
                });
            }
            // Auditor: a boosted read of every account under all the
            // locks sees a semantically consistent state.
            let m2 = Arc::clone(&m);
            scope.spawn(move || {
                for _ in 0..50 {
                    let sum = m2.stm().atomically(|tx| {
                        let mut sum = 0i64;
                        for k in 0..KEYS {
                            sum += m2.get_in(tx, k)?.expect("accounts never vanish");
                        }
                        Ok(sum)
                    });
                    assert_eq!(sum, KEYS * BALANCE, "conservation violated mid-storm");
                    std::thread::yield_now();
                }
            });
        });
        let mut state = m.snapshot();
        state.sort_unstable();
        assert_eq!(state.len(), KEYS as usize);
        assert_eq!(state.iter().map(|(_, v)| v).sum::<i64>(), KEYS * BALANCE);
    }

    #[test]
    fn workload_driver_runs_on_the_boosted_map() {
        let m = map(16, 1024);
        let workload = SetWorkload {
            initial_size: 64,
            key_range: 256,
            ops_per_thread: 1_000,
            ..SetWorkload::default()
        };
        prefill(&m, &workload);
        let outcome = run_set_workload(&m, &workload, 2);
        assert_eq!(outcome.total_ops, 2_000);
        assert!(m.len() <= 256);
    }

    #[test]
    fn panicking_user_code_rolls_back_semantic_ops() {
        let m = map(2, 64);
        m.put(1, 10);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.stm().atomically(|tx| {
                m.delete_in(tx, 1)?;
                panic!("user code exploded");
                #[allow(unreachable_code)]
                Ok(())
            })
        }));
        assert!(result.is_err());
        assert_eq!(m.get(1), Some(10), "panic unwound through the inverse op");
    }
}
