//! An (unbalanced) binary search tree set over the direct-access STM.
//!
//! Trees give the evaluation a workload with logarithmic read sets and
//! update locality near the leaves; with random keys the expected depth
//! is O(log n) without rebalancing machinery.

use std::sync::Arc;

use omt_heap::{ClassDesc, ClassId, FieldDesc, FieldMut, ObjRef, Word};
use omt_stm::{Stm, Transaction, TxResult};

use crate::set::ConcurrentSet;

const KEY: usize = 0;
const LEFT: usize = 1;
const RIGHT: usize = 2;
const ROOT: usize = 0;

/// A transactional binary search tree.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::Heap;
/// use omt_stm::Stm;
/// use omt_workloads::{ConcurrentSet, StmBst};
///
/// let tree = StmBst::new(Arc::new(Stm::new(Arc::new(Heap::new()))));
/// for k in [5, 2, 8, 1, 9] { tree.insert(k); }
/// assert!(tree.contains(8));
/// assert!(tree.remove(5)); // interior node with two children
/// assert!(!tree.contains(5));
/// assert_eq!(tree.len(), 4);
/// ```
#[derive(Debug)]
pub struct StmBst {
    stm: Arc<Stm>,
    node_class: ClassId,
    /// Single-field holder for the root pointer.
    root_holder: ObjRef,
}

impl StmBst {
    /// Creates an empty tree.
    ///
    /// # Panics
    ///
    /// Panics if the heap is full.
    pub fn new(stm: Arc<Stm>) -> StmBst {
        let holder_class = stm
            .heap()
            .define_class(ClassDesc::new("BstRoot", vec![FieldDesc::new("root", FieldMut::Var)]));
        let node_class = stm.heap().define_class(ClassDesc::new(
            "BstNode",
            vec![
                // `key` is mutable: deletion copies a successor's key.
                FieldDesc::new("key", FieldMut::Var),
                FieldDesc::new("left", FieldMut::Var),
                FieldDesc::new("right", FieldMut::Var),
            ],
        ));
        let root_holder = stm.heap().alloc(holder_class).expect("heap full");
        StmBst { stm, node_class, root_holder }
    }

    /// The STM this tree runs on.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    fn key_of(&self, tx: &mut Transaction<'_>, node: ObjRef) -> TxResult<i64> {
        Ok(tx.read(node, KEY)?.as_scalar().unwrap_or(i64::MAX))
    }

    /// Finds `key`; returns `(parent, parent_field, node)` where
    /// `parent`/`parent_field` address the link that points at `node`
    /// (or at the insertion point when `node` is `None`).
    fn locate(
        &self,
        tx: &mut Transaction<'_>,
        key: i64,
    ) -> TxResult<(ObjRef, usize, Option<ObjRef>)> {
        let mut parent = self.root_holder;
        let mut parent_field = ROOT;
        let mut current = tx.read(parent, parent_field)?.as_ref();
        while let Some(node) = current {
            let node_key = self.key_of(tx, node)?;
            if node_key == key {
                return Ok((parent, parent_field, Some(node)));
            }
            parent = node;
            parent_field = if key < node_key { LEFT } else { RIGHT };
            current = tx.read(parent, parent_field)?.as_ref();
        }
        Ok((parent, parent_field, None))
    }
}

impl StmBst {
    /// Transaction-composable insert: runs inside the caller's open
    /// transaction, so it composes atomically with other structures on
    /// the same [`Stm`].
    ///
    /// # Errors
    ///
    /// Propagates transactional conflicts for the caller's retry loop.
    pub fn insert_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        let (parent, parent_field, found) = self.locate(tx, key)?;
        if found.is_some() {
            return Ok(false);
        }
        let fresh = tx.alloc(self.node_class)?;
        self.stm.heap().store(fresh, KEY, Word::from_scalar(key));
        tx.write(parent, parent_field, Word::from_ref(fresh))?;
        Ok(true)
    }

    /// Transaction-composable membership test (see
    /// [`StmBst::insert_in`]).
    ///
    /// # Errors
    ///
    /// Propagates transactional conflicts for the caller's retry loop.
    pub fn contains_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        Ok(self.locate(tx, key)?.2.is_some())
    }

    /// Transaction-composable remove (see [`StmBst::insert_in`]).
    ///
    /// # Errors
    ///
    /// Propagates transactional conflicts for the caller's retry loop.
    pub fn remove_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        let (parent, parent_field, found) = self.locate(tx, key)?;
        let Some(node) = found else { return Ok(false) };
        let left = tx.read(node, LEFT)?.as_ref();
        let right = tx.read(node, RIGHT)?.as_ref();
        match (left, right) {
            (None, None) => {
                tx.write(parent, parent_field, Word::null())?;
            }
            (Some(child), None) | (None, Some(child)) => {
                tx.write(parent, parent_field, Word::from_ref(child))?;
            }
            (Some(_), Some(right)) => {
                // Two children: splice out the in-order successor
                // (leftmost node of the right subtree) and move its
                // key into `node`.
                let mut succ_parent = node;
                let mut succ_field = RIGHT;
                let mut succ = right;
                while let Some(next) = tx.read(succ, LEFT)?.as_ref() {
                    succ_parent = succ;
                    succ_field = LEFT;
                    succ = next;
                }
                let succ_key = tx.read(succ, KEY)?;
                let succ_right = tx.read(succ, RIGHT)?;
                tx.write(node, KEY, succ_key)?;
                tx.write(succ_parent, succ_field, succ_right)?;
            }
        }
        Ok(true)
    }
}

impl ConcurrentSet for StmBst {
    fn insert(&self, key: i64) -> bool {
        self.stm.atomically(|tx| self.insert_in(tx, key))
    }

    fn remove(&self, key: i64) -> bool {
        self.stm.atomically(|tx| self.remove_in(tx, key))
    }

    fn contains(&self, key: i64) -> bool {
        self.stm.atomically(|tx| self.contains_in(tx, key))
    }

    fn len(&self) -> usize {
        self.stm.atomically(|tx| {
            let mut n = 0usize;
            let mut stack = vec![tx.read(self.root_holder, ROOT)?.as_ref()];
            while let Some(top) = stack.pop() {
                let Some(node) = top else { continue };
                n += 1;
                stack.push(tx.read(node, LEFT)?.as_ref());
                stack.push(tx.read(node, RIGHT)?.as_ref());
            }
            Ok(n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::Heap;

    fn tree() -> StmBst {
        StmBst::new(Arc::new(Stm::new(Arc::new(Heap::new()))))
    }

    /// In-order traversal for invariant checks (single-threaded).
    fn inorder(t: &StmBst) -> Vec<i64> {
        fn walk(t: &StmBst, node: Option<ObjRef>, out: &mut Vec<i64>) {
            let Some(n) = node else { return };
            let heap = t.stm.heap();
            walk(t, heap.load(n, LEFT).as_ref(), out);
            out.push(heap.load(n, KEY).as_scalar().unwrap());
            walk(t, heap.load(n, RIGHT).as_ref(), out);
        }
        let mut out = Vec::new();
        let root = t.stm.heap().load(t.root_holder, ROOT).as_ref();
        walk(t, root, &mut out);
        out
    }

    #[test]
    fn insert_contains_remove_all_cases() {
        let t = tree();
        for k in [50, 30, 70, 20, 40, 60, 80] {
            assert!(t.insert(k));
        }
        assert_eq!(t.len(), 7);
        assert!(t.remove(20), "leaf");
        assert!(t.remove(30), "one child");
        assert!(t.remove(50), "two children (root)");
        assert!(!t.remove(50));
        assert_eq!(inorder(&t), vec![40, 60, 70, 80]);
    }

    #[test]
    fn stays_a_search_tree_under_random_ops() {
        let t = tree();
        let mut rng = omt_util::rng::StdRng::seed_from_u64(42);
        let mut keys: Vec<i64> = (0..200).collect();
        rng.shuffle(&mut keys);
        for &k in &keys {
            t.insert(k);
        }
        for k in (0..200).step_by(3) {
            t.remove(k);
        }
        let seq = inorder(&t);
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        assert_eq!(seq, sorted, "in-order traversal must be sorted");
        assert_eq!(seq.len(), t.len());
    }

    #[test]
    fn concurrent_mixed_operations_converge() {
        let t = Arc::new(tree());
        std::thread::scope(|scope| {
            for thread in 0..4i64 {
                let t = t.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        let k = (thread * 37 + i * 11) % 100;
                        match i % 3 {
                            0 => {
                                t.insert(k);
                            }
                            1 => {
                                t.contains(k);
                            }
                            _ => {
                                t.remove(k);
                            }
                        }
                    }
                });
            }
        });
        let seq = inorder(&t);
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seq, sorted, "no duplicates, sorted after contention");
    }
}
