//! A sorted linked-list set over the direct-access STM.
//!
//! The classic STM micro-benchmark: every operation walks the list
//! transactionally, so read-set sizes grow with the structure and the
//! runtime filter and compiler-style barrier discipline matter.
//!
//! The implementation is written the way the paper's *compiler* would
//! emit it: one `open_for_read` per visited node (via
//! [`Transaction::read`], which the runtime filter deduplicates), and
//! direct initialization of freshly allocated nodes (the
//! transaction-local optimization — a new node cannot conflict until it
//! is linked).

use std::sync::Arc;

use omt_heap::{ClassDesc, ClassId, FieldDesc, FieldMut, ObjRef, Word};
use omt_stm::{Stm, Transaction, TxResult};

use crate::set::ConcurrentSet;

const KEY: usize = 0;
const NEXT: usize = 1;

/// A transactional sorted singly-linked list of 63-bit keys.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::Heap;
/// use omt_stm::Stm;
/// use omt_workloads::{ConcurrentSet, StmSortedList};
///
/// let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
/// let list = StmSortedList::new(stm);
/// assert!(list.insert(3));
/// assert!(!list.insert(3));
/// assert!(list.contains(3));
/// assert!(list.remove(3));
/// assert!(list.is_empty());
/// ```
#[derive(Debug)]
pub struct StmSortedList {
    stm: Arc<Stm>,
    node_class: ClassId,
    /// Sentinel node; its `next` is the first real element.
    head: ObjRef,
}

impl StmSortedList {
    /// Creates an empty list.
    ///
    /// # Panics
    ///
    /// Panics if the heap is full.
    pub fn new(stm: Arc<Stm>) -> StmSortedList {
        let node_class = stm.heap().define_class(ClassDesc::new(
            "ListNode",
            vec![FieldDesc::new("key", FieldMut::Val), FieldDesc::new("next", FieldMut::Var)],
        ));
        let head = stm.heap().alloc(node_class).expect("heap full");
        StmSortedList { stm, node_class, head }
    }

    /// The STM this list runs on.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Walks to the first node with key >= `key`.
    /// Returns `(prev, current)`.
    fn locate(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<(ObjRef, Option<ObjRef>)> {
        let mut prev = self.head;
        let mut current = tx.read(prev, NEXT)?.as_ref();
        while let Some(node) = current {
            let node_key = tx.read(node, KEY)?.as_scalar().unwrap_or(i64::MAX);
            if node_key >= key {
                break;
            }
            prev = node;
            current = tx.read(node, NEXT)?.as_ref();
        }
        Ok((prev, current))
    }

    fn key_of(&self, tx: &mut Transaction<'_>, node: ObjRef) -> TxResult<i64> {
        Ok(tx.read(node, KEY)?.as_scalar().unwrap_or(i64::MAX))
    }
}

impl StmSortedList {
    /// Transaction-composable insert: runs inside the caller's open
    /// transaction, so it can be combined atomically with operations on
    /// other structures sharing the same [`Stm`].
    ///
    /// # Errors
    ///
    /// Propagates transactional conflicts for the caller's retry loop.
    pub fn insert_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        let (prev, current) = self.locate(tx, key)?;
        if let Some(node) = current {
            if self.key_of(tx, node)? == key {
                return Ok(false);
            }
        }
        let fresh = tx.alloc(self.node_class)?;
        // Transaction-local initialization: no barriers needed until
        // the node is published by the write to `prev.next`.
        self.stm.heap().store(fresh, KEY, Word::from_scalar(key));
        self.stm.heap().store(fresh, NEXT, Word::from_opt_ref(current));
        tx.write(prev, NEXT, Word::from_ref(fresh))?;
        Ok(true)
    }

    /// Transaction-composable remove (see [`StmSortedList::insert_in`]).
    ///
    /// # Errors
    ///
    /// Propagates transactional conflicts for the caller's retry loop.
    pub fn remove_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        let (prev, current) = self.locate(tx, key)?;
        let Some(node) = current else { return Ok(false) };
        if self.key_of(tx, node)? != key {
            return Ok(false);
        }
        let after = tx.read(node, NEXT)?;
        tx.write(prev, NEXT, after)?;
        Ok(true)
    }

    /// Transaction-composable membership test (see
    /// [`StmSortedList::insert_in`]).
    ///
    /// # Errors
    ///
    /// Propagates transactional conflicts for the caller's retry loop.
    pub fn contains_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        let (_, current) = self.locate(tx, key)?;
        match current {
            Some(node) => Ok(self.key_of(tx, node)? == key),
            None => Ok(false),
        }
    }
}

impl ConcurrentSet for StmSortedList {
    fn insert(&self, key: i64) -> bool {
        self.stm.atomically(|tx| self.insert_in(tx, key))
    }

    fn remove(&self, key: i64) -> bool {
        self.stm.atomically(|tx| self.remove_in(tx, key))
    }

    fn contains(&self, key: i64) -> bool {
        self.stm.atomically(|tx| self.contains_in(tx, key))
    }

    fn len(&self) -> usize {
        self.stm.atomically(|tx| {
            let mut n = 0usize;
            let mut current = tx.read(self.head, NEXT)?.as_ref();
            while let Some(node) = current {
                n += 1;
                current = tx.read(node, NEXT)?.as_ref();
            }
            Ok(n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::Heap;

    fn list() -> StmSortedList {
        StmSortedList::new(Arc::new(Stm::new(Arc::new(Heap::new()))))
    }

    #[test]
    fn insert_remove_contains() {
        let l = list();
        assert!(l.insert(5));
        assert!(l.insert(1));
        assert!(l.insert(9));
        assert!(!l.insert(5));
        assert_eq!(l.len(), 3);
        assert!(l.contains(1) && l.contains(5) && l.contains(9));
        assert!(!l.contains(7));
        assert!(l.remove(5));
        assert!(!l.remove(5));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn keeps_sorted_order() {
        let l = list();
        for key in [5, 3, 8, 1, 9, 2] {
            l.insert(key);
        }
        // Walk raw: keys must be ascending.
        let heap = l.stm.heap().clone();
        let mut keys = Vec::new();
        let mut cur = heap.load(l.head, NEXT).as_ref();
        while let Some(n) = cur {
            keys.push(heap.load(n, KEY).as_scalar().unwrap());
            cur = heap.load(n, NEXT).as_ref();
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let l = Arc::new(list());
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let l = l.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        assert!(l.insert(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(l.len(), 400);
    }

    #[test]
    fn concurrent_same_key_inserts_once() {
        let l = Arc::new(list());
        let winners: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let l = l.clone();
                    scope.spawn(move || usize::from(l.insert(42)))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        assert_eq!(l.len(), 1);
    }
}
