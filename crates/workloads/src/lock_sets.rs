//! Lock-based competitor sets.
//!
//! The paper's bar is "comparable to fine-grained locking": these are
//! the lock-based designs the STM structures race against.
//!
//! - [`CoarseStdSet`] / [`RwStdSet`] — coarse-grained: one mutex (or
//!   reader–writer lock) around a standard set;
//! - [`StripedHashSet`] — fine-grained: one lock per bucket;
//! - [`HandOverHandList`] — fine-grained: sorted list with lock
//!   coupling (each step holds at most two node locks).

use std::collections::BTreeSet;
use std::sync::Arc;

use omt_util::sync::{ArcMutexGuard, LockArc, Mutex, RwLock};

use crate::set::ConcurrentSet;

/// One global mutex around a `BTreeSet` — the coarse-grained baseline.
#[derive(Debug, Default)]
pub struct CoarseStdSet {
    inner: Mutex<BTreeSet<i64>>,
}

impl CoarseStdSet {
    /// Creates an empty set.
    pub fn new() -> CoarseStdSet {
        CoarseStdSet::default()
    }
}

impl ConcurrentSet for CoarseStdSet {
    fn insert(&self, key: i64) -> bool {
        self.inner.lock().insert(key)
    }

    fn remove(&self, key: i64) -> bool {
        self.inner.lock().remove(&key)
    }

    fn contains(&self, key: i64) -> bool {
        self.inner.lock().contains(&key)
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

/// A reader–writer lock around a `BTreeSet` — coarse, but lookups run
/// in parallel.
#[derive(Debug, Default)]
pub struct RwStdSet {
    inner: RwLock<BTreeSet<i64>>,
}

impl RwStdSet {
    /// Creates an empty set.
    pub fn new() -> RwStdSet {
        RwStdSet::default()
    }
}

impl ConcurrentSet for RwStdSet {
    fn insert(&self, key: i64) -> bool {
        self.inner.write().insert(key)
    }

    fn remove(&self, key: i64) -> bool {
        self.inner.write().remove(&key)
    }

    fn contains(&self, key: i64) -> bool {
        self.inner.read().contains(&key)
    }

    fn len(&self) -> usize {
        self.inner.read().len()
    }
}

/// A hash set with one lock per bucket — the classic fine-grained
/// design for hash tables.
#[derive(Debug)]
pub struct StripedHashSet {
    buckets: Vec<Mutex<Vec<i64>>>,
}

impl StripedHashSet {
    /// Creates a set with `buckets` independent chains.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> StripedHashSet {
        assert!(buckets > 0, "need at least one bucket");
        StripedHashSet { buckets: (0..buckets).map(|_| Mutex::new(Vec::new())).collect() }
    }

    fn bucket(&self, key: i64) -> &Mutex<Vec<i64>> {
        &self.buckets[key.rem_euclid(self.buckets.len() as i64) as usize]
    }
}

impl ConcurrentSet for StripedHashSet {
    fn insert(&self, key: i64) -> bool {
        let mut chain = self.bucket(key).lock();
        if chain.contains(&key) {
            false
        } else {
            chain.push(key);
            true
        }
    }

    fn remove(&self, key: i64) -> bool {
        let mut chain = self.bucket(key).lock();
        match chain.iter().position(|&k| k == key) {
            Some(i) => {
                chain.swap_remove(i);
                true
            }
            None => false,
        }
    }

    fn contains(&self, key: i64) -> bool {
        self.bucket(key).lock().contains(&key)
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).sum()
    }
}

type Link = Arc<Mutex<Option<Arc<HohNode>>>>;

#[derive(Debug)]
struct HohNode {
    key: i64,
    next: Link,
}

/// A sorted linked list with hand-over-hand (lock-coupling)
/// fine-grained locking.
///
/// Each traversal step acquires the next link's lock before releasing
/// the previous one, so concurrent operations pipeline down the list.
#[derive(Debug)]
pub struct HandOverHandList {
    head: Link,
}

impl Default for HandOverHandList {
    fn default() -> HandOverHandList {
        HandOverHandList::new()
    }
}

impl HandOverHandList {
    /// Creates an empty list.
    pub fn new() -> HandOverHandList {
        HandOverHandList { head: Arc::new(Mutex::new(None)) }
    }

    /// Walks to the link whose target is the first node with
    /// key >= `key`, returning that link's (owned) guard.
    fn locate(&self, key: i64) -> ArcMutexGuard<Option<Arc<HohNode>>> {
        let mut guard = self.head.lock_arc();
        loop {
            let advance = match &*guard {
                Some(node) if node.key < key => node.next.clone(),
                _ => return guard,
            };
            // Hand-over-hand: acquire the next link before releasing the
            // current one (dropping `guard` happens after `lock_arc`
            // returns because we assign over it).
            let next_guard = advance.lock_arc();
            guard = next_guard;
        }
    }
}

impl ConcurrentSet for HandOverHandList {
    fn insert(&self, key: i64) -> bool {
        let mut guard = self.locate(key);
        if let Some(node) = &*guard {
            if node.key == key {
                return false;
            }
        }
        let node = Arc::new(HohNode { key, next: Arc::new(Mutex::new(guard.take())) });
        *guard = Some(node);
        true
    }

    fn remove(&self, key: i64) -> bool {
        let mut guard = self.locate(key);
        let matched = matches!(&*guard, Some(node) if node.key == key);
        if !matched {
            return false;
        }
        // Invariant: `matched` proved `*guard` is `Some` with this key,
        // and we still hold the lock that `locate` returned, so nothing
        // can have unlinked the node in between.
        let node = guard.take().expect("matched above");
        *guard = node.next.lock().take();
        true
    }

    fn contains(&self, key: i64) -> bool {
        let guard = self.locate(key);
        matches!(&*guard, Some(node) if node.key == key)
    }

    fn len(&self) -> usize {
        let mut n = 0;
        let mut guard = self.head.lock_arc();
        loop {
            let next = match &*guard {
                Some(node) => {
                    n += 1;
                    node.next.clone()
                }
                None => return n,
            };
            guard = next.lock_arc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::{run_set_workload, sets_agree, SetWorkload};

    fn exercise(set: &dyn ConcurrentSet) {
        assert!(set.insert(5));
        assert!(set.insert(1));
        assert!(!set.insert(5));
        assert!(set.contains(1));
        assert!(!set.contains(2));
        assert!(set.remove(5));
        assert!(!set.remove(5));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn all_lock_sets_behave_identically() {
        exercise(&CoarseStdSet::new());
        exercise(&RwStdSet::new());
        exercise(&StripedHashSet::new(8));
        exercise(&HandOverHandList::new());
    }

    #[test]
    fn lock_sets_agree_with_reference() {
        assert!(sets_agree(&StripedHashSet::new(16), &CoarseStdSet::new(), 2_000, 7));
        assert!(sets_agree(&HandOverHandList::new(), &CoarseStdSet::new(), 2_000, 8));
        assert!(sets_agree(&RwStdSet::new(), &CoarseStdSet::new(), 2_000, 9));
    }

    #[test]
    #[allow(clippy::while_let_loop)] // guard reassignment forbids while-let
    fn hand_over_hand_sorted_after_contention() {
        let list = HandOverHandList::new();
        let workload = SetWorkload {
            initial_size: 0,
            key_range: 128,
            ops_per_thread: 1_500,
            ..Default::default()
        };
        run_set_workload(&list, &workload, 4);
        // Walk and check sortedness.
        let mut prev = i64::MIN;
        let mut guard = list.head.lock_arc();
        loop {
            let next = match &*guard {
                Some(node) => {
                    assert!(node.key > prev, "sorted, duplicate-free");
                    prev = node.key;
                    node.next.clone()
                }
                None => break,
            };
            guard = next.lock_arc();
        }
    }

    #[test]
    fn striped_set_handles_negative_keys() {
        let s = StripedHashSet::new(4);
        assert!(s.insert(-9));
        assert!(s.contains(-9));
        assert!(s.remove(-9));
    }
}
