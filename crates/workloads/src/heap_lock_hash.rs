//! A fine-grained lock-based hash set **over the managed heap** — the
//! apples-to-apples competitor for [`crate::StmHashSet`].
//!
//! [`crate::StripedHashSet`] stores its chains in native `Vec`s, so
//! comparing it against the STM confounds synchronization cost with
//! managed-heap cost (tagged words, header checks, atomic field
//! accesses). This set uses the *same* heap object layout as the STM
//! hash set — one bucket-head object per bucket, chained key/next
//! nodes — with one mutex per bucket instead of transactions. Whatever
//! throughput gap remains against `StmHashSet` is genuinely the STM's.

use std::sync::Arc;

use omt_heap::{ClassDesc, ClassId, FieldDesc, FieldMut, Heap, ObjRef, Word};
use omt_util::sync::Mutex;

use crate::set::ConcurrentSet;

const BUCKET_HEAD: usize = 0;
const KEY: usize = 0;
const NEXT: usize = 1;

/// A lock-per-bucket hash set whose data lives in the managed heap.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::Heap;
/// use omt_workloads::{ConcurrentSet, HeapStripedHashSet};
///
/// let set = HeapStripedHashSet::new(Arc::new(Heap::new()), 16);
/// assert!(set.insert(4));
/// assert!(set.contains(4));
/// assert!(set.remove(4));
/// ```
#[derive(Debug)]
pub struct HeapStripedHashSet {
    heap: Arc<Heap>,
    node_class: ClassId,
    buckets: Vec<(Mutex<()>, ObjRef)>,
}

impl HeapStripedHashSet {
    /// Creates a set with `buckets` independently locked chains.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or the heap is full.
    pub fn new(heap: Arc<Heap>, buckets: usize) -> HeapStripedHashSet {
        assert!(buckets > 0, "need at least one bucket");
        let bucket_class = heap.define_class(ClassDesc::new(
            "HashBucket",
            vec![FieldDesc::new("head", FieldMut::Var)],
        ));
        let node_class = heap.define_class(ClassDesc::new(
            "HashNode",
            vec![FieldDesc::new("key", FieldMut::Val), FieldDesc::new("next", FieldMut::Var)],
        ));
        let buckets = (0..buckets)
            .map(|_| (Mutex::new(()), heap.alloc(bucket_class).expect("heap full")))
            .collect();
        HeapStripedHashSet { heap, node_class, buckets }
    }

    fn bucket(&self, key: i64) -> &(Mutex<()>, ObjRef) {
        &self.buckets[key.rem_euclid(self.buckets.len() as i64) as usize]
    }

    /// Walks the chain under the bucket lock; returns
    /// `(prev, prev_field, node)`.
    fn locate(&self, bucket: ObjRef, key: i64) -> (ObjRef, usize, Option<ObjRef>) {
        let mut prev = bucket;
        let mut prev_field = BUCKET_HEAD;
        let mut current = self.heap.load(bucket, BUCKET_HEAD).as_ref();
        while let Some(node) = current {
            if self.heap.load(node, KEY).as_scalar() == Some(key) {
                return (prev, prev_field, Some(node));
            }
            prev = node;
            prev_field = NEXT;
            current = self.heap.load(node, NEXT).as_ref();
        }
        (prev, prev_field, None)
    }
}

impl ConcurrentSet for HeapStripedHashSet {
    fn insert(&self, key: i64) -> bool {
        let (lock, bucket) = self.bucket(key);
        let _guard = lock.lock();
        let (_, _, found) = self.locate(*bucket, key);
        if found.is_some() {
            return false;
        }
        // Benchmarks size the heap for their key range up front, so
        // exhaustion here is a harness configuration error, not a
        // recoverable condition — and the STM competitor fails the same
        // run identically (`HeapFull` is non-retryable). Panicking keeps
        // the two implementations comparable instead of silently
        // dropping inserts.
        let node = self.heap.alloc(self.node_class).expect("heap full");
        self.heap.store(node, KEY, Word::from_scalar(key));
        self.heap.store(node, NEXT, self.heap.load(*bucket, BUCKET_HEAD));
        self.heap.store(*bucket, BUCKET_HEAD, Word::from_ref(node));
        true
    }

    fn remove(&self, key: i64) -> bool {
        let (lock, bucket) = self.bucket(key);
        let _guard = lock.lock();
        let (prev, prev_field, found) = self.locate(*bucket, key);
        let Some(node) = found else { return false };
        let after = self.heap.load(node, NEXT);
        self.heap.store(prev, prev_field, after);
        true
    }

    fn contains(&self, key: i64) -> bool {
        let (lock, bucket) = self.bucket(key);
        let _guard = lock.lock();
        self.locate(*bucket, key).2.is_some()
    }

    fn len(&self) -> usize {
        let mut n = 0;
        for (lock, bucket) in &self.buckets {
            let _guard = lock.lock();
            let mut current = self.heap.load(*bucket, BUCKET_HEAD).as_ref();
            while let Some(node) = current {
                n += 1;
                current = self.heap.load(node, NEXT).as_ref();
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock_sets::CoarseStdSet;
    use crate::set::{run_set_workload, sets_agree, SetWorkload};

    fn set(buckets: usize) -> HeapStripedHashSet {
        HeapStripedHashSet::new(Arc::new(Heap::new()), buckets)
    }

    #[test]
    fn basic_operations() {
        let s = set(8);
        assert!(s.insert(1));
        assert!(s.insert(9)); // same bucket
        assert!(!s.insert(1));
        assert_eq!(s.len(), 2);
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert!(s.contains(9));
    }

    #[test]
    fn agrees_with_reference() {
        assert!(sets_agree(&set(16), &CoarseStdSet::new(), 2_000, 55));
    }

    #[test]
    fn survives_concurrent_mixed_workload() {
        let s = set(32);
        let workload = SetWorkload {
            initial_size: 0,
            key_range: 256,
            ops_per_thread: 2_000,
            ..SetWorkload::default()
        };
        run_set_workload(&s, &workload, 4);
        assert!(s.len() <= 256);
        // Chains stay duplicate-free.
        let mut seen = std::collections::HashSet::new();
        for (lock, bucket) in &s.buckets {
            let _guard = lock.lock();
            let mut cur = s.heap.load(*bucket, BUCKET_HEAD).as_ref();
            while let Some(node) = cur {
                assert!(seen.insert(s.heap.load(node, KEY).as_scalar().unwrap()));
                cur = s.heap.load(node, NEXT).as_ref();
            }
        }
    }
}
