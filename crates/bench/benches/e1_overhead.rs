//! Bench for experiment E1: per-optimization-level execution time of
//! the TxIL benchmarks on the direct-access STM, against the
//! uninstrumented sequential baseline.
//!
//! Plain timing harness (median of 5 runs after warmup); run with
//! `cargo bench --bench e1_overhead`.

use std::sync::Arc;
use std::time::Instant;

use omt_bench::programs::txil_benchmarks;
use omt_heap::{Heap, Word};
use omt_opt::{compile, OptLevel};
use omt_vm::{BackendKind, SyncBackend, Vm};

fn report(name: &str, label: &str, mut run: impl FnMut()) {
    run(); // warmup
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    println!("{name:>14} / {label:<6} {:>9.3} ms", samples[samples.len() / 2]);
}

fn main() {
    for (name, src, entry, n) in txil_benchmarks() {
        let n = n / 5; // keep iterations small; the harness repeats
        {
            let (ir, _) = compile(src, OptLevel::O0).expect("compiles");
            let heap = Arc::new(Heap::new());
            let backend = Arc::new(SyncBackend::new(BackendKind::Sequential, heap.clone()));
            let vm = Vm::new(Arc::new(ir), heap, backend);
            report(name, "seq", || {
                vm.run(entry, &[Word::from_scalar(n)]).expect("runs");
            });
        }
        for level in OptLevel::ALL {
            let (ir, _) = compile(src, level).expect("compiles");
            let heap = Arc::new(Heap::new());
            let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
            let vm = Vm::new(Arc::new(ir), heap, backend);
            report(name, &level.to_string(), || {
                vm.run(entry, &[Word::from_scalar(n)]).expect("runs");
            });
        }
    }
}
