//! Criterion bench for experiment E1: per-optimization-level execution
//! time of the TxIL benchmarks on the direct-access STM, against the
//! uninstrumented sequential baseline.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use omt_bench::programs::txil_benchmarks;
use omt_heap::{Heap, Word};
use omt_opt::{compile, OptLevel};
use omt_vm::{BackendKind, SyncBackend, Vm};

fn bench_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_overhead");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for (name, src, entry, n) in txil_benchmarks() {
        let n = n / 5; // criterion repeats; keep iterations small
        // Sequential baseline.
        {
            let (ir, _) = compile(src, OptLevel::O0).expect("compiles");
            let heap = Arc::new(Heap::new());
            let backend = Arc::new(SyncBackend::new(BackendKind::Sequential, heap.clone()));
            let vm = Vm::new(Arc::new(ir), heap, backend);
            group.bench_with_input(BenchmarkId::new(name, "seq"), &n, |b, &n| {
                b.iter(|| vm.run(entry, &[Word::from_scalar(n)]).expect("runs"));
            });
        }
        for level in OptLevel::ALL {
            let (ir, _) = compile(src, level).expect("compiles");
            let heap = Arc::new(Heap::new());
            let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
            let vm = Vm::new(Arc::new(ir), heap, backend);
            group.bench_with_input(
                BenchmarkId::new(name, level.to_string()),
                &n,
                |b, &n| {
                    b.iter(|| vm.run(entry, &[Word::from_scalar(n)]).expect("runs"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
