//! Criterion bench for experiment E5: the runtime log filter's cost and
//! benefit on duplicate-heavy transactions.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use omt_bench::programs::COUNTER_CHURN;
use omt_heap::{Heap, Word};
use omt_opt::{compile, OptLevel};
use omt_stm::{Stm, StmConfig};
use omt_vm::{SyncBackend, Vm};

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_filter");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    // O1 leaves loop-carried duplicates for the runtime to handle — the
    // filter's job.
    for (label, filter) in [("on", true), ("off", false)] {
        let (ir, _) = compile(COUNTER_CHURN, OptLevel::O1).expect("compiles");
        let heap = Arc::new(Heap::new());
        let stm = Stm::with_config(
            heap.clone(),
            StmConfig { runtime_filter: filter, ..StmConfig::default() },
        );
        let backend = Arc::new(SyncBackend::DirectStm(stm));
        let vm = Vm::new(Arc::new(ir), heap, backend);
        group.bench_with_input(BenchmarkId::new("counter_churn", label), &8i64, |b, &n| {
            b.iter(|| vm.run("main", &[Word::from_scalar(n)]).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
