//! Bench for experiment E5: the runtime log filter's cost and benefit
//! on duplicate-heavy transactions.
//!
//! Plain timing harness (median of 5 runs after warmup); run with
//! `cargo bench --bench e5_filter`.

use std::sync::Arc;
use std::time::Instant;

use omt_bench::programs::COUNTER_CHURN;
use omt_heap::{Heap, Word};
use omt_opt::{compile, OptLevel};
use omt_stm::{Stm, StmConfig};
use omt_vm::{SyncBackend, Vm};

fn main() {
    // O1 leaves loop-carried duplicates for the runtime to handle — the
    // filter's job.
    for (label, filter) in [("on", true), ("off", false)] {
        let (ir, _) = compile(COUNTER_CHURN, OptLevel::O1).expect("compiles");
        let heap = Arc::new(Heap::new());
        let stm = Stm::with_config(
            heap.clone(),
            StmConfig { runtime_filter: filter, ..StmConfig::default() },
        );
        let backend = Arc::new(SyncBackend::DirectStm(stm));
        let vm = Vm::new(Arc::new(ir), heap, backend);
        let run = || {
            vm.run("main", &[Word::from_scalar(8)]).expect("runs");
        };
        run(); // warmup
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                run();
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        println!(
            "e5_filter / counter_churn filter={label:<3} {:>9.3} ms",
            samples[samples.len() / 2]
        );
    }
}
