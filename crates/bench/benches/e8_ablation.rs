//! Criterion bench for experiment E8: direct-access (update-in-place +
//! undo log) versus buffered-update (TL2-style) STM on the same
//! programs, plus the raw STM operation costs.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use omt_bench::programs::{txil_benchmarks, LIST_TRAVERSE};
use omt_heap::{ClassDesc, Heap, Word};
use omt_opt::{compile, OptLevel};
use omt_stm::Stm;
use omt_vm::{BackendKind, SyncBackend, Vm};

fn bench_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_direct_vs_buffered");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for (name, src, entry, n) in txil_benchmarks() {
        let n = n / 5;
        for kind in [BackendKind::DirectStm, BackendKind::Buffered] {
            let (ir, _) = compile(src, OptLevel::O4).expect("compiles");
            let heap = Arc::new(Heap::new());
            let backend = Arc::new(SyncBackend::new(kind, heap.clone()));
            let vm = Vm::new(Arc::new(ir), heap, backend);
            group.bench_with_input(BenchmarkId::new(name, kind.to_string()), &n, |b, &n| {
                b.iter(|| vm.run(entry, &[Word::from_scalar(n)]).expect("runs"));
            });
        }
    }
    let _ = LIST_TRAVERSE; // documented pair of the read-mostly case above
    group.finish();
}

/// Micro-costs of the decomposed operations themselves.
fn bench_barrier_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_barrier_primitives");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
    let objs: Vec<_> = (0..64).map(|_| heap.alloc(class).unwrap()).collect();
    let stm = Stm::new(heap.clone());

    group.bench_function("open_for_read_64_objects", |b| {
        b.iter(|| {
            let mut tx = stm.begin();
            for o in &objs {
                tx.open_for_read(*o).unwrap();
            }
            tx.commit().unwrap();
        });
    });

    group.bench_function("open_for_update_64_objects", |b| {
        b.iter(|| {
            let mut tx = stm.begin();
            for o in &objs {
                tx.open_for_update(*o).unwrap();
            }
            tx.commit().unwrap();
        });
    });

    group.bench_function("full_write_barrier_64_fields", |b| {
        b.iter(|| {
            let mut tx = stm.begin();
            for o in &objs {
                tx.write(*o, 0, Word::from_scalar(1)).unwrap();
            }
            tx.commit().unwrap();
        });
    });

    group.bench_function("filtered_rereads_64x8", |b| {
        b.iter(|| {
            let mut tx = stm.begin();
            for _ in 0..8 {
                for o in &objs {
                    tx.open_for_read(*o).unwrap();
                }
            }
            tx.commit().unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_designs, bench_barrier_primitives);
criterion_main!(benches);
