//! Bench for experiment E8: direct-access (update-in-place + undo log)
//! versus buffered-update (TL2-style) STM on the same programs, plus
//! the raw STM operation costs.
//!
//! Plain timing harness (median of 5 runs after warmup); run with
//! `cargo bench --bench e8_ablation`.

use std::sync::Arc;
use std::time::Instant;

use omt_bench::programs::{txil_benchmarks, LIST_TRAVERSE};
use omt_heap::{ClassDesc, Heap, Word};
use omt_opt::{compile, OptLevel};
use omt_stm::Stm;
use omt_vm::{BackendKind, SyncBackend, Vm};

fn report(name: &str, label: &str, mut run: impl FnMut()) {
    run(); // warmup
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    println!("{name:>28} / {label:<9} {:>9.3} ms", samples[samples.len() / 2]);
}

fn bench_designs() {
    for (name, src, entry, n) in txil_benchmarks() {
        let n = n / 5;
        for kind in [BackendKind::DirectStm, BackendKind::Buffered] {
            let (ir, _) = compile(src, OptLevel::O4).expect("compiles");
            let heap = Arc::new(Heap::new());
            let backend = Arc::new(SyncBackend::new(kind, heap.clone()));
            let vm = Vm::new(Arc::new(ir), heap, backend);
            report(name, &kind.to_string(), || {
                vm.run(entry, &[Word::from_scalar(n)]).expect("runs");
            });
        }
    }
    let _ = LIST_TRAVERSE; // documented pair of the read-mostly case above
}

/// Micro-costs of the decomposed operations themselves.
fn bench_barrier_primitives() {
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
    let objs: Vec<_> = (0..64).map(|_| heap.alloc(class).unwrap()).collect();
    let stm = Stm::new(heap.clone());

    report("open_for_read_64_objects", "-", || {
        let mut tx = stm.begin();
        for o in &objs {
            tx.open_for_read(*o).unwrap();
        }
        tx.commit().unwrap();
    });

    report("open_for_update_64_objects", "-", || {
        let mut tx = stm.begin();
        for o in &objs {
            tx.open_for_update(*o).unwrap();
        }
        tx.commit().unwrap();
    });

    report("full_write_barrier_64_fields", "-", || {
        let mut tx = stm.begin();
        for o in &objs {
            tx.write(*o, 0, Word::from_scalar(1)).unwrap();
        }
        tx.commit().unwrap();
    });

    report("filtered_rereads_64x8", "-", || {
        let mut tx = stm.begin();
        for _ in 0..8 {
            for o in &objs {
                tx.open_for_read(*o).unwrap();
            }
        }
        tx.commit().unwrap();
    });
}

fn main() {
    bench_designs();
    bench_barrier_primitives();
}
