//! Bench for experiments E2/E3: throughput of the set workloads per
//! implementation and thread count.
//!
//! Plain timing harness (median of 5 runs after warmup); run with
//! `cargo bench --bench e2_sets`.

use std::sync::Arc;
use std::time::Duration;

use omt_heap::Heap;
use omt_stm::Stm;
use omt_workloads::{
    prefill, run_set_workload, CoarseStdSet, ConcurrentSet, HandOverHandList, SetWorkload,
    StmHashSet, StmSortedList, StripedHashSet,
};

fn workload() -> SetWorkload {
    SetWorkload { initial_size: 256, key_range: 1024, ops_per_thread: 2_000, ..Default::default() }
}

fn bench_impl(group: &str, name: &str, set: &dyn ConcurrentSet, w: &SetWorkload, threads: usize) {
    run_set_workload(set, w, threads); // warmup
    let mut samples: Vec<Duration> =
        (0..5).map(|_| run_set_workload(set, w, threads).elapsed).collect();
    samples.sort();
    let median = samples[samples.len() / 2];
    let ops = (w.ops_per_thread * threads) as f64;
    let kops = ops / median.as_secs_f64() / 1e3;
    println!("{group} / {name:<12} threads={threads}  {kops:>9.1} Kops/s");
}

fn bench_hashtable() {
    let w = workload();
    let coarse = CoarseStdSet::new();
    prefill(&coarse, &w);
    let fine = StripedHashSet::new(64);
    prefill(&fine, &w);
    let stm = StmHashSet::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 64);
    prefill(&stm, &w);

    for threads in [1usize, 2, 4] {
        bench_impl("e2_hashtable", "coarse", &coarse, &w, threads);
        bench_impl("e2_hashtable", "fine-striped", &fine, &w, threads);
        bench_impl("e2_hashtable", "stm", &stm, &w, threads);
    }
}

fn bench_list() {
    let w = SetWorkload {
        initial_size: 64,
        key_range: 128,
        ops_per_thread: 300,
        ..SetWorkload::default()
    };
    let hoh = HandOverHandList::new();
    prefill(&hoh, &w);
    let stm = StmSortedList::new(Arc::new(Stm::new(Arc::new(Heap::new()))));
    prefill(&stm, &w);

    for threads in [1usize, 2, 4] {
        bench_impl("e3_sorted_list", "fine-hoh", &hoh, &w, threads);
        bench_impl("e3_sorted_list", "stm", &stm, &w, threads);
    }
}

fn main() {
    bench_hashtable();
    bench_list();
}
