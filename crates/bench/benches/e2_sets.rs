//! Criterion bench for experiments E2/E3: throughput of the set
//! workloads per implementation and thread count.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use omt_heap::Heap;
use omt_stm::Stm;
use omt_workloads::{
    prefill, run_set_workload, ConcurrentSet, CoarseStdSet, HandOverHandList, SetWorkload,
    StmHashSet, StmSortedList, StripedHashSet,
};

fn workload() -> SetWorkload {
    SetWorkload { initial_size: 256, key_range: 1024, ops_per_thread: 2_000, ..Default::default() }
}

fn bench_impl(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    name: &str,
    set: &dyn ConcurrentSet,
    threads: usize,
) {
    let w = workload();
    group.throughput(Throughput::Elements((w.ops_per_thread * threads) as u64));
    group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &t| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += run_set_workload(set, &w, t).elapsed;
            }
            total
        });
    });
}

fn bench_hashtable(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_hashtable");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let w = workload();

    let coarse = CoarseStdSet::new();
    prefill(&coarse, &w);
    let fine = StripedHashSet::new(64);
    prefill(&fine, &w);
    let stm = StmHashSet::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 64);
    prefill(&stm, &w);

    for threads in [1usize, 2, 4] {
        bench_impl(&mut group, "coarse", &coarse, threads);
        bench_impl(&mut group, "fine-striped", &fine, threads);
        bench_impl(&mut group, "stm", &stm, threads);
    }
    group.finish();
}

fn bench_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_sorted_list");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let w = SetWorkload {
        initial_size: 64,
        key_range: 128,
        ops_per_thread: 300,
        ..SetWorkload::default()
    };

    let hoh = HandOverHandList::new();
    prefill(&hoh, &w);
    let stm = StmSortedList::new(Arc::new(Stm::new(Arc::new(Heap::new()))));
    prefill(&stm, &w);

    for threads in [1usize, 2, 4] {
        for (name, set) in
            [("fine-hoh", &hoh as &dyn ConcurrentSet), ("stm", &stm as &dyn ConcurrentSet)]
        {
            group.throughput(Throughput::Elements((w.ops_per_thread * threads) as u64));
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &t| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += run_set_workload(set, &w, t).elapsed;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hashtable, bench_list);
criterion_main!(benches);
