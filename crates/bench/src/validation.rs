//! The measured E5b validation-cost experiment.
//!
//! Quantifies what the commit-sequence clock (DESIGN.md §4.7) buys:
//! read-mostly sweeps over the STM hashtable, the STM skip list, and a
//! read-only bank audit, each run twice — once with the clock enabled
//! and once with `commit_sequence: false` (the unconditional full
//! rescan, i.e. the pre-clock baseline). Unlike the throughput sweeps,
//! these STM instances run with statistics recording *on*: the payload
//! is the validation accounting (fast-path hits and read-log entries
//! scanned), not raw ops/s.
//!
//! Output mirrors the E2 harness: human tables plus a machine-readable
//! `BENCH_e5_validation.json` whose schema — including the headline
//! invariants, a >90% fast-path rate on the read-only sweep and
//! strictly fewer entries scanned per commit than the clock-off
//! baseline — is enforced by [`validate_report`] and CI's bench smoke
//! job.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use omt_heap::Heap;
use omt_stm::{Stm, StmConfig, StmStatsSnapshot};
use omt_workloads::{
    prefill, run_set_workload, Bank, OpMix, SetWorkload, StmBank, StmHashSet, StmSkipList,
};

use crate::experiments::Scale;
use crate::harness::Table;
use crate::json::Json;

/// Workloads swept, in report order.
pub const WORKLOADS: [&str; 4] =
    ["stm_hash_readonly", "stm_hash_readheavy", "stm_skiplist_readheavy", "bank_audit"];

/// Clock variants compared per workload, in report order.
pub const VARIANTS: [&str; 2] = ["clock_on", "clock_off"];

/// A 100% lookup mix (the O(1) read-only commit headline case).
const READ_ONLY: OpMix = OpMix { lookup: 100, insert: 0, remove: 0 };

/// One measured cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ValidationPoint {
    /// Workload name (one of [`WORKLOADS`]).
    pub workload: &'static str,
    /// Clock variant (one of [`VARIANTS`]).
    pub variant: &'static str,
    /// Threads driving the workload.
    pub threads: usize,
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Committed transactions (delta over the timed window).
    pub commits: u64,
    /// Validation runs.
    pub validations: u64,
    /// Validations satisfied by the commit-sequence fast path.
    pub validation_fast_path: u64,
    /// Read-log entries examined across all validations.
    pub validation_entries_scanned: u64,
}

impl ValidationPoint {
    /// Fraction of validations that skipped the read-log scan.
    pub fn fast_path_rate(&self) -> f64 {
        if self.validations == 0 {
            0.0
        } else {
            self.validation_fast_path as f64 / self.validations as f64
        }
    }

    /// Average read-log entries scanned per committed transaction.
    pub fn entries_scanned_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.validation_entries_scanned as f64 / self.commits as f64
        }
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// Thread counts swept.
    pub threads: Vec<usize>,
    /// One point per thread count × workload × variant.
    pub points: Vec<ValidationPoint>,
}

/// An STM configured for validation accounting: statistics on (they are
/// the measurement), commit-sequence clock per variant.
fn accounting_stm(variant: &str) -> Arc<Stm> {
    Arc::new(Stm::with_config(
        Arc::new(Heap::new()),
        StmConfig {
            record_stats: true,
            commit_sequence: variant == "clock_on",
            ..StmConfig::default()
        },
    ))
}

/// Runs the sweep at the given scale.
pub fn run_validation(scale: Scale) -> ValidationReport {
    let mut points = Vec::new();
    for &threads in scale.threads {
        for workload in WORKLOADS {
            for variant in VARIANTS {
                points.push(measure_point(scale, workload, variant, threads));
            }
        }
    }
    ValidationReport {
        mode: if scale == Scale::FULL { "full" } else { "quick" },
        threads: scale.threads.to_vec(),
        points,
    }
}

fn set_workload(scale: Scale, workload: &str) -> SetWorkload {
    match workload {
        "stm_hash_readonly" => SetWorkload {
            initial_size: 256,
            key_range: 1024,
            mix: READ_ONLY,
            ops_per_thread: 2_000 * scale.factor as usize,
            seed: 81,
        },
        "stm_hash_readheavy" => SetWorkload {
            initial_size: 256,
            key_range: 1024,
            mix: OpMix::READ_HEAVY,
            ops_per_thread: 2_000 * scale.factor as usize,
            seed: 83,
        },
        "stm_skiplist_readheavy" => SetWorkload {
            initial_size: 128,
            key_range: 512,
            mix: OpMix::READ_HEAVY,
            ops_per_thread: 1_000 * scale.factor as usize,
            seed: 87,
        },
        other => unreachable!("unknown set workload {other}"),
    }
}

fn measure_point(
    scale: Scale,
    workload: &'static str,
    variant: &'static str,
    threads: usize,
) -> ValidationPoint {
    let stm = accounting_stm(variant);
    let (ops, elapsed, delta) = if workload == "bank_audit" {
        run_bank_audit(scale, &stm, threads)
    } else {
        let w = set_workload(scale, workload);
        let outcome;
        // Prefill commits (and their clock bumps) are excluded from the
        // accounting window by snapshotting after the fill.
        let before;
        if workload == "stm_skiplist_readheavy" {
            let set = StmSkipList::new(stm.clone());
            prefill(&set, &w);
            before = stm.stats();
            outcome = run_set_workload(&set, &w, threads);
        } else {
            let set = StmHashSet::new(stm.clone(), 64);
            prefill(&set, &w);
            before = stm.stats();
            outcome = run_set_workload(&set, &w, threads);
        }
        (outcome.total_ops, outcome.elapsed, stm.stats().delta_since(&before))
    };
    ValidationPoint {
        workload,
        variant,
        threads,
        ops,
        elapsed,
        commits: delta.commits,
        validations: delta.validations,
        validation_fast_path: delta.validation_fast_path,
        validation_entries_scanned: delta.validation_entries_scanned,
    }
}

/// Read-only audits over a shared bank: every transaction reads all
/// accounts and commits without publishing anything.
fn run_bank_audit(
    scale: Scale,
    stm: &Arc<Stm>,
    threads: usize,
) -> (u64, Duration, StmStatsSnapshot) {
    const ACCOUNTS: usize = 32;
    let audits_per_thread = 500 * scale.factor as usize;
    let bank = StmBank::new(stm.clone(), ACCOUNTS, 1_000);
    let before = stm.stats();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..audits_per_thread {
                    assert_eq!(bank.total(), (ACCOUNTS as i64) * 1_000, "torn audit");
                }
            });
        }
    });
    let elapsed = start.elapsed();
    ((threads * audits_per_thread) as u64, elapsed, stm.stats().delta_since(&before))
}

impl ValidationReport {
    /// Looks up one cell of the sweep.
    pub fn point(&self, workload: &str, variant: &str, threads: usize) -> Option<&ValidationPoint> {
        self.points
            .iter()
            .find(|p| p.workload == workload && p.variant == variant && p.threads == threads)
    }

    /// Renders one validation-cost table per workload.
    pub fn print_tables(&self) {
        for workload in WORKLOADS {
            let mut headers: Vec<&'static str> = vec!["variant"];
            for &t in &self.threads {
                headers.push(Box::leak(format!("{t} thr fast-path%").into_boxed_str()));
                headers.push(Box::leak(format!("{t} thr scans/commit").into_boxed_str()));
            }
            let mut table = Table::new(format!("E5b validation cost: {workload}"), &headers);
            for variant in VARIANTS {
                let mut cells = vec![variant.to_string()];
                for &t in &self.threads {
                    let p = self.point(workload, variant, t).expect("complete sweep");
                    cells.push(format!("{:.1}", p.fast_path_rate() * 100.0));
                    cells.push(format!("{:.2}", p.entries_scanned_per_commit()));
                }
                table.row(cells);
            }
            table.print();
        }
    }

    /// The machine-readable form (schema checked by
    /// [`validate_report`]).
    pub fn to_json(&self) -> Json {
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Json::Obj(vec![
            ("experiment".into(), Json::Str("e5_validation".into())),
            ("mode".into(), Json::Str(self.mode.into())),
            ("host_cores".into(), Json::Num(host_cores as f64)),
            (
                "threads".into(),
                Json::Arr(self.threads.iter().map(|&t| Json::Num(t as f64)).collect()),
            ),
            (
                "workloads".into(),
                Json::Arr(WORKLOADS.iter().map(|w| Json::Str((*w).into())).collect()),
            ),
            (
                "variants".into(),
                Json::Arr(VARIANTS.iter().map(|v| Json::Str((*v).into())).collect()),
            ),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("workload".into(), Json::Str(p.workload.into())),
                                ("variant".into(), Json::Str(p.variant.into())),
                                ("threads".into(), Json::Num(p.threads as f64)),
                                ("ops".into(), Json::Num(p.ops as f64)),
                                ("elapsed_ms".into(), Json::Num(p.elapsed.as_secs_f64() * 1_000.0)),
                                ("commits".into(), Json::Num(p.commits as f64)),
                                ("validations".into(), Json::Num(p.validations as f64)),
                                (
                                    "validation_fast_path".into(),
                                    Json::Num(p.validation_fast_path as f64),
                                ),
                                (
                                    "validation_entries_scanned".into(),
                                    Json::Num(p.validation_entries_scanned as f64),
                                ),
                                ("fast_path_rate".into(), Json::Num(p.fast_path_rate())),
                                (
                                    "entries_scanned_per_commit".into(),
                                    Json::Num(p.entries_scanned_per_commit()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn point_num(point: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    point.get(key).and_then(Json::as_f64).filter(|n| *n >= 0.0).ok_or(format!("{ctx}: bad `{key}`"))
}

/// Checks that `json` is a well-formed validation report: required
/// keys, a complete threads × workloads × variants cross product,
/// internally consistent counters, and the experiment's headline
/// invariants — `clock_off` points never take the fast path, while the
/// read-only hashtable sweep under `clock_on` fast-paths more than 90%
/// of validations and scans strictly fewer entries per commit than the
/// `clock_off` baseline at the same thread count.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_report(json: &Json) -> Result<(), String> {
    let experiment = json.get("experiment").and_then(Json::as_str).ok_or("missing `experiment`")?;
    if experiment != "e5_validation" {
        return Err(format!("unexpected experiment `{experiment}`"));
    }
    let mode = json.get("mode").and_then(Json::as_str).ok_or("missing `mode`")?;
    if mode != "quick" && mode != "full" {
        return Err(format!("mode must be quick|full, got `{mode}`"));
    }
    json.get("host_cores")
        .and_then(Json::as_f64)
        .filter(|&n| n >= 1.0)
        .ok_or("missing or non-positive `host_cores`")?;

    let threads: Vec<usize> = json
        .get("threads")
        .and_then(Json::as_array)
        .ok_or("missing `threads`")?
        .iter()
        .map(|t| t.as_f64().filter(|&n| n >= 1.0).map(|n| n as usize))
        .collect::<Option<_>>()
        .ok_or("`threads` must be positive numbers")?;
    if threads.is_empty() {
        return Err("`threads` is empty".into());
    }
    let workloads: Vec<&str> = json
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or("missing `workloads`")?
        .iter()
        .map(|w| w.as_str())
        .collect::<Option<_>>()
        .ok_or("`workloads` must be strings")?;
    for required in WORKLOADS {
        if !workloads.contains(&required) {
            return Err(format!("missing workload `{required}`"));
        }
    }
    let variants: Vec<&str> = json
        .get("variants")
        .and_then(Json::as_array)
        .ok_or("missing `variants`")?
        .iter()
        .map(|v| v.as_str())
        .collect::<Option<_>>()
        .ok_or("`variants` must be strings")?;
    for required in VARIANTS {
        if !variants.contains(&required) {
            return Err(format!("missing variant `{required}`"));
        }
    }

    let points = json.get("points").and_then(Json::as_array).ok_or("missing `points`")?;
    let expected = threads.len() * workloads.len() * variants.len();
    if points.len() != expected {
        return Err(format!("expected {expected} points, got {}", points.len()));
    }

    let find = |workload: &str, variant: &str, t: usize| {
        points.iter().find(|p| {
            p.get("workload").and_then(Json::as_str) == Some(workload)
                && p.get("variant").and_then(Json::as_str) == Some(variant)
                && p.get("threads").and_then(Json::as_f64) == Some(t as f64)
        })
    };
    for &t in &threads {
        for &workload in &workloads {
            for &variant in &variants {
                let ctx = format!("{workload}/{variant}/{t}");
                let point = find(workload, variant, t).ok_or(format!("missing point {ctx}"))?;
                let ops = point_num(point, "ops", &ctx)?;
                if ops < 1.0 {
                    return Err(format!("{ctx}: no operations ran"));
                }
                point
                    .get("elapsed_ms")
                    .and_then(Json::as_f64)
                    .filter(|&n| n > 0.0)
                    .ok_or(format!("{ctx}: bad `elapsed_ms`"))?;
                let commits = point_num(point, "commits", &ctx)?;
                if commits < 1.0 {
                    return Err(format!("{ctx}: no transaction committed"));
                }
                let validations = point_num(point, "validations", &ctx)?;
                let fast = point_num(point, "validation_fast_path", &ctx)?;
                let scanned = point_num(point, "validation_entries_scanned", &ctx)?;
                if fast > validations {
                    return Err(format!("{ctx}: fast-path count exceeds validations"));
                }
                if variant == "clock_off" && fast != 0.0 {
                    return Err(format!("{ctx}: knob off but the fast path fired"));
                }
                let rate = point_num(point, "fast_path_rate", &ctx)?;
                if validations > 0.0 && (rate - fast / validations).abs() > 1e-9 {
                    return Err(format!("{ctx}: `fast_path_rate` inconsistent with counts"));
                }
                let per_commit = point_num(point, "entries_scanned_per_commit", &ctx)?;
                if (per_commit - scanned / commits).abs() > 1e-9 {
                    return Err(format!(
                        "{ctx}: `entries_scanned_per_commit` inconsistent with counts"
                    ));
                }
            }
        }
    }

    // Headline invariants: the read-only sweep under the clock must
    // fast-path >90% of validations and beat the clock-off baseline on
    // entries scanned per commit, at every thread count.
    for &t in &threads {
        let ctx = format!("stm_hash_readonly/clock_on/{t}");
        let on = find("stm_hash_readonly", "clock_on", t).ok_or(format!("missing {ctx}"))?;
        let off = find("stm_hash_readonly", "clock_off", t)
            .ok_or(format!("missing stm_hash_readonly/clock_off/{t}"))?;
        let rate = point_num(on, "fast_path_rate", &ctx)?;
        if rate <= 0.9 {
            return Err(format!("{ctx}: fast-path rate {rate:.3} not above 90%"));
        }
        let on_scans = point_num(on, "entries_scanned_per_commit", &ctx)?;
        let off_scans = point_num(off, "entries_scanned_per_commit", &ctx)?;
        if on_scans >= off_scans {
            return Err(format!(
                "{ctx}: scans/commit {on_scans:.3} not below clock-off baseline {off_scans:.3}"
            ));
        }
    }
    Ok(())
}

/// Where the report is written: `BENCH_e5_validation.json` at the
/// repository root (found by walking up from the working directory),
/// or the working directory itself outside a checkout.
pub fn default_output_path() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        if dir.join(".git").exists() {
            return dir.join("BENCH_e5_validation.json");
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd.join("BENCH_e5_validation.json"),
        }
    }
}

/// Serializes the report, re-parses it, validates the schema, and
/// writes it to `path`.
///
/// # Errors
///
/// I/O failure writing the file.
///
/// # Panics
///
/// Panics if the emitted report fails its own schema validation (a
/// harness bug, not an environment problem).
pub fn write_report(report: &ValidationReport, path: &Path) -> std::io::Result<()> {
    let json = report.to_json();
    let text = json.to_string();
    let reparsed = crate::json::parse(&text).expect("emitter produced valid JSON");
    validate_report(&reparsed).expect("emitted report matches schema");
    std::fs::write(path, text + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: Scale = Scale { factor: 1, threads: &[1, 2] };

    #[test]
    fn sweep_meets_the_headline_invariants() {
        let report = run_validation(TINY);
        assert_eq!(report.points.len(), 2 * WORKLOADS.len() * VARIANTS.len());
        // The acceptance criteria, asserted directly on the measured
        // report: a >90% fast-path rate on the read-only hashtable
        // sweep and strictly fewer scans per commit than the clock-off
        // baseline.
        for &t in TINY.threads {
            let on = report.point("stm_hash_readonly", "clock_on", t).unwrap();
            let off = report.point("stm_hash_readonly", "clock_off", t).unwrap();
            assert!(on.fast_path_rate() > 0.9, "rate {} at {t} threads", on.fast_path_rate());
            assert!(on.entries_scanned_per_commit() < off.entries_scanned_per_commit());
            assert_eq!(off.validation_fast_path, 0);
        }
        let json = report.to_json();
        let reparsed = crate::json::parse(&json.to_string()).unwrap();
        validate_report(&reparsed).unwrap();
        report.print_tables();
    }

    #[test]
    fn validation_rejects_a_fast_path_hit_with_the_knob_off() {
        let report = run_validation(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        for (key, value) in &mut members {
            if key == "points" {
                let Json::Arr(points) = value else { panic!("array") };
                for p in points {
                    let Json::Obj(fields) = p else { panic!("object") };
                    let off = fields
                        .iter()
                        .any(|(k, v)| k == "variant" && v.as_str() == Some("clock_off"));
                    if off {
                        for (k, v) in fields.iter_mut() {
                            if k == "validation_fast_path" {
                                *v = Json::Num(1.0);
                            }
                        }
                    }
                }
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("knob off") || err.contains("inconsistent"), "got: {err}");
    }

    #[test]
    fn validation_rejects_wrong_experiment() {
        let json = crate::json::parse("{\"experiment\": \"e2_scalability\"}").unwrap();
        assert!(validate_report(&json).is_err());
    }

    #[test]
    fn output_path_lands_at_a_repo_root_when_inside_one() {
        let path = default_output_path();
        assert!(path.ends_with("BENCH_e5_validation.json"));
    }
}
