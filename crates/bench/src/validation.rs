//! The measured E5b validation-cost experiment.
//!
//! Quantifies what the commit-sequence clock (DESIGN.md §4.7) buys:
//! read-mostly sweeps over the STM hashtable, the STM skip list, and a
//! read-only bank audit, each run twice — once with the clock enabled
//! and once with `commit_sequence: false` (the unconditional full
//! rescan, i.e. the pre-clock baseline). Unlike the throughput sweeps,
//! these STM instances run with statistics recording *on*: the payload
//! is the validation accounting (fast-path hits and read-log entries
//! scanned), not raw ops/s.
//!
//! Output mirrors the E2 harness: human tables plus a machine-readable
//! `BENCH_e5_validation.json` whose schema — including the headline
//! invariants, a >90% fast-path rate on the read-only sweep and
//! strictly fewer entries scanned per commit than the clock-off
//! baseline — is enforced by [`validate_report`] and CI's bench smoke
//! job.
//!
//! The same report carries the E5c snapshot-read sweep (DESIGN.md
//! §4.10): a read-mostly audit workload run with and without
//! `snapshot_reads`, measuring read-only commit/abort counts, snapshot
//! hits, and timestamp extensions. Its headline invariant — read-only
//! transactions are abort-free under writer churn with the knob on —
//! is schema-checked alongside the E5b ones. E5c lands as *new* report
//! fields (`snapshot_variants`, `snapshot_points`); the E5b fields are
//! unchanged so existing consumers keep parsing.
//!
//! The report also carries the E5d clock-organization sweep (DESIGN.md
//! §4.11): every [`omt_stm::ClockMode`] run over a snapshot read-mostly
//! audit and an update-heavy disjoint-account bank, measuring
//! update-commit throughput and the decentralized clocks' contention
//! counters (`clock_cas_failures`, `clock_bump_retries`). Headline
//! invariants: only `pass_on_fail` may report commit-word CAS failures,
//! the audit stays read-only-abort-free under every mode (Deferred's
//! leading stamps force raise-then-extend, never an abort), and on
//! hosts with real parallelism at least one decentralized mode must
//! deliver ≥2x the update-commit throughput of `global` at the highest
//! swept thread count. E5d lands as new fields (`clock_modes`,
//! `clock_workloads`, `clock_points`), again additive-only. The
//! host-conditional gate's disposition is recorded explicitly in
//! `e5d_throughput_gate` (`"passed"` / `"skipped_host_conditional"`),
//! so a small-host report can never be mistaken for a passing one.
//!
//! Finally the report carries the E5e multi-version sweep (DESIGN.md
//! §4.13): an update-heavy read-write audit — every reader's snapshot
//! deterministically straddles a bulk publish of its whole working set,
//! the shape timestamp extension *cannot* save — run at
//! [`omt_stm::StmConfig::mv_depth`] 0, 1, and 4. Headline invariant,
//! schema-enforced: reader aborts are exactly zero at every depth ≥ 1
//! on the same workload where depth 0 reports them nonzero. E5e lands
//! as new fields (`mv_depths`, `mv_points`), additive-only.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use omt_heap::{ClassDesc, Heap, ObjRef, Word};
use omt_stm::{ClockMode, Stm, StmConfig, StmStatsSnapshot};
use omt_workloads::{
    prefill, run_set_workload, Bank, OpMix, SetWorkload, StmBank, StmHashSet, StmSkipList,
};

use crate::experiments::Scale;
use crate::harness::Table;
use crate::json::Json;

/// Workloads swept, in report order.
pub const WORKLOADS: [&str; 4] =
    ["stm_hash_readonly", "stm_hash_readheavy", "stm_skiplist_readheavy", "bank_audit"];

/// Clock variants compared per workload, in report order.
pub const VARIANTS: [&str; 2] = ["clock_on", "clock_off"];

/// Snapshot-read variants compared by the E5c sweep, in report order.
pub const SNAPSHOT_VARIANTS: [&str; 2] = ["snapshot_on", "snapshot_off"];

/// The single E5c workload: one churned hot cell plus a cold working
/// set, audited by read-only transactions that read hot-first.
pub const SNAPSHOT_WORKLOAD: &str = "readmostly_audit";

/// Clock organizations compared by the E5d sweep, in report order
/// (the [`ClockMode::name`] strings, `ClockMode::ALL` order).
pub const CLOCK_MODES: [&str; 4] = ["global", "pass_on_fail", "deferred", "striped"];

/// Workloads swept by E5d: the E5c read-mostly audit (snapshot reads
/// against leading stamps) and an update-heavy bank over per-thread
/// disjoint account pairs, where the shared commit clock is the *only*
/// cross-thread write — the sharpest probe of clock contention.
pub const CLOCK_WORKLOADS: [&str; 2] = ["readmostly_audit", "bank_update"];

/// Version-chain depths swept by E5e: 0 is the chain-free baseline
/// (today's runtime, byte-identical stats), 1 the minimal depth that
/// makes the deterministic straddle abort-free, 4 a bounded ring with
/// headroom.
pub const MV_DEPTHS: [usize; 3] = [0, 1, 4];

/// The single E5e workload: an update-heavy audit in which every
/// reader's snapshot deterministically straddles a bulk publish of its
/// *entire* working set — the shape timestamp extension cannot save,
/// because the already-read half is stale at any newer snapshot.
pub const MV_WORKLOAD: &str = "readwrite_audit";

/// Thread counts beyond [`Scale::threads`] probed when the host has
/// the cores for them (clamped, so a laptop sweep stays honest).
const EXTENDED_THREADS: [usize; 3] = [16, 32, 64];

/// A 100% lookup mix (the O(1) read-only commit headline case).
const READ_ONLY: OpMix = OpMix { lookup: 100, insert: 0, remove: 0 };

/// One measured cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ValidationPoint {
    /// Workload name (one of [`WORKLOADS`]).
    pub workload: &'static str,
    /// Clock variant (one of [`VARIANTS`]).
    pub variant: &'static str,
    /// Threads driving the workload.
    pub threads: usize,
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Committed transactions (delta over the timed window).
    pub commits: u64,
    /// Validation runs.
    pub validations: u64,
    /// Validations satisfied by the commit-sequence fast path.
    pub validation_fast_path: u64,
    /// Read-log entries examined across all validations.
    pub validation_entries_scanned: u64,
}

impl ValidationPoint {
    /// Fraction of validations that skipped the read-log scan.
    pub fn fast_path_rate(&self) -> f64 {
        if self.validations == 0 {
            0.0
        } else {
            self.validation_fast_path as f64 / self.validations as f64
        }
    }

    /// Average read-log entries scanned per committed transaction.
    pub fn entries_scanned_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.validation_entries_scanned as f64 / self.commits as f64
        }
    }
}

/// One measured cell of the E5c snapshot-read sweep.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotPoint {
    /// Always [`SNAPSHOT_WORKLOAD`].
    pub workload: &'static str,
    /// Snapshot variant (one of [`SNAPSHOT_VARIANTS`]).
    pub variant: &'static str,
    /// Reader threads driving the audit (the churner is extra).
    pub threads: usize,
    /// Read-only audit rounds completed.
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Committed transactions (readers *and* churner).
    pub commits: u64,
    /// Read-only transactions that committed.
    pub readonly_commits: u64,
    /// Read-only transactions that aborted.
    pub readonly_aborts: u64,
    /// Reads accepted by the O(1) `version <= read_ver` check.
    pub snapshot_read_hits: u64,
    /// Successful timestamp extensions.
    pub ts_extensions: u64,
    /// Extensions that found a genuinely stale read entry.
    pub extension_failures: u64,
}

impl SnapshotPoint {
    /// Fraction of read-only attempts that aborted (the E5c headline:
    /// 0.0 under `snapshot_on`).
    pub fn readonly_abort_rate(&self) -> f64 {
        let total = self.readonly_commits + self.readonly_aborts;
        if total == 0 {
            0.0
        } else {
            self.readonly_aborts as f64 / total as f64
        }
    }
}

/// One measured cell of the E5d clock-organization sweep.
#[derive(Debug, Clone, Copy)]
pub struct ClockPoint {
    /// Workload name (one of [`CLOCK_WORKLOADS`]).
    pub workload: &'static str,
    /// Clock organization (one of [`CLOCK_MODES`]).
    pub mode: &'static str,
    /// Threads driving the workload (the audit's churner is extra).
    pub threads: usize,
    /// Workload rounds completed (audits or transfers).
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Committed transactions.
    pub commits: u64,
    /// Committed transactions that published updates (claimed a commit
    /// stamp) — the numerator of the E5d throughput headline.
    pub update_commits: u64,
    /// Read-only transactions that aborted.
    pub readonly_aborts: u64,
    /// Successful timestamp extensions (under `deferred`, these include
    /// every raise-then-extend at a leading stamp).
    pub ts_extensions: u64,
    /// Commit-word CAS attempts that lost and adopted the winner's
    /// value. Structurally zero in every mode but `pass_on_fail`.
    pub clock_cas_failures: u64,
    /// Per-stripe stamp-reservation CAS retries (`deferred` only, and
    /// only when threads alias onto one home stripe).
    pub clock_bump_retries: u64,
}

impl ClockPoint {
    /// Update-publishing commits per second — the throughput the clock
    /// organization actually gates.
    pub fn update_commits_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.update_commits as f64 / secs
        }
    }

    /// Commit-word CAS failures per update commit (0 if none).
    pub fn cas_failure_rate(&self) -> f64 {
        if self.update_commits == 0 {
            0.0
        } else {
            self.clock_cas_failures as f64 / self.update_commits as f64
        }
    }
}

/// One measured cell of the E5e multi-version sweep.
#[derive(Debug, Clone, Copy)]
pub struct MvPoint {
    /// Always [`MV_WORKLOAD`].
    pub workload: &'static str,
    /// The [`StmConfig::mv_depth`] this point ran under (one of
    /// [`MV_DEPTHS`]).
    pub mv_depth: usize,
    /// Reader threads driving the audit (the bulk writer is extra).
    pub threads: usize,
    /// Audit rounds attempted (every one of them straddles a publish).
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Committed transactions (readers *and* the bulk writer).
    pub commits: u64,
    /// Read-only transactions that committed.
    pub readonly_commits: u64,
    /// Read-only transactions that aborted — the E5e headline: exactly
    /// zero at every depth ≥ 1, nonzero at depth 0.
    pub readonly_aborts: u64,
    /// Straddled reads served a retired version from a chain.
    pub mv_read_hits: u64,
    /// Chain walks that found no entry covering the snapshot.
    pub mv_chain_misses: u64,
    /// Successful timestamp extensions.
    pub ts_extensions: u64,
    /// Extensions that found a genuinely stale read entry (the depth-0
    /// abort mechanism).
    pub extension_failures: u64,
}

impl MvPoint {
    /// Fraction of read-only attempts that aborted (0.0 at any depth
    /// ≥ 1 on this workload).
    pub fn readonly_abort_rate(&self) -> f64 {
        let total = self.readonly_commits + self.readonly_aborts;
        if total == 0 {
            0.0
        } else {
            self.readonly_aborts as f64 / total as f64
        }
    }
}

/// One requested thread count and what actually ran after clamping to
/// the host's cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadAxisEntry {
    /// The count the scale (or [`EXTENDED_THREADS`]) asked for.
    pub requested: usize,
    /// The count actually run: `min(requested, host cores)`.
    pub effective: usize,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// Thread counts swept (the deduplicated effective axis).
    pub threads: Vec<usize>,
    /// Requested-vs-effective mapping for every count asked for, so a
    /// report from a small host records *that* the axis was clamped
    /// rather than silently looking like a smaller request.
    pub thread_axis: Vec<ThreadAxisEntry>,
    /// One point per thread count × workload × variant.
    pub points: Vec<ValidationPoint>,
    /// E5c: one point per thread count × snapshot variant.
    pub snapshot_points: Vec<SnapshotPoint>,
    /// E5d: one point per thread count × clock workload × clock mode.
    pub clock_points: Vec<ClockPoint>,
    /// E5e: one point per thread count × chain depth.
    pub mv_points: Vec<MvPoint>,
}

/// An STM configured for validation accounting: statistics on (they are
/// the measurement), commit-sequence clock per variant.
fn accounting_stm(variant: &str) -> Arc<Stm> {
    Arc::new(Stm::with_config(
        Arc::new(Heap::new()),
        StmConfig {
            record_stats: true,
            commit_sequence: variant == "clock_on",
            ..StmConfig::default()
        },
    ))
}

/// The full requested axis ([`Scale::threads`] plus
/// [`EXTENDED_THREADS`], sorted, deduplicated) with every count clamped
/// to the host's cores — *every* count, not just the extensions:
/// oversubscribed points measure the scheduler, not the STM, whichever
/// part of the axis they came from. The requested values are kept
/// alongside so the report records the clamping instead of silently
/// looking like a smaller sweep was asked for.
pub fn sweep_thread_axis(scale: Scale) -> Vec<ThreadAxisEntry> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut requested: Vec<usize> = scale.threads.to_vec();
    requested.extend(EXTENDED_THREADS);
    requested.sort_unstable();
    requested.dedup();
    requested
        .into_iter()
        .map(|r| ThreadAxisEntry { requested: r, effective: r.min(cores) })
        .collect()
}

/// The thread axis actually swept: the effective side of
/// [`sweep_thread_axis`], deduplicated again (clamping can collapse
/// several requested counts onto the core count).
pub fn sweep_threads(scale: Scale) -> Vec<usize> {
    let mut threads: Vec<usize> =
        sweep_thread_axis(scale).into_iter().map(|e| e.effective).collect();
    threads.sort_unstable();
    threads.dedup();
    threads
}

/// Runs the sweep at the given scale.
pub fn run_validation(scale: Scale) -> ValidationReport {
    let thread_axis = sweep_thread_axis(scale);
    let threads_axis = sweep_threads(scale);
    let mut points = Vec::new();
    let mut snapshot_points = Vec::new();
    let mut clock_points = Vec::new();
    let mut mv_points = Vec::new();
    for &threads in &threads_axis {
        for workload in WORKLOADS {
            for variant in VARIANTS {
                points.push(measure_point(scale, workload, variant, threads));
            }
        }
        for variant in SNAPSHOT_VARIANTS {
            snapshot_points.push(measure_snapshot_point(scale, variant, threads));
        }
        for workload in CLOCK_WORKLOADS {
            for mode in ClockMode::ALL {
                clock_points.push(measure_clock_point(scale, workload, mode, threads));
            }
        }
        for &depth in &MV_DEPTHS {
            mv_points.push(measure_mv_point(scale, depth, threads));
        }
    }
    ValidationReport {
        mode: if scale == Scale::FULL { "full" } else { "quick" },
        threads: threads_axis,
        thread_axis,
        points,
        snapshot_points,
        clock_points,
        mv_points,
    }
}

fn set_workload(scale: Scale, workload: &str) -> SetWorkload {
    match workload {
        "stm_hash_readonly" => SetWorkload {
            initial_size: 256,
            key_range: 1024,
            mix: READ_ONLY,
            ops_per_thread: 2_000 * scale.factor as usize,
            seed: 81,
        },
        "stm_hash_readheavy" => SetWorkload {
            initial_size: 256,
            key_range: 1024,
            mix: OpMix::READ_HEAVY,
            ops_per_thread: 2_000 * scale.factor as usize,
            seed: 83,
        },
        "stm_skiplist_readheavy" => SetWorkload {
            initial_size: 128,
            key_range: 512,
            mix: OpMix::READ_HEAVY,
            ops_per_thread: 1_000 * scale.factor as usize,
            seed: 87,
        },
        other => unreachable!("unknown set workload {other}"),
    }
}

fn measure_point(
    scale: Scale,
    workload: &'static str,
    variant: &'static str,
    threads: usize,
) -> ValidationPoint {
    let stm = accounting_stm(variant);
    let (ops, elapsed, delta) = if workload == "bank_audit" {
        run_bank_audit(scale, &stm, threads)
    } else {
        let w = set_workload(scale, workload);
        let outcome;
        // Prefill commits (and their clock bumps) are excluded from the
        // accounting window by snapshotting after the fill.
        let before;
        if workload == "stm_skiplist_readheavy" {
            let set = StmSkipList::new(stm.clone());
            prefill(&set, &w);
            before = stm.stats();
            outcome = run_set_workload(&set, &w, threads);
        } else {
            let set = StmHashSet::new(stm.clone(), 64);
            prefill(&set, &w);
            before = stm.stats();
            outcome = run_set_workload(&set, &w, threads);
        }
        (outcome.total_ops, outcome.elapsed, stm.stats().delta_since(&before))
    };
    ValidationPoint {
        workload,
        variant,
        threads,
        ops,
        elapsed,
        commits: delta.commits,
        validations: delta.validations,
        validation_fast_path: delta.validation_fast_path,
        validation_entries_scanned: delta.validation_entries_scanned,
    }
}

/// Read-only audits over a shared bank: every transaction reads all
/// accounts and commits without publishing anything.
fn run_bank_audit(
    scale: Scale,
    stm: &Arc<Stm>,
    threads: usize,
) -> (u64, Duration, StmStatsSnapshot) {
    const ACCOUNTS: usize = 32;
    let audits_per_thread = 500 * scale.factor as usize;
    let bank = StmBank::new(stm.clone(), ACCOUNTS, 1_000);
    let before = stm.stats();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..audits_per_thread {
                    assert_eq!(bank.total(), (ACCOUNTS as i64) * 1_000, "torn audit");
                }
            });
        }
    });
    let elapsed = start.elapsed();
    ((threads * audits_per_thread) as u64, elapsed, stm.stats().delta_since(&before))
}

/// The E5c read-mostly audit: one hot cell continuously churned by a
/// dedicated writer thread while `threads` readers run read-only
/// audits that read the hot cell *first* and a cold working set
/// afterwards — the straddle-prone shape that plain commit-time
/// validation aborts. A yield between the hot and cold reads invites a
/// churn commit into the window, so the variant comparison has teeth
/// even on small hosts. With `snapshot_reads` on, every audit commits
/// on its first attempt (DESIGN.md §4.10's abort-freedom argument);
/// `ops` counts committed audit rounds, while `commits` also includes
/// the churner's.
fn measure_snapshot_point(scale: Scale, variant: &'static str, threads: usize) -> SnapshotPoint {
    let config = match variant {
        "snapshot_on" => StmConfig {
            record_stats: true,
            snapshot_reads: true,
            // Waiting out an in-flight churn commit (instead of falling
            // back to optimistic logging of an owned word) is what
            // keeps the audits abort-free.
            doom_wait_spins: 1 << 20,
            ..StmConfig::default()
        },
        "snapshot_off" => StmConfig { record_stats: true, ..StmConfig::default() },
        other => unreachable!("unknown snapshot variant {other}"),
    };
    let (ops, elapsed, delta) = run_readmostly_audit(scale, config, threads);
    SnapshotPoint {
        workload: SNAPSHOT_WORKLOAD,
        variant,
        threads,
        ops,
        elapsed,
        commits: delta.commits,
        readonly_commits: delta.readonly_commits,
        readonly_aborts: delta.readonly_aborts,
        snapshot_read_hits: delta.snapshot_read_hits,
        ts_extensions: delta.ts_extensions,
        extension_failures: delta.extension_failures,
    }
}

/// The audit loop shared by E5c's variant comparison and E5d's clock
/// sweep.
fn run_readmostly_audit(
    scale: Scale,
    config: StmConfig,
    threads: usize,
) -> (u64, Duration, StmStatsSnapshot) {
    const COLD_CELLS: usize = 32;
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("E5cCell", &["v"]));
    let stm = Arc::new(Stm::with_config(heap.clone(), config));
    let cells: Vec<ObjRef> = (0..1 + COLD_CELLS).map(|_| heap.alloc(class).unwrap()).collect();
    for (i, &c) in cells.iter().enumerate() {
        heap.store(c, 0, Word::from_scalar(i as i64));
    }
    let hot = cells[0];
    let rounds_per_thread = 300 * scale.factor as usize;
    let done = std::sync::atomic::AtomicBool::new(false);
    let before = stm.stats();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let churner = scope.spawn(|| {
            while !done.load(std::sync::atomic::Ordering::Acquire) {
                stm.atomically(|tx| {
                    let v = tx.read(hot, 0)?.as_scalar().unwrap();
                    tx.write(hot, 0, Word::from_scalar(v + 1))
                });
            }
        });
        let readers: Vec<_> = (0..threads)
            .map(|_| {
                let stm = &stm;
                let cells = &cells;
                scope.spawn(move || {
                    for _ in 0..rounds_per_thread {
                        stm.atomically(|tx| {
                            tx.read(hot, 0)?;
                            std::thread::yield_now();
                            for &cold in &cells[1..] {
                                tx.read(cold, 0)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for reader in readers {
            reader.join().unwrap();
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        churner.join().unwrap();
    });
    let elapsed = start.elapsed();
    let delta = stm.stats().delta_since(&before);
    ((threads * rounds_per_thread) as u64, elapsed, delta)
}

/// The STM configuration every E5d point runs under: snapshot reads on
/// (so Deferred's leading stamps are actually met by readers) with the
/// clock organization under test.
fn clock_mode_config(mode: ClockMode) -> StmConfig {
    StmConfig {
        record_stats: true,
        snapshot_reads: true,
        doom_wait_spins: 1 << 20,
        clock_mode: mode,
        ..StmConfig::default()
    }
}

/// One E5d cell: the chosen workload under the chosen clock mode.
fn measure_clock_point(
    scale: Scale,
    workload: &'static str,
    mode: ClockMode,
    threads: usize,
) -> ClockPoint {
    let config = clock_mode_config(mode);
    let (ops, elapsed, delta) = match workload {
        "readmostly_audit" => run_readmostly_audit(scale, config, threads),
        "bank_update" => run_bank_update(scale, config, threads),
        other => unreachable!("unknown clock workload {other}"),
    };
    ClockPoint {
        workload,
        mode: mode.name(),
        threads,
        ops,
        elapsed,
        commits: delta.commits,
        update_commits: delta.commits - delta.readonly_commits,
        readonly_aborts: delta.readonly_aborts,
        ts_extensions: delta.ts_extensions,
        clock_cas_failures: delta.clock_cas_failures,
        clock_bump_retries: delta.clock_bump_retries,
    }
}

/// The update-heavy probe: each thread transfers back and forth inside
/// its *own* account pair. Transactions never conflict on data, so the
/// commit-clock claim is the only cross-thread interaction — exactly
/// the serialization point the decentralized modes remove.
fn run_bank_update(
    scale: Scale,
    config: StmConfig,
    threads: usize,
) -> (u64, Duration, StmStatsSnapshot) {
    let stm = Arc::new(Stm::with_config(Arc::new(Heap::new()), config));
    let bank = StmBank::new(stm.clone(), 2 * threads.max(1), 1_000);
    let transfers_per_thread = 1_000 * scale.factor as usize;
    let before = stm.stats();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let bank = &bank;
            scope.spawn(move || {
                let (a, b) = (2 * t, 2 * t + 1);
                for i in 0..transfers_per_thread {
                    if i % 2 == 0 {
                        bank.transfer(a, b, 1);
                    } else {
                        bank.transfer(b, a, 1);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let delta = stm.stats().delta_since(&before);
    assert_eq!(bank.total(), 2 * threads.max(1) as i64 * 1_000, "money not conserved");
    ((threads * transfers_per_thread) as u64, elapsed, delta)
}

/// One E5e cell: the straddling read-write audit at the given chain
/// depth.
fn measure_mv_point(scale: Scale, depth: usize, threads: usize) -> MvPoint {
    let config = StmConfig {
        record_stats: true,
        snapshot_reads: true,
        // As in E5c: foreign owners are waited out, not fallen back
        // from, so the only abort mechanism left is a failed extension.
        doom_wait_spins: 1 << 20,
        mv_depth: depth,
        ..StmConfig::default()
    };
    let (ops, elapsed, delta) = run_readwrite_audit(scale, config, threads);
    MvPoint {
        workload: MV_WORKLOAD,
        mv_depth: depth,
        threads,
        ops,
        elapsed,
        commits: delta.commits,
        readonly_commits: delta.readonly_commits,
        readonly_aborts: delta.readonly_aborts,
        mv_read_hits: delta.mv_read_hits,
        mv_chain_misses: delta.mv_chain_misses,
        ts_extensions: delta.ts_extensions,
        extension_failures: delta.extension_failures,
    }
}

/// The E5e update-heavy audit, run in deterministic lock-step: each
/// round, every reader opens a snapshot and reads the first half of
/// the cells; a barrier; one bulk writer republishes *every* cell in a
/// single commit; a barrier; the readers read the second half and try
/// to commit. The straddle is total — the already-read half is stale
/// at any newer snapshot — so timestamp extension deterministically
/// fails and depth 0 aborts every round, while any depth ≥ 1 serves
/// the second half from the chains and commits abort-free at the
/// original snapshot. `ops` counts attempted audit rounds (all of
/// them, so the depth-0 points still report the work they drove).
fn run_readwrite_audit(
    scale: Scale,
    config: StmConfig,
    threads: usize,
) -> (u64, Duration, StmStatsSnapshot) {
    const CELLS: usize = 16;
    const HALF: usize = CELLS / 2;
    // Prefilled `i` and always bumped in lock-step: any consistent
    // snapshot sums to 120 + 16k for some round k.
    const BASE_SUM: i64 = (CELLS * (CELLS - 1) / 2) as i64;
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("E5eCell", &["v"]));
    let stm = Arc::new(Stm::with_config(heap.clone(), config));
    let cells: Vec<ObjRef> = (0..CELLS).map(|_| heap.alloc(class).unwrap()).collect();
    for (i, &c) in cells.iter().enumerate() {
        heap.store(c, 0, Word::from_scalar(i as i64));
    }
    let rounds = 50 * scale.factor as usize;
    let barrier = std::sync::Barrier::new(threads + 1);
    let before = stm.stats();
    let start = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for _ in 0..rounds {
                barrier.wait(); // readers open their snapshots
                barrier.wait(); // first halves read and pinned
                stm.atomically(|tx| {
                    for &c in &cells {
                        let v = tx.read(c, 0)?.as_scalar().unwrap();
                        tx.write(c, 0, Word::from_scalar(v + 1))?;
                    }
                    Ok(())
                });
                barrier.wait(); // the bulk publish has landed
            }
        });
        for _ in 0..threads {
            let stm = &stm;
            let cells = &cells;
            let barrier = &barrier;
            scope.spawn(move || {
                for _ in 0..rounds {
                    barrier.wait();
                    let mut tx = stm.begin();
                    let mut sum = 0i64;
                    let mut failed = false;
                    for &c in &cells[..HALF] {
                        match tx.read(c, 0) {
                            Ok(w) => sum += w.as_scalar().unwrap(),
                            Err(_) => {
                                failed = true;
                                break;
                            }
                        }
                    }
                    barrier.wait();
                    barrier.wait();
                    if !failed {
                        for &c in &cells[HALF..] {
                            match tx.read(c, 0) {
                                Ok(w) => sum += w.as_scalar().unwrap(),
                                Err(_) => {
                                    failed = true;
                                    break;
                                }
                            }
                        }
                    }
                    if failed {
                        tx.abort();
                    } else {
                        assert_eq!((sum - BASE_SUM) % CELLS as i64, 0, "torn audit: sum {sum}");
                        let _ = tx.commit();
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let delta = stm.stats().delta_since(&before);
    ((threads * rounds) as u64, elapsed, delta)
}

impl ValidationReport {
    /// Looks up one cell of the sweep.
    pub fn point(&self, workload: &str, variant: &str, threads: usize) -> Option<&ValidationPoint> {
        self.points
            .iter()
            .find(|p| p.workload == workload && p.variant == variant && p.threads == threads)
    }

    /// Looks up one cell of the E5c snapshot sweep.
    pub fn snapshot_point(&self, variant: &str, threads: usize) -> Option<&SnapshotPoint> {
        self.snapshot_points.iter().find(|p| p.variant == variant && p.threads == threads)
    }

    /// Looks up one cell of the E5d clock sweep.
    pub fn clock_point(&self, workload: &str, mode: &str, threads: usize) -> Option<&ClockPoint> {
        self.clock_points
            .iter()
            .find(|p| p.workload == workload && p.mode == mode && p.threads == threads)
    }

    /// Looks up one cell of the E5e multi-version sweep.
    pub fn mv_point(&self, mv_depth: usize, threads: usize) -> Option<&MvPoint> {
        self.mv_points.iter().find(|p| p.mv_depth == mv_depth && p.threads == threads)
    }

    /// Renders one validation-cost table per workload.
    pub fn print_tables(&self) {
        for workload in WORKLOADS {
            let mut headers: Vec<&'static str> = vec!["variant"];
            for &t in &self.threads {
                headers.push(Box::leak(format!("{t} thr fast-path%").into_boxed_str()));
                headers.push(Box::leak(format!("{t} thr scans/commit").into_boxed_str()));
            }
            let mut table = Table::new(format!("E5b validation cost: {workload}"), &headers);
            for variant in VARIANTS {
                let mut cells = vec![variant.to_string()];
                for &t in &self.threads {
                    let p = self.point(workload, variant, t).expect("complete sweep");
                    cells.push(format!("{:.1}", p.fast_path_rate() * 100.0));
                    cells.push(format!("{:.2}", p.entries_scanned_per_commit()));
                }
                table.row(cells);
            }
            table.print();
        }
        let mut headers: Vec<&'static str> = vec!["variant"];
        for &t in &self.threads {
            headers.push(Box::leak(format!("{t} thr ro-abort%").into_boxed_str()));
            headers.push(Box::leak(format!("{t} thr extensions").into_boxed_str()));
        }
        let mut table = Table::new(format!("E5c snapshot reads: {SNAPSHOT_WORKLOAD}"), &headers);
        for variant in SNAPSHOT_VARIANTS {
            let mut cells = vec![variant.to_string()];
            for &t in &self.threads {
                let p = self.snapshot_point(variant, t).expect("complete sweep");
                cells.push(format!("{:.1}", p.readonly_abort_rate() * 100.0));
                cells.push(format!("{}", p.ts_extensions));
            }
            table.row(cells);
        }
        table.print();

        for workload in CLOCK_WORKLOADS {
            let mut headers: Vec<&'static str> = vec!["clock mode"];
            for &t in &self.threads {
                headers.push(Box::leak(format!("{t} thr upd-commits/s").into_boxed_str()));
                headers.push(Box::leak(format!("{t} thr cas-fail").into_boxed_str()));
                headers.push(Box::leak(format!("{t} thr bump-retry").into_boxed_str()));
            }
            let mut table = Table::new(format!("E5d clock organization: {workload}"), &headers);
            for mode in CLOCK_MODES {
                let mut cells = vec![mode.to_string()];
                for &t in &self.threads {
                    let p = self.clock_point(workload, mode, t).expect("complete sweep");
                    cells.push(format!("{:.0}", p.update_commits_per_sec()));
                    cells.push(p.clock_cas_failures.to_string());
                    cells.push(p.clock_bump_retries.to_string());
                }
                table.row(cells);
            }
            table.print();
        }

        let mut headers: Vec<&'static str> = vec!["mv_depth"];
        for &t in &self.threads {
            headers.push(Box::leak(format!("{t} thr ro-abort%").into_boxed_str()));
            headers.push(Box::leak(format!("{t} thr chain-hits").into_boxed_str()));
        }
        let mut table = Table::new(format!("E5e multi-version objects: {MV_WORKLOAD}"), &headers);
        for &depth in &MV_DEPTHS {
            let mut cells = vec![depth.to_string()];
            for &t in &self.threads {
                let p = self.mv_point(depth, t).expect("complete sweep");
                cells.push(format!("{:.1}", p.readonly_abort_rate() * 100.0));
                cells.push(p.mv_read_hits.to_string());
            }
            table.row(cells);
        }
        table.print();
    }

    /// The machine-readable form (schema checked by
    /// [`validate_report`]).
    pub fn to_json(&self) -> Json {
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Json::Obj(vec![
            ("experiment".into(), Json::Str("e5_validation".into())),
            ("mode".into(), Json::Str(self.mode.into())),
            ("host_cores".into(), Json::Num(host_cores as f64)),
            (
                "threads".into(),
                Json::Arr(self.threads.iter().map(|&t| Json::Num(t as f64)).collect()),
            ),
            (
                "thread_axis".into(),
                Json::Arr(
                    self.thread_axis
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("requested".into(), Json::Num(e.requested as f64)),
                                ("effective".into(), Json::Num(e.effective as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "workloads".into(),
                Json::Arr(WORKLOADS.iter().map(|w| Json::Str((*w).into())).collect()),
            ),
            (
                "variants".into(),
                Json::Arr(VARIANTS.iter().map(|v| Json::Str((*v).into())).collect()),
            ),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("workload".into(), Json::Str(p.workload.into())),
                                ("variant".into(), Json::Str(p.variant.into())),
                                ("threads".into(), Json::Num(p.threads as f64)),
                                ("ops".into(), Json::Num(p.ops as f64)),
                                ("elapsed_ms".into(), Json::Num(p.elapsed.as_secs_f64() * 1_000.0)),
                                ("commits".into(), Json::Num(p.commits as f64)),
                                ("validations".into(), Json::Num(p.validations as f64)),
                                (
                                    "validation_fast_path".into(),
                                    Json::Num(p.validation_fast_path as f64),
                                ),
                                (
                                    "validation_entries_scanned".into(),
                                    Json::Num(p.validation_entries_scanned as f64),
                                ),
                                ("fast_path_rate".into(), Json::Num(p.fast_path_rate())),
                                (
                                    "entries_scanned_per_commit".into(),
                                    Json::Num(p.entries_scanned_per_commit()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "snapshot_variants".into(),
                Json::Arr(SNAPSHOT_VARIANTS.iter().map(|v| Json::Str((*v).into())).collect()),
            ),
            (
                "snapshot_points".into(),
                Json::Arr(
                    self.snapshot_points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("workload".into(), Json::Str(p.workload.into())),
                                ("variant".into(), Json::Str(p.variant.into())),
                                ("threads".into(), Json::Num(p.threads as f64)),
                                ("ops".into(), Json::Num(p.ops as f64)),
                                ("elapsed_ms".into(), Json::Num(p.elapsed.as_secs_f64() * 1_000.0)),
                                ("commits".into(), Json::Num(p.commits as f64)),
                                ("readonly_commits".into(), Json::Num(p.readonly_commits as f64)),
                                ("readonly_aborts".into(), Json::Num(p.readonly_aborts as f64)),
                                (
                                    "snapshot_read_hits".into(),
                                    Json::Num(p.snapshot_read_hits as f64),
                                ),
                                ("ts_extensions".into(), Json::Num(p.ts_extensions as f64)),
                                (
                                    "extension_failures".into(),
                                    Json::Num(p.extension_failures as f64),
                                ),
                                ("readonly_abort_rate".into(), Json::Num(p.readonly_abort_rate())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "clock_modes".into(),
                Json::Arr(CLOCK_MODES.iter().map(|m| Json::Str((*m).into())).collect()),
            ),
            (
                "clock_workloads".into(),
                Json::Arr(CLOCK_WORKLOADS.iter().map(|w| Json::Str((*w).into())).collect()),
            ),
            (
                "clock_points".into(),
                Json::Arr(
                    self.clock_points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("workload".into(), Json::Str(p.workload.into())),
                                ("mode".into(), Json::Str(p.mode.into())),
                                ("threads".into(), Json::Num(p.threads as f64)),
                                ("ops".into(), Json::Num(p.ops as f64)),
                                ("elapsed_ms".into(), Json::Num(p.elapsed.as_secs_f64() * 1_000.0)),
                                ("commits".into(), Json::Num(p.commits as f64)),
                                ("update_commits".into(), Json::Num(p.update_commits as f64)),
                                ("readonly_aborts".into(), Json::Num(p.readonly_aborts as f64)),
                                ("ts_extensions".into(), Json::Num(p.ts_extensions as f64)),
                                (
                                    "clock_cas_failures".into(),
                                    Json::Num(p.clock_cas_failures as f64),
                                ),
                                (
                                    "clock_bump_retries".into(),
                                    Json::Num(p.clock_bump_retries as f64),
                                ),
                                (
                                    "update_commits_per_sec".into(),
                                    Json::Num(p.update_commits_per_sec()),
                                ),
                                ("cas_failure_rate".into(), Json::Num(p.cas_failure_rate())),
                            ])
                        })
                        .collect(),
                ),
            ),
            // The E5d throughput headline is host-conditional; its
            // disposition is recorded so consumers (CI included) can
            // tell a passing report from one whose host simply could
            // not exhibit clock contention.
            (
                "e5d_throughput_gate".into(),
                Json::Str(
                    if host_cores >= 8 && self.threads.iter().max().is_some_and(|&t| t >= 8) {
                        "passed".into()
                    } else {
                        "skipped_host_conditional".into()
                    },
                ),
            ),
            (
                "mv_depths".into(),
                Json::Arr(MV_DEPTHS.iter().map(|&d| Json::Num(d as f64)).collect()),
            ),
            (
                "mv_points".into(),
                Json::Arr(
                    self.mv_points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("workload".into(), Json::Str(p.workload.into())),
                                ("mv_depth".into(), Json::Num(p.mv_depth as f64)),
                                ("threads".into(), Json::Num(p.threads as f64)),
                                ("ops".into(), Json::Num(p.ops as f64)),
                                ("elapsed_ms".into(), Json::Num(p.elapsed.as_secs_f64() * 1_000.0)),
                                ("commits".into(), Json::Num(p.commits as f64)),
                                ("readonly_commits".into(), Json::Num(p.readonly_commits as f64)),
                                ("readonly_aborts".into(), Json::Num(p.readonly_aborts as f64)),
                                ("mv_read_hits".into(), Json::Num(p.mv_read_hits as f64)),
                                ("mv_chain_misses".into(), Json::Num(p.mv_chain_misses as f64)),
                                ("ts_extensions".into(), Json::Num(p.ts_extensions as f64)),
                                (
                                    "extension_failures".into(),
                                    Json::Num(p.extension_failures as f64),
                                ),
                                ("readonly_abort_rate".into(), Json::Num(p.readonly_abort_rate())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn point_num(point: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    point.get(key).and_then(Json::as_f64).filter(|n| *n >= 0.0).ok_or(format!("{ctx}: bad `{key}`"))
}

/// Checks that `json` is a well-formed validation report: required
/// keys, a complete threads × workloads × variants cross product,
/// internally consistent counters, and the experiment's headline
/// invariants — `clock_off` points never take the fast path, while the
/// read-only hashtable sweep under `clock_on` fast-paths more than 90%
/// of validations and scans strictly fewer entries per commit than the
/// `clock_off` baseline at the same thread count.
///
/// The E5c snapshot sweep is validated alongside: a complete threads ×
/// snapshot-variant cross product, and the headline invariant that
/// `snapshot_on` points report *zero* read-only aborts with a snapshot
/// read path that demonstrably fired, while `snapshot_off` points keep
/// every snapshot counter at zero.
///
/// The E5d clock sweep is validated last: a complete threads × clock
/// workload × clock mode cross product; commit-word CAS failures
/// structurally zero in every mode but `pass_on_fail`; the read-mostly
/// audit read-only-abort-free under *every* mode (Deferred's leading
/// stamps must extend, not abort); and — on hosts with at least 8
/// cores sweeping at least 8 threads — at least one decentralized mode
/// delivering ≥2x `global`'s update-commit throughput on the
/// disjoint-account bank at the highest swept thread count. The
/// throughput gate is host-conditional because a 1–2 core host cannot
/// exhibit clock contention in the first place.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_report(json: &Json) -> Result<(), String> {
    let experiment = json.get("experiment").and_then(Json::as_str).ok_or("missing `experiment`")?;
    if experiment != "e5_validation" {
        return Err(format!("unexpected experiment `{experiment}`"));
    }
    let mode = json.get("mode").and_then(Json::as_str).ok_or("missing `mode`")?;
    if mode != "quick" && mode != "full" {
        return Err(format!("mode must be quick|full, got `{mode}`"));
    }
    let host_cores = json
        .get("host_cores")
        .and_then(Json::as_f64)
        .filter(|&n| n >= 1.0)
        .ok_or("missing or non-positive `host_cores`")? as usize;

    let threads: Vec<usize> = json
        .get("threads")
        .and_then(Json::as_array)
        .ok_or("missing `threads`")?
        .iter()
        .map(|t| t.as_f64().filter(|&n| n >= 1.0).map(|n| n as usize))
        .collect::<Option<_>>()
        .ok_or("`threads` must be positive numbers")?;
    if threads.is_empty() {
        return Err("`threads` is empty".into());
    }

    // The requested-vs-effective axis must record the clamping that
    // produced `threads`: every effective count is min(requested,
    // host_cores), and `threads` is exactly the deduplicated effective
    // side — no swept count may hide a different request.
    let axis = json.get("thread_axis").and_then(Json::as_array).ok_or("missing `thread_axis`")?;
    if axis.is_empty() {
        return Err("`thread_axis` is empty".into());
    }
    let mut effectives = Vec::new();
    for entry in axis {
        let requested = entry
            .get("requested")
            .and_then(Json::as_f64)
            .filter(|&n| n >= 1.0)
            .ok_or("`thread_axis` entry missing positive `requested`")?
            as usize;
        let effective = entry
            .get("effective")
            .and_then(Json::as_f64)
            .filter(|&n| n >= 1.0)
            .ok_or("`thread_axis` entry missing positive `effective`")?
            as usize;
        if effective != requested.min(host_cores) {
            return Err(format!(
                "thread_axis: requested {requested} on a {host_cores}-core host \
                 must clamp to {}, got effective {effective}",
                requested.min(host_cores)
            ));
        }
        effectives.push(effective);
    }
    effectives.sort_unstable();
    effectives.dedup();
    if effectives != threads {
        return Err(format!(
            "`threads` {threads:?} is not the deduplicated effective axis {effectives:?}"
        ));
    }
    let workloads: Vec<&str> = json
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or("missing `workloads`")?
        .iter()
        .map(|w| w.as_str())
        .collect::<Option<_>>()
        .ok_or("`workloads` must be strings")?;
    for required in WORKLOADS {
        if !workloads.contains(&required) {
            return Err(format!("missing workload `{required}`"));
        }
    }
    let variants: Vec<&str> = json
        .get("variants")
        .and_then(Json::as_array)
        .ok_or("missing `variants`")?
        .iter()
        .map(|v| v.as_str())
        .collect::<Option<_>>()
        .ok_or("`variants` must be strings")?;
    for required in VARIANTS {
        if !variants.contains(&required) {
            return Err(format!("missing variant `{required}`"));
        }
    }

    let points = json.get("points").and_then(Json::as_array).ok_or("missing `points`")?;
    let expected = threads.len() * workloads.len() * variants.len();
    if points.len() != expected {
        return Err(format!("expected {expected} points, got {}", points.len()));
    }

    let find = |workload: &str, variant: &str, t: usize| {
        points.iter().find(|p| {
            p.get("workload").and_then(Json::as_str) == Some(workload)
                && p.get("variant").and_then(Json::as_str) == Some(variant)
                && p.get("threads").and_then(Json::as_f64) == Some(t as f64)
        })
    };
    for &t in &threads {
        for &workload in &workloads {
            for &variant in &variants {
                let ctx = format!("{workload}/{variant}/{t}");
                let point = find(workload, variant, t).ok_or(format!("missing point {ctx}"))?;
                let ops = point_num(point, "ops", &ctx)?;
                if ops < 1.0 {
                    return Err(format!("{ctx}: no operations ran"));
                }
                point
                    .get("elapsed_ms")
                    .and_then(Json::as_f64)
                    .filter(|&n| n > 0.0)
                    .ok_or(format!("{ctx}: bad `elapsed_ms`"))?;
                let commits = point_num(point, "commits", &ctx)?;
                if commits < 1.0 {
                    return Err(format!("{ctx}: no transaction committed"));
                }
                let validations = point_num(point, "validations", &ctx)?;
                let fast = point_num(point, "validation_fast_path", &ctx)?;
                let scanned = point_num(point, "validation_entries_scanned", &ctx)?;
                if fast > validations {
                    return Err(format!("{ctx}: fast-path count exceeds validations"));
                }
                if variant == "clock_off" && fast != 0.0 {
                    return Err(format!("{ctx}: knob off but the fast path fired"));
                }
                let rate = point_num(point, "fast_path_rate", &ctx)?;
                if validations > 0.0 && (rate - fast / validations).abs() > 1e-9 {
                    return Err(format!("{ctx}: `fast_path_rate` inconsistent with counts"));
                }
                let per_commit = point_num(point, "entries_scanned_per_commit", &ctx)?;
                if (per_commit - scanned / commits).abs() > 1e-9 {
                    return Err(format!(
                        "{ctx}: `entries_scanned_per_commit` inconsistent with counts"
                    ));
                }
            }
        }
    }

    // Headline invariants: the read-only sweep under the clock must
    // fast-path >90% of validations and beat the clock-off baseline on
    // entries scanned per commit, at every thread count.
    for &t in &threads {
        let ctx = format!("stm_hash_readonly/clock_on/{t}");
        let on = find("stm_hash_readonly", "clock_on", t).ok_or(format!("missing {ctx}"))?;
        let off = find("stm_hash_readonly", "clock_off", t)
            .ok_or(format!("missing stm_hash_readonly/clock_off/{t}"))?;
        let rate = point_num(on, "fast_path_rate", &ctx)?;
        if rate <= 0.9 {
            return Err(format!("{ctx}: fast-path rate {rate:.3} not above 90%"));
        }
        let on_scans = point_num(on, "entries_scanned_per_commit", &ctx)?;
        let off_scans = point_num(off, "entries_scanned_per_commit", &ctx)?;
        if on_scans >= off_scans {
            return Err(format!(
                "{ctx}: scans/commit {on_scans:.3} not below clock-off baseline {off_scans:.3}"
            ));
        }
    }

    // E5c: the snapshot-read sweep rides in new fields with its own
    // cross product and headline invariant.
    let snapshot_variants: Vec<&str> = json
        .get("snapshot_variants")
        .and_then(Json::as_array)
        .ok_or("missing `snapshot_variants`")?
        .iter()
        .map(|v| v.as_str())
        .collect::<Option<_>>()
        .ok_or("`snapshot_variants` must be strings")?;
    for required in SNAPSHOT_VARIANTS {
        if !snapshot_variants.contains(&required) {
            return Err(format!("missing snapshot variant `{required}`"));
        }
    }
    let snapshot_points =
        json.get("snapshot_points").and_then(Json::as_array).ok_or("missing `snapshot_points`")?;
    let expected = threads.len() * snapshot_variants.len();
    if snapshot_points.len() != expected {
        return Err(format!("expected {expected} snapshot points, got {}", snapshot_points.len()));
    }
    let find_snapshot = |variant: &str, t: usize| {
        snapshot_points.iter().find(|p| {
            p.get("variant").and_then(Json::as_str) == Some(variant)
                && p.get("threads").and_then(Json::as_f64) == Some(t as f64)
        })
    };
    for &t in &threads {
        for &variant in &snapshot_variants {
            let ctx = format!("{SNAPSHOT_WORKLOAD}/{variant}/{t}");
            let point = find_snapshot(variant, t).ok_or(format!("missing snapshot point {ctx}"))?;
            if point.get("workload").and_then(Json::as_str) != Some(SNAPSHOT_WORKLOAD) {
                return Err(format!("{ctx}: bad `workload`"));
            }
            let ops = point_num(point, "ops", &ctx)?;
            if ops < 1.0 {
                return Err(format!("{ctx}: no audit rounds ran"));
            }
            point
                .get("elapsed_ms")
                .and_then(Json::as_f64)
                .filter(|&n| n > 0.0)
                .ok_or(format!("{ctx}: bad `elapsed_ms`"))?;
            let commits = point_num(point, "commits", &ctx)?;
            let ro_commits = point_num(point, "readonly_commits", &ctx)?;
            let ro_aborts = point_num(point, "readonly_aborts", &ctx)?;
            if ro_commits > commits {
                return Err(format!("{ctx}: read-only commits exceed total commits"));
            }
            if ro_commits < ops {
                return Err(format!("{ctx}: fewer read-only commits than audit rounds"));
            }
            let hits = point_num(point, "snapshot_read_hits", &ctx)?;
            let extensions = point_num(point, "ts_extensions", &ctx)?;
            point_num(point, "extension_failures", &ctx)?;
            let rate = point_num(point, "readonly_abort_rate", &ctx)?;
            let total = ro_commits + ro_aborts;
            if total > 0.0 && (rate - ro_aborts / total).abs() > 1e-9 {
                return Err(format!("{ctx}: `readonly_abort_rate` inconsistent with counts"));
            }
            match variant {
                "snapshot_on" => {
                    // The feature's acceptance criterion, enforced on
                    // every regenerated report: abort-free read-only
                    // transactions, via a snapshot path that actually
                    // ran.
                    if ro_aborts != 0.0 {
                        return Err(format!(
                            "{ctx}: {ro_aborts} read-only aborts; snapshot reads must be abort-free"
                        ));
                    }
                    if hits < 1.0 {
                        return Err(format!("{ctx}: the snapshot read path never fired"));
                    }
                }
                "snapshot_off" if hits != 0.0 || extensions != 0.0 => {
                    return Err(format!("{ctx}: knob off but snapshot counters moved"));
                }
                _ => {}
            }
        }
    }

    // E5d: the clock-organization sweep, also in additive fields.
    let clock_modes: Vec<&str> = json
        .get("clock_modes")
        .and_then(Json::as_array)
        .ok_or("missing `clock_modes`")?
        .iter()
        .map(|m| m.as_str())
        .collect::<Option<_>>()
        .ok_or("`clock_modes` must be strings")?;
    for required in CLOCK_MODES {
        if !clock_modes.contains(&required) {
            return Err(format!("missing clock mode `{required}`"));
        }
    }
    let clock_workloads: Vec<&str> = json
        .get("clock_workloads")
        .and_then(Json::as_array)
        .ok_or("missing `clock_workloads`")?
        .iter()
        .map(|w| w.as_str())
        .collect::<Option<_>>()
        .ok_or("`clock_workloads` must be strings")?;
    for required in CLOCK_WORKLOADS {
        if !clock_workloads.contains(&required) {
            return Err(format!("missing clock workload `{required}`"));
        }
    }
    let clock_points =
        json.get("clock_points").and_then(Json::as_array).ok_or("missing `clock_points`")?;
    let expected = threads.len() * clock_workloads.len() * clock_modes.len();
    if clock_points.len() != expected {
        return Err(format!("expected {expected} clock points, got {}", clock_points.len()));
    }
    let find_clock = |workload: &str, mode: &str, t: usize| {
        clock_points.iter().find(|p| {
            p.get("workload").and_then(Json::as_str) == Some(workload)
                && p.get("mode").and_then(Json::as_str) == Some(mode)
                && p.get("threads").and_then(Json::as_f64) == Some(t as f64)
        })
    };
    for &t in &threads {
        for &workload in &clock_workloads {
            for &mode in &clock_modes {
                let ctx = format!("{workload}/{mode}/{t}");
                let point =
                    find_clock(workload, mode, t).ok_or(format!("missing clock point {ctx}"))?;
                let ops = point_num(point, "ops", &ctx)?;
                if ops < 1.0 {
                    return Err(format!("{ctx}: no rounds ran"));
                }
                let elapsed = point
                    .get("elapsed_ms")
                    .and_then(Json::as_f64)
                    .filter(|&n| n > 0.0)
                    .ok_or(format!("{ctx}: bad `elapsed_ms`"))?;
                let commits = point_num(point, "commits", &ctx)?;
                let updates = point_num(point, "update_commits", &ctx)?;
                if updates > commits {
                    return Err(format!("{ctx}: update commits exceed total commits"));
                }
                let ro_aborts = point_num(point, "readonly_aborts", &ctx)?;
                point_num(point, "ts_extensions", &ctx)?;
                let failures = point_num(point, "clock_cas_failures", &ctx)?;
                point_num(point, "clock_bump_retries", &ctx)?;
                let rate = point_num(point, "update_commits_per_sec", &ctx)?;
                if (rate - updates / (elapsed / 1_000.0)).abs() > 1e-6 * rate.max(1.0) {
                    return Err(format!(
                        "{ctx}: `update_commits_per_sec` inconsistent with counts"
                    ));
                }
                let fail_rate = point_num(point, "cas_failure_rate", &ctx)?;
                if updates > 0.0 && (fail_rate - failures / updates).abs() > 1e-9 {
                    return Err(format!("{ctx}: `cas_failure_rate` inconsistent with counts"));
                }
                // Only GV6 pass-on-failure ever loses a commit-word
                // CAS; every other mode bumps uncontested (global,
                // striped) or stays off the word entirely (deferred).
                if mode != "pass_on_fail" && failures != 0.0 {
                    return Err(format!(
                        "{ctx}: commit-word CAS failures in a mode that never CASes it"
                    ));
                }
                if workload == "bank_update" && updates < 1.0 {
                    return Err(format!("{ctx}: no update commit in an update-heavy workload"));
                }
                // The read-mostly audit runs snapshot-on under every
                // mode: abort freedom must survive the clock redesign,
                // including Deferred's leading stamps.
                if workload == "readmostly_audit" && ro_aborts != 0.0 {
                    return Err(format!(
                        "{ctx}: {ro_aborts} read-only aborts; the audit must stay abort-free"
                    ));
                }
            }
        }
    }

    // The E5d throughput headline, on hosts that can exhibit clock
    // contention at all: at the highest swept thread count, at least
    // one decentralized mode must at least double `global`'s
    // update-commit throughput on the disjoint-account bank. The
    // report must *say* which case it is in — `e5d_throughput_gate` is
    // `"passed"` only when the host-conditional check actually ran, and
    // `"skipped_host_conditional"` otherwise, so a small-host report
    // can never silently masquerade as a passing one.
    let &t_max = threads.iter().max().expect("non-empty");
    let gate = json
        .get("e5d_throughput_gate")
        .and_then(Json::as_str)
        .ok_or("missing `e5d_throughput_gate`")?;
    let enforced = host_cores >= 8 && t_max >= 8;
    match (gate, enforced) {
        ("passed", true) => {
            let ctx = format!("bank_update/global/{t_max}");
            let global =
                find_clock("bank_update", "global", t_max).ok_or(format!("missing {ctx}"))?;
            let base = point_num(global, "update_commits_per_sec", &ctx)?;
            let best = clock_modes
                .iter()
                .filter(|&&m| m != "global")
                .filter_map(|&m| find_clock("bank_update", m, t_max))
                .filter_map(|p| p.get("update_commits_per_sec").and_then(Json::as_f64))
                .fold(0.0f64, f64::max);
            if best < 2.0 * base {
                return Err(format!(
                    "bank_update at {t_max} threads: best decentralized rate {best:.0}/s \
                     is not 2x the global clock's {base:.0}/s"
                ));
            }
        }
        ("skipped_host_conditional", false) => {}
        _ => {
            return Err(format!(
                "`e5d_throughput_gate` is `{gate}` but host_cores={host_cores}, \
                 t_max={t_max} makes the gate {}",
                if enforced { "enforced" } else { "host-skipped" }
            ));
        }
    }

    // E5e: the multi-version sweep, in additive fields, with the
    // feature's headline enforced on every regenerated report: on a
    // workload whose straddle is total, reader aborts are exactly zero
    // at every depth ≥ 1 and demonstrably nonzero at depth 0 — and the
    // chain counters move only when a chain exists to move them.
    let mv_depths: Vec<usize> = json
        .get("mv_depths")
        .and_then(Json::as_array)
        .ok_or("missing `mv_depths`")?
        .iter()
        .map(|d| d.as_f64().filter(|&n| n >= 0.0).map(|n| n as usize))
        .collect::<Option<_>>()
        .ok_or("`mv_depths` must be non-negative numbers")?;
    for required in MV_DEPTHS {
        if !mv_depths.contains(&required) {
            return Err(format!("missing mv depth `{required}`"));
        }
    }
    let mv_points = json.get("mv_points").and_then(Json::as_array).ok_or("missing `mv_points`")?;
    let expected = threads.len() * mv_depths.len();
    if mv_points.len() != expected {
        return Err(format!("expected {expected} mv points, got {}", mv_points.len()));
    }
    let find_mv = |depth: usize, t: usize| {
        mv_points.iter().find(|p| {
            p.get("mv_depth").and_then(Json::as_f64) == Some(depth as f64)
                && p.get("threads").and_then(Json::as_f64) == Some(t as f64)
        })
    };
    for &t in &threads {
        for &depth in &mv_depths {
            let ctx = format!("{MV_WORKLOAD}/depth{depth}/{t}");
            let point = find_mv(depth, t).ok_or(format!("missing mv point {ctx}"))?;
            if point.get("workload").and_then(Json::as_str) != Some(MV_WORKLOAD) {
                return Err(format!("{ctx}: bad `workload`"));
            }
            let ops = point_num(point, "ops", &ctx)?;
            if ops < 1.0 {
                return Err(format!("{ctx}: no audit rounds ran"));
            }
            point
                .get("elapsed_ms")
                .and_then(Json::as_f64)
                .filter(|&n| n > 0.0)
                .ok_or(format!("{ctx}: bad `elapsed_ms`"))?;
            let commits = point_num(point, "commits", &ctx)?;
            if commits < 1.0 {
                return Err(format!("{ctx}: no transaction committed"));
            }
            let ro_commits = point_num(point, "readonly_commits", &ctx)?;
            let ro_aborts = point_num(point, "readonly_aborts", &ctx)?;
            if ro_commits > commits {
                return Err(format!("{ctx}: read-only commits exceed total commits"));
            }
            let hits = point_num(point, "mv_read_hits", &ctx)?;
            let misses = point_num(point, "mv_chain_misses", &ctx)?;
            point_num(point, "ts_extensions", &ctx)?;
            point_num(point, "extension_failures", &ctx)?;
            let rate = point_num(point, "readonly_abort_rate", &ctx)?;
            let total = ro_commits + ro_aborts;
            if total > 0.0 && (rate - ro_aborts / total).abs() > 1e-9 {
                return Err(format!("{ctx}: `readonly_abort_rate` inconsistent with counts"));
            }
            if depth == 0 {
                if ro_aborts < 1.0 {
                    return Err(format!(
                        "{ctx}: the total straddle must abort without chains, yet no \
                         read-only abort was recorded"
                    ));
                }
                if hits != 0.0 || misses != 0.0 {
                    return Err(format!("{ctx}: depth 0 but the chain counters moved"));
                }
            } else {
                if ro_aborts != 0.0 {
                    return Err(format!(
                        "{ctx}: {ro_aborts} read-only aborts; chains must make the \
                         straddling readers abort-free"
                    ));
                }
                if hits < 1.0 {
                    return Err(format!("{ctx}: the chain read path never fired"));
                }
                if ro_commits < ops {
                    return Err(format!("{ctx}: fewer read-only commits than audit rounds"));
                }
            }
        }
    }
    Ok(())
}

/// Where the report is written: `BENCH_e5_validation.json` at the
/// repository root (found by walking up from the working directory),
/// or the working directory itself outside a checkout.
pub fn default_output_path() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        if dir.join(".git").exists() {
            return dir.join("BENCH_e5_validation.json");
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd.join("BENCH_e5_validation.json"),
        }
    }
}

/// Serializes the report, re-parses it, validates the schema, and
/// writes it to `path`.
///
/// # Errors
///
/// I/O failure writing the file.
///
/// # Panics
///
/// Panics if the emitted report fails its own schema validation (a
/// harness bug, not an environment problem).
pub fn write_report(report: &ValidationReport, path: &Path) -> std::io::Result<()> {
    let json = report.to_json();
    let text = json.to_string();
    let reparsed = crate::json::parse(&text).expect("emitter produced valid JSON");
    validate_report(&reparsed).expect("emitted report matches schema");
    std::fs::write(path, text + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: Scale = Scale { factor: 1, threads: &[1, 2] };

    #[test]
    fn sweep_meets_the_headline_invariants() {
        let report = run_validation(TINY);
        let axis = sweep_threads(TINY);
        assert_eq!(report.threads, axis);
        assert_eq!(report.points.len(), axis.len() * WORKLOADS.len() * VARIANTS.len());
        assert_eq!(report.snapshot_points.len(), axis.len() * SNAPSHOT_VARIANTS.len());
        // The acceptance criteria, asserted directly on the measured
        // report: a >90% fast-path rate on the read-only hashtable
        // sweep and strictly fewer scans per commit than the clock-off
        // baseline; zero read-only aborts (through a snapshot path
        // that actually fired) on the E5c sweep with the knob on, and
        // untouched snapshot counters with it off.
        for &t in &report.threads {
            let on = report.point("stm_hash_readonly", "clock_on", t).unwrap();
            let off = report.point("stm_hash_readonly", "clock_off", t).unwrap();
            assert!(on.fast_path_rate() > 0.9, "rate {} at {t} threads", on.fast_path_rate());
            assert!(on.entries_scanned_per_commit() < off.entries_scanned_per_commit());
            assert_eq!(off.validation_fast_path, 0);

            let snap_on = report.snapshot_point("snapshot_on", t).unwrap();
            assert_eq!(snap_on.readonly_aborts, 0, "abort-free at {t} threads");
            assert!(snap_on.readonly_abort_rate() == 0.0);
            assert!(snap_on.snapshot_read_hits > 0, "snapshot path idle at {t} threads");
            let snap_off = report.snapshot_point("snapshot_off", t).unwrap();
            assert_eq!(snap_off.snapshot_read_hits, 0);
            assert_eq!(snap_off.ts_extensions, 0);
        }
        // E5d: complete cross product; CAS failures structurally zero
        // off the GV6 path; the audit abort-free under every clock.
        assert_eq!(
            report.clock_points.len(),
            axis.len() * CLOCK_WORKLOADS.len() * CLOCK_MODES.len()
        );
        for p in &report.clock_points {
            if p.mode != "pass_on_fail" {
                assert_eq!(p.clock_cas_failures, 0, "{}/{}/{}", p.workload, p.mode, p.threads);
            }
            if p.workload == "readmostly_audit" {
                assert_eq!(p.readonly_aborts, 0, "audit aborted under {}/{}", p.mode, p.threads);
            }
            if p.workload == "bank_update" {
                assert!(p.update_commits >= 1, "no transfer committed under {}", p.mode);
            }
        }
        // E5e: complete cross product; the headline dichotomy holds at
        // every thread count — abort-free with chains on the exact
        // workload that aborts without them.
        assert_eq!(report.mv_points.len(), axis.len() * MV_DEPTHS.len());
        for p in &report.mv_points {
            let ctx = format!("depth {} at {} threads", p.mv_depth, p.threads);
            if p.mv_depth == 0 {
                assert!(p.readonly_aborts >= 1, "{ctx}: total straddle did not abort");
                assert_eq!(p.mv_read_hits, 0, "{ctx}: chain hit without a chain");
                assert_eq!(p.mv_chain_misses, 0, "{ctx}: chain walk without a chain");
            } else {
                assert_eq!(p.readonly_aborts, 0, "{ctx}: reader aborted despite chains");
                assert!(p.mv_read_hits >= p.ops, "{ctx}: straddled halves must be chain hits");
                assert!(p.readonly_commits >= p.ops, "{ctx}: some audit round failed");
            }
        }
        let json = report.to_json();
        let reparsed = crate::json::parse(&json.to_string()).unwrap();
        validate_report(&reparsed).unwrap();
        report.print_tables();
    }

    #[test]
    fn thread_axis_extensions_are_clamped_to_host_cores() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let full_axis = sweep_thread_axis(TINY);
        // Every requested count — the scale's own and the extensions —
        // is recorded, and each one's effective side is the clamp.
        for &t in TINY.threads {
            assert!(full_axis.iter().any(|e| e.requested == t), "base count {t} unrecorded");
        }
        for &t in &EXTENDED_THREADS {
            assert!(full_axis.iter().any(|e| e.requested == t), "extension {t} unrecorded");
        }
        for e in &full_axis {
            assert_eq!(
                e.effective,
                e.requested.min(cores),
                "requested {} on a {cores}-core host",
                e.requested
            );
        }
        // The swept axis is the deduplicated effective side, never
        // oversubscribing the host.
        let axis = sweep_threads(TINY);
        let mut expected: Vec<usize> = full_axis.iter().map(|e| e.effective).collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(axis, expected);
        for &t in &axis {
            assert!(t <= cores, "{t}-thread point on a {cores}-core host");
        }
        if cores >= 64 {
            assert_eq!(&axis[axis.len() - 3..], &[16, 32, 64]);
        }
    }

    #[test]
    fn validation_rejects_an_unclamped_thread_axis() {
        let report = run_validation(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        // Claim an effective count the host cannot have run honestly.
        for (key, value) in &mut members {
            if key == "thread_axis" {
                let Json::Arr(entries) = value else { panic!("array") };
                let Some(Json::Obj(fields)) = entries.last_mut() else { panic!("entry") };
                for (k, v) in fields.iter_mut() {
                    if k == "effective" {
                        *v = Json::Num(4096.0);
                    }
                }
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("must clamp"), "got: {err}");
    }

    #[test]
    fn validation_rejects_a_readonly_abort_with_snapshots_on() {
        let report = run_validation(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        for (key, value) in &mut members {
            if key == "snapshot_points" {
                let Json::Arr(points) = value else { panic!("array") };
                for p in points {
                    let Json::Obj(fields) = p else { panic!("object") };
                    let on = fields
                        .iter()
                        .any(|(k, v)| k == "variant" && v.as_str() == Some("snapshot_on"));
                    if on {
                        for (k, v) in fields.iter_mut() {
                            if k == "readonly_aborts" {
                                *v = Json::Num(1.0);
                            }
                        }
                    }
                }
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("abort-free") || err.contains("inconsistent"), "got: {err}");
    }

    #[test]
    fn validation_rejects_a_fast_path_hit_with_the_knob_off() {
        let report = run_validation(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        for (key, value) in &mut members {
            if key == "points" {
                let Json::Arr(points) = value else { panic!("array") };
                for p in points {
                    let Json::Obj(fields) = p else { panic!("object") };
                    let off = fields
                        .iter()
                        .any(|(k, v)| k == "variant" && v.as_str() == Some("clock_off"));
                    if off {
                        for (k, v) in fields.iter_mut() {
                            if k == "validation_fast_path" {
                                *v = Json::Num(1.0);
                            }
                        }
                    }
                }
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("knob off") || err.contains("inconsistent"), "got: {err}");
    }

    #[test]
    fn validation_rejects_cas_failures_outside_pass_on_fail() {
        let report = run_validation(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        for (key, value) in &mut members {
            if key == "clock_points" {
                let Json::Arr(points) = value else { panic!("array") };
                for p in points {
                    let Json::Obj(fields) = p else { panic!("object") };
                    let striped =
                        fields.iter().any(|(k, v)| k == "mode" && v.as_str() == Some("striped"));
                    if striped {
                        for (k, v) in fields.iter_mut() {
                            if k == "clock_cas_failures" {
                                *v = Json::Num(1.0);
                            }
                        }
                    }
                }
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("never CASes") || err.contains("inconsistent"), "got: {err}");
    }

    #[test]
    fn validation_rejects_a_reader_abort_with_chains_on() {
        let report = run_validation(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        for (key, value) in &mut members {
            if key == "mv_points" {
                let Json::Arr(points) = value else { panic!("array") };
                for p in points {
                    let Json::Obj(fields) = p else { panic!("object") };
                    let chained = fields
                        .iter()
                        .any(|(k, v)| k == "mv_depth" && v.as_f64().is_some_and(|d| d >= 1.0));
                    if chained {
                        for (k, v) in fields.iter_mut() {
                            if k == "readonly_aborts" {
                                *v = Json::Num(1.0);
                            }
                        }
                    }
                }
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("abort-free") || err.contains("inconsistent"), "got: {err}");
    }

    #[test]
    fn validation_rejects_a_mislabeled_throughput_gate() {
        let report = run_validation(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        // Flip the gate to the disposition the host did *not* produce:
        // either direction must be caught as inconsistent.
        for (key, value) in &mut members {
            if key == "e5d_throughput_gate" {
                let flipped = if value.as_str() == Some("passed") {
                    "skipped_host_conditional"
                } else {
                    "passed"
                };
                *value = Json::Str(flipped.into());
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("e5d_throughput_gate"), "got: {err}");
    }

    #[test]
    fn validation_rejects_wrong_experiment() {
        let json = crate::json::parse("{\"experiment\": \"e2_scalability\"}").unwrap();
        assert!(validate_report(&json).is_err());
    }

    #[test]
    fn output_path_lands_at_a_repo_root_when_inside_one() {
        let path = default_output_path();
        assert!(path.ends_with("BENCH_e5_validation.json"));
    }
}
