//! Minimal JSON support for machine-readable benchmark reports.
//!
//! The workspace is dependency-free by policy, so this module supplies
//! the small subset of JSON the harness needs: an emitter with correct
//! string escaping and stable key order, and a recursive-descent parser
//! used by the schema checks (CI parses the emitted report back rather
//! than trusting the emitter).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always emitted in `f64`-roundtrippable form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable message with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences
                    // pass through unmodified).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_report_shaped_document() {
        let doc = Json::Obj(vec![
            ("experiment".into(), Json::Str("e2_scalability".into())),
            ("threads".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            (
                "points".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("workload".into(), Json::Str("counter".into())),
                    ("ops_per_second".into(), Json::Num(12345.678)),
                ])]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = doc.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(8.0).to_string(), "8");
        assert_eq!(Json::Num(8.5).to_string(), "8.5");
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } , true ] } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
        assert_eq!(arr[2], Json::Bool(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = parse("{\"n\": 3}").unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert!(v.get("n").unwrap().as_str().is_none());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("n").is_none());
    }
}
