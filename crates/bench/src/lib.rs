//! # omt-bench — benchmark harness regenerating the evaluation
//!
//! Each experiment Ei corresponds to a table or figure family of the
//! PLDI 2006 evaluation (see DESIGN.md for the mapping and the
//! paper-text caveat). Run them all with:
//!
//! ```bash
//! cargo run --release -p omt-bench --bin repro -- --experiment all
//! ```
//!
//! Criterion micro-benchmarks for the hottest comparisons live in
//! `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod json;
pub mod programs;
pub mod scalability;
pub mod service;
pub mod validation;
