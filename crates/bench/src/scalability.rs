//! The measured E2/E3 scalability harness.
//!
//! Sweeps threads × workload × implementation and reports throughput in
//! two forms: human-readable tables (like the other experiments) and a
//! machine-readable JSON report, `BENCH_e2_scalability.json` at the
//! repository root, whose schema is validated by [`validate_report`]
//! (exercised by CI's bench smoke job).
//!
//! Each workload pits the direct-access STM against the two anchors of
//! the locking spectrum: a single coarse lock (cannot scale by
//! construction) and the hand-crafted fine-grained protocol the paper
//! competes with. STM instances run with statistics recording disabled
//! ([`omt_stm::StmConfig::record_stats`]) so the sweep measures the
//! runtime's hot path, not its accounting.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use omt_heap::{ClassDesc, FieldDesc, FieldMut, Heap, Word};
use omt_stm::{BoostLockStats, Stm, StmConfig};
use omt_workloads::{
    prefill, run_bank_workload, run_counter_throughput, run_set_workload, BoostedHashMap,
    CoarseBank, CoarseCounterArray, CoarseStdSet, CounterArray, HandOverHandList, LockBank, OpMix,
    SetWorkload, StmBank, StmHashSet, StmSkipList, StripedCounterArray, StripedHashSet,
};

use crate::experiments::Scale;
use crate::harness::Table;
use crate::json::Json;

/// Workloads swept, in report order.
pub const WORKLOADS: [&str; 4] = ["counter", "bank", "stm_hash", "stm_skiplist"];

/// Implementations compared per workload, in report order.
pub const IMPLS: [&str; 3] = ["stm", "coarse", "fine"];

/// One measured cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct BenchPoint {
    /// Workload name (one of [`WORKLOADS`]).
    pub workload: &'static str,
    /// Implementation name (one of [`IMPLS`]).
    pub impl_name: &'static str,
    /// Threads driving the workload.
    pub threads: usize,
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl BenchPoint {
    /// Operations per second.
    pub fn ops_per_second(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// One thread count's worth of boosted-map measurements: throughput of
/// the boosted hash map under the standard set workload, plus the
/// disjoint-key probe that demonstrates the semantic-conflict claim —
/// every thread cycles its *own* key on a **one-bucket** map, so all
/// operations commute, yet at word granularity they all rewrite the
/// same bucket head. The word-level side aborts; the boosted side's
/// per-key abstract locks never conflict, so its outer transactions
/// commit on the first attempt (`boosted_semantic_aborts` stays 0 —
/// inner physical retries are absorbed below the semantic layer).
#[derive(Debug, Clone, Copy)]
pub struct BoostPoint {
    /// Threads driving the workload and the probe.
    pub threads: usize,
    /// Set-workload operations completed on the boosted map.
    pub ops: u64,
    /// Set-workload wall-clock duration.
    pub elapsed: Duration,
    /// Probe: word-level transaction attempts.
    pub word_attempts: u64,
    /// Probe: word-level aborts (attempts minus commits). Nonzero at
    /// two or more threads — commuting ops collide on the bucket head.
    pub word_aborts: u64,
    /// Probe: boosted outer-transaction attempts.
    pub boosted_attempts: u64,
    /// Probe: boosted outer-transaction aborts. Structurally zero on
    /// disjoint keys: nothing contends on the abstract locks.
    pub boosted_semantic_aborts: u64,
    /// Probe: abstract-lock counters from the boosted side.
    pub lock_stats: BoostLockStats,
}

impl BoostPoint {
    /// Set-workload operations per second on the boosted map.
    pub fn ops_per_second(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ScalabilityReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// Thread counts swept.
    pub threads: Vec<usize>,
    /// One point per thread count × workload × implementation.
    pub points: Vec<BenchPoint>,
    /// One boosted-map measurement per thread count (additive to the
    /// cross product so downstream consumers of `points` see exactly
    /// the set they always did).
    pub boost_points: Vec<BoostPoint>,
}

/// An STM configured for throughput measurement: identical to the
/// default except statistics recording is off.
fn throughput_stm() -> Arc<Stm> {
    Arc::new(Stm::with_config(
        Arc::new(Heap::new()),
        StmConfig { record_stats: false, ..StmConfig::default() },
    ))
}

/// Runs the sweep at the given scale.
pub fn run_scalability(scale: Scale) -> ScalabilityReport {
    let mut points = Vec::new();
    for &threads in scale.threads {
        points.extend(counter_points(scale, threads));
        points.extend(bank_points(scale, threads));
        points.extend(set_points(scale, threads, "stm_hash"));
        points.extend(set_points(scale, threads, "stm_skiplist"));
    }
    let boost_points = scale.threads.iter().map(|&t| boost_point(scale, t)).collect();
    ScalabilityReport {
        mode: if scale == Scale::FULL { "full" } else { "quick" },
        threads: scale.threads.to_vec(),
        points,
        boost_points,
    }
}

fn counter_points(scale: Scale, threads: usize) -> Vec<BenchPoint> {
    const CELLS: usize = 256;
    let ops_per_thread = 4_000 * scale.factor as usize;
    let ops = (threads * ops_per_thread) as u64;
    let point =
        |impl_name, elapsed| BenchPoint { workload: "counter", impl_name, threads, ops, elapsed };
    let stm = CounterArray::new(throughput_stm(), CELLS);
    let coarse = CoarseCounterArray::new(CELLS);
    let fine = StripedCounterArray::new(CELLS);
    vec![
        point("stm", run_counter_throughput(&stm, threads, ops_per_thread, 61)),
        point("coarse", run_counter_throughput(&coarse, threads, ops_per_thread, 61)),
        point("fine", run_counter_throughput(&fine, threads, ops_per_thread, 61)),
    ]
}

fn bank_points(scale: Scale, threads: usize) -> Vec<BenchPoint> {
    const ACCOUNTS: usize = 64;
    let transfers_per_thread = 2_000 * scale.factor as usize;
    let point = |impl_name, outcome: omt_workloads::BankOutcome| BenchPoint {
        workload: "bank",
        impl_name,
        threads,
        ops: outcome.transfers,
        elapsed: outcome.elapsed,
    };
    let stm = StmBank::new(throughput_stm(), ACCOUNTS, 1_000);
    let coarse = CoarseBank::new(ACCOUNTS, 1_000);
    let fine = LockBank::new(ACCOUNTS, 1_000);
    vec![
        point("stm", run_bank_workload(&stm, threads, transfers_per_thread, None, 67)),
        point("coarse", run_bank_workload(&coarse, threads, transfers_per_thread, None, 67)),
        point("fine", run_bank_workload(&fine, threads, transfers_per_thread, None, 67)),
    ]
}

fn set_points(scale: Scale, threads: usize, workload_name: &'static str) -> Vec<BenchPoint> {
    let workload = match workload_name {
        "stm_hash" => SetWorkload {
            initial_size: 256,
            key_range: 1024,
            mix: OpMix::READ_HEAVY,
            ops_per_thread: 2_000 * scale.factor as usize,
            seed: 71,
        },
        "stm_skiplist" => SetWorkload {
            initial_size: 128,
            key_range: 512,
            mix: OpMix::READ_HEAVY,
            ops_per_thread: 1_000 * scale.factor as usize,
            seed: 73,
        },
        other => unreachable!("unknown set workload {other}"),
    };
    let point = |impl_name, outcome: omt_workloads::SetOutcome| BenchPoint {
        workload: workload_name,
        impl_name,
        threads,
        ops: outcome.total_ops,
        elapsed: outcome.elapsed,
    };
    let mut points = Vec::with_capacity(IMPLS.len());
    // Fresh structures per point so earlier sweep cells cannot skew
    // later ones through size drift.
    if workload_name == "stm_hash" {
        let stm = StmHashSet::new(throughput_stm(), 64);
        prefill(&stm, &workload);
        points.push(point("stm", run_set_workload(&stm, &workload, threads)));
    } else {
        let stm = StmSkipList::new(throughput_stm());
        prefill(&stm, &workload);
        points.push(point("stm", run_set_workload(&stm, &workload, threads)));
    }
    let coarse = CoarseStdSet::new();
    prefill(&coarse, &workload);
    points.push(point("coarse", run_set_workload(&coarse, &workload, threads)));
    if workload_name == "stm_hash" {
        let fine = StripedHashSet::new(64);
        prefill(&fine, &workload);
        points.push(point("fine", run_set_workload(&fine, &workload, threads)));
    } else {
        let fine = HandOverHandList::new();
        prefill(&fine, &workload);
        points.push(point("fine", run_set_workload(&fine, &workload, threads)));
    }
    points
}

/// Measures the boosted map at one thread count: throughput under the
/// same set workload the `stm_hash` cells use, then the two sides of
/// the disjoint-key probe.
fn boost_point(scale: Scale, threads: usize) -> BoostPoint {
    let workload = SetWorkload {
        initial_size: 256,
        key_range: 1024,
        mix: OpMix::READ_HEAVY,
        ops_per_thread: 2_000 * scale.factor as usize,
        seed: 71,
    };
    // Lock stripes cover the key range, so workload keys (and a
    // fortiori the probe's per-thread keys) never share a lock.
    let map = BoostedHashMap::new(throughput_stm(), 64, 1024);
    prefill(&map, &workload);
    let outcome = run_set_workload(&map, &workload, threads);

    let rounds = 200 * scale.factor as usize;
    let (word_attempts, word_aborts) = word_probe(threads, rounds);
    let (boosted_attempts, boosted_semantic_aborts, lock_stats) = boosted_probe(threads, rounds);
    BoostPoint {
        threads,
        ops: outcome.total_ops,
        elapsed: outcome.elapsed,
        word_attempts,
        word_aborts,
        boosted_attempts,
        boosted_semantic_aborts,
        lock_stats,
    }
}

/// Word-level side of the disjoint-key probe: every thread cycles its
/// own key at the head of one shared chain, yielding the core between
/// reading and rewriting the bucket head so contending transactions
/// interleave even on a single-core host (same amplification trick as
/// the E5c contention ladder). Returns (attempts, aborts).
fn word_probe(threads: usize, rounds: usize) -> (u64, u64) {
    const HEAD: usize = 0;
    const KEY: usize = 0;
    const NEXT: usize = 1;
    let stm = throughput_stm();
    let bucket_class = stm
        .heap()
        .define_class(ClassDesc::new("ProbeBucket", vec![FieldDesc::new("head", FieldMut::Var)]));
    let node_class = stm.heap().define_class(ClassDesc::new(
        "ProbeNode",
        vec![FieldDesc::new("key", FieldMut::Val), FieldDesc::new("next", FieldMut::Var)],
    ));
    let bucket = stm.heap().alloc(bucket_class).expect("heap full");
    let attempts = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stm = Arc::clone(&stm);
            let attempts = &attempts;
            scope.spawn(move || {
                let key = t as i64;
                for _ in 0..rounds {
                    stm.atomically(|tx| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        let head = tx.read(bucket, HEAD)?;
                        std::thread::yield_now();
                        let fresh = tx.alloc(node_class)?;
                        tx.store_direct(fresh, KEY, Word::from_scalar(key));
                        tx.store_direct(fresh, NEXT, head);
                        tx.write(bucket, HEAD, Word::from_ref(fresh))
                    });
                    stm.atomically(|tx| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        let mut prev = bucket;
                        let mut prev_field = HEAD;
                        let mut cur = tx.read(bucket, HEAD)?.as_ref();
                        while let Some(n) = cur {
                            if tx.read(n, KEY)?.as_scalar() == Some(key) {
                                break;
                            }
                            prev = n;
                            prev_field = NEXT;
                            cur = tx.read(n, NEXT)?.as_ref();
                        }
                        let Some(node) = cur else { return Ok(()) };
                        std::thread::yield_now();
                        let after = tx.read(node, NEXT)?;
                        tx.write(prev, prev_field, after)
                    });
                }
            });
        }
    });
    let committed = (threads * rounds * 2) as u64;
    let total = attempts.load(Ordering::Relaxed);
    (total, total - committed)
}

/// Boosted side of the disjoint-key probe: the same cycle through the
/// boosted map's composable operations on a one-bucket map. The yield
/// sits inside the *outer* transaction, where this thread holds only
/// its own key's abstract lock — word conflicts between the inner
/// physical steps retry beneath the semantic layer and never abort the
/// outer transaction. Returns (attempts, semantic aborts, lock stats).
fn boosted_probe(threads: usize, rounds: usize) -> (u64, u64, BoostLockStats) {
    let map = Arc::new(BoostedHashMap::new(throughput_stm(), 1, threads.max(64)));
    let attempts = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let map = Arc::clone(&map);
            let attempts = &attempts;
            scope.spawn(move || {
                let key = t as i64;
                for _ in 0..rounds {
                    map.stm().atomically(|tx| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        map.put_in(tx, key, key)?;
                        std::thread::yield_now();
                        map.delete_in(tx, key)?;
                        Ok(())
                    });
                }
            });
        }
    });
    let committed = (threads * rounds) as u64;
    let total = attempts.load(Ordering::Relaxed);
    (total, total - committed, map.locks().stats())
}

impl ScalabilityReport {
    /// Looks up one cell of the sweep.
    pub fn point(&self, workload: &str, impl_name: &str, threads: usize) -> Option<&BenchPoint> {
        self.points
            .iter()
            .find(|p| p.workload == workload && p.impl_name == impl_name && p.threads == threads)
    }

    /// Renders one throughput table per workload.
    pub fn print_tables(&self) {
        for workload in WORKLOADS {
            let mut headers: Vec<&'static str> = vec!["impl"];
            for &t in &self.threads {
                headers.push(Box::leak(format!("{t} thr (ops/s)").into_boxed_str()));
            }
            let mut table = Table::new(format!("E2/E3 scalability: {workload} ops/s"), &headers);
            for impl_name in IMPLS {
                let mut cells = vec![impl_name.to_string()];
                for &t in &self.threads {
                    let p = self.point(workload, impl_name, t).expect("complete sweep");
                    cells.push(format!("{:.0}", p.ops_per_second()));
                }
                table.row(cells);
            }
            table.print();
        }
        self.print_boost_table();
    }

    /// Renders the boosted-map throughput and probe table.
    fn print_boost_table(&self) {
        let mut headers: Vec<&'static str> = vec!["metric"];
        for &t in &self.threads {
            headers.push(Box::leak(format!("{t} thr").into_boxed_str()));
        }
        let mut table =
            Table::new("E2/E3 boosted map: throughput + disjoint-key probe".to_string(), &headers);
        let mut rows = [
            vec!["boosted ops/s".to_string()],
            vec!["probe word aborts".to_string()],
            vec!["probe boosted semantic aborts".to_string()],
            vec!["abstract-lock acquires".to_string()],
        ];
        for p in &self.boost_points {
            rows[0].push(format!("{:.0}", p.ops_per_second()));
            rows[1].push(p.word_aborts.to_string());
            rows[2].push(p.boosted_semantic_aborts.to_string());
            rows[3].push(p.lock_stats.acquires.to_string());
        }
        for row in rows {
            table.row(row);
        }
        table.print();
    }

    /// The machine-readable form (schema checked by
    /// [`validate_report`]).
    pub fn to_json(&self) -> Json {
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Json::Obj(vec![
            ("experiment".into(), Json::Str("e2_scalability".into())),
            ("mode".into(), Json::Str(self.mode.into())),
            ("host_cores".into(), Json::Num(host_cores as f64)),
            (
                "threads".into(),
                Json::Arr(self.threads.iter().map(|&t| Json::Num(t as f64)).collect()),
            ),
            (
                "workloads".into(),
                Json::Arr(WORKLOADS.iter().map(|w| Json::Str((*w).into())).collect()),
            ),
            ("impls".into(), Json::Arr(IMPLS.iter().map(|i| Json::Str((*i).into())).collect())),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("workload".into(), Json::Str(p.workload.into())),
                                ("impl".into(), Json::Str(p.impl_name.into())),
                                ("threads".into(), Json::Num(p.threads as f64)),
                                ("ops".into(), Json::Num(p.ops as f64)),
                                ("elapsed_ms".into(), Json::Num(p.elapsed.as_secs_f64() * 1_000.0)),
                                ("ops_per_second".into(), Json::Num(p.ops_per_second())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "boost_points".into(),
                Json::Arr(
                    self.boost_points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("threads".into(), Json::Num(p.threads as f64)),
                                ("ops".into(), Json::Num(p.ops as f64)),
                                ("elapsed_ms".into(), Json::Num(p.elapsed.as_secs_f64() * 1_000.0)),
                                ("ops_per_second".into(), Json::Num(p.ops_per_second())),
                                ("probe_word_attempts".into(), Json::Num(p.word_attempts as f64)),
                                ("probe_word_aborts".into(), Json::Num(p.word_aborts as f64)),
                                (
                                    "probe_boosted_attempts".into(),
                                    Json::Num(p.boosted_attempts as f64),
                                ),
                                (
                                    "probe_boosted_semantic_aborts".into(),
                                    Json::Num(p.boosted_semantic_aborts as f64),
                                ),
                                ("lock_acquires".into(), Json::Num(p.lock_stats.acquires as f64)),
                                (
                                    "lock_busy_failures".into(),
                                    Json::Num(p.lock_stats.busy_failures as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            // The word-abort-under-contention claim only has teeth when
            // at least one swept point runs ≥ 2 threads; record the
            // disposition so a single-thread sweep can never read as a
            // passing contention probe.
            (
                "e2_contention_probe_gate".into(),
                Json::Str(if self.threads.iter().any(|&t| t >= 2) {
                    "passed".into()
                } else {
                    "skipped_host_conditional".into()
                }),
            ),
        ])
    }
}

/// Checks that `json` is a well-formed scalability report: required
/// keys, correct types, and a complete threads × workloads × impls
/// cross product with positive throughput in every cell.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_report(json: &Json) -> Result<(), String> {
    let experiment = json.get("experiment").and_then(Json::as_str).ok_or("missing `experiment`")?;
    if experiment != "e2_scalability" {
        return Err(format!("unexpected experiment `{experiment}`"));
    }
    let mode = json.get("mode").and_then(Json::as_str).ok_or("missing `mode`")?;
    if mode != "quick" && mode != "full" {
        return Err(format!("mode must be quick|full, got `{mode}`"));
    }
    json.get("host_cores")
        .and_then(Json::as_f64)
        .filter(|&n| n >= 1.0)
        .ok_or("missing or non-positive `host_cores`")?;

    let threads: Vec<usize> = json
        .get("threads")
        .and_then(Json::as_array)
        .ok_or("missing `threads`")?
        .iter()
        .map(|t| t.as_f64().filter(|&n| n >= 1.0).map(|n| n as usize))
        .collect::<Option<_>>()
        .ok_or("`threads` must be positive numbers")?;
    if threads.is_empty() {
        return Err("`threads` is empty".into());
    }
    let workloads: Vec<&str> = json
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or("missing `workloads`")?
        .iter()
        .map(|w| w.as_str())
        .collect::<Option<_>>()
        .ok_or("`workloads` must be strings")?;
    if workloads.len() < 3 {
        return Err(format!("need >= 3 workloads, got {}", workloads.len()));
    }
    let impls: Vec<&str> = json
        .get("impls")
        .and_then(Json::as_array)
        .ok_or("missing `impls`")?
        .iter()
        .map(|i| i.as_str())
        .collect::<Option<_>>()
        .ok_or("`impls` must be strings")?;
    for required in IMPLS {
        if !impls.contains(&required) {
            return Err(format!("missing impl `{required}`"));
        }
    }

    let points = json.get("points").and_then(Json::as_array).ok_or("missing `points`")?;
    let expected = threads.len() * workloads.len() * impls.len();
    if points.len() != expected {
        return Err(format!("expected {expected} points, got {}", points.len()));
    }
    let mut combos = Vec::with_capacity(expected);
    for &t in &threads {
        for &workload in &workloads {
            for &impl_name in &impls {
                combos.push((workload, impl_name, t));
            }
        }
    }
    for (workload, impl_name, t) in combos {
        let point = points
            .iter()
            .find(|p| {
                p.get("workload").and_then(Json::as_str) == Some(workload)
                    && p.get("impl").and_then(Json::as_str) == Some(impl_name)
                    && p.get("threads").and_then(Json::as_f64) == Some(t as f64)
            })
            .ok_or(format!("missing point {workload}/{impl_name}/{t}"))?;
        point
            .get("ops")
            .and_then(Json::as_f64)
            .filter(|&n| n >= 1.0)
            .ok_or(format!("{workload}/{impl_name}/{t}: bad `ops`"))?;
        point
            .get("elapsed_ms")
            .and_then(Json::as_f64)
            .filter(|&n| n > 0.0)
            .ok_or(format!("{workload}/{impl_name}/{t}: bad `elapsed_ms`"))?;
        point
            .get("ops_per_second")
            .and_then(Json::as_f64)
            .filter(|&n| n > 0.0)
            .ok_or(format!("{workload}/{impl_name}/{t}: bad `ops_per_second`"))?;
    }

    // The boosted-map block: one entry per thread count, in axis order,
    // carrying the semantic-conflict claim — the boosted side commits
    // the commuting disjoint-key workload without a single semantic
    // abort, on the same schedule shape that forces word-level aborts.
    let boost =
        json.get("boost_points").and_then(Json::as_array).ok_or("missing `boost_points`")?;
    if boost.len() != threads.len() {
        return Err(format!(
            "expected {} boost_points (one per thread count), got {}",
            threads.len(),
            boost.len()
        ));
    }
    for (point, &t) in boost.iter().zip(&threads) {
        let ctx = format!("boost_points/{t}");
        if point.get("threads").and_then(Json::as_f64) != Some(t as f64) {
            return Err(format!("{ctx}: out-of-order or missing `threads`"));
        }
        for field in ["ops", "elapsed_ms", "ops_per_second"] {
            point
                .get(field)
                .and_then(Json::as_f64)
                .filter(|&n| n > 0.0)
                .ok_or(format!("{ctx}: bad `{field}`"))?;
        }
        let word_aborts = point
            .get("probe_word_aborts")
            .and_then(Json::as_f64)
            .ok_or(format!("{ctx}: missing `probe_word_aborts`"))?;
        if t >= 2 && word_aborts < 1.0 {
            return Err(format!(
                "{ctx}: word-level probe must abort under contention, got {word_aborts}"
            ));
        }
        let semantic_aborts = point
            .get("probe_boosted_semantic_aborts")
            .and_then(Json::as_f64)
            .ok_or(format!("{ctx}: missing `probe_boosted_semantic_aborts`"))?;
        if semantic_aborts != 0.0 {
            return Err(format!(
                "{ctx}: boosted probe aborted {semantic_aborts} times on disjoint keys \
                 (must commute conflict-free)"
            ));
        }
        point
            .get("lock_acquires")
            .and_then(Json::as_f64)
            .filter(|&n| n >= 1.0)
            .ok_or(format!("{ctx}: bad `lock_acquires`"))?;
        point
            .get("probe_word_attempts")
            .and_then(Json::as_f64)
            .filter(|&n| n >= 1.0)
            .ok_or(format!("{ctx}: bad `probe_word_attempts`"))?;
        point
            .get("probe_boosted_attempts")
            .and_then(Json::as_f64)
            .filter(|&n| n >= 1.0)
            .ok_or(format!("{ctx}: bad `probe_boosted_attempts`"))?;
    }

    // The contention probe's word-abort invariant above only fires for
    // points at ≥ 2 threads. The report must say which case it is in:
    // `"passed"` iff the swept axis actually exercised contention, and
    // `"skipped_host_conditional"` otherwise — a single-thread sweep
    // can then never be mistaken for a passing probe downstream.
    let gate = json
        .get("e2_contention_probe_gate")
        .and_then(Json::as_str)
        .ok_or("missing `e2_contention_probe_gate`")?;
    let enforced = threads.iter().any(|&t| t >= 2);
    match (gate, enforced) {
        ("passed", true) | ("skipped_host_conditional", false) => {}
        _ => {
            return Err(format!(
                "`e2_contention_probe_gate` is `{gate}` but the swept axis {threads:?} \
                 makes the contention probe {}",
                if enforced { "enforced" } else { "host-skipped" }
            ));
        }
    }
    Ok(())
}

/// Where the report is written: `BENCH_e2_scalability.json` at the
/// repository root (found by walking up from the working directory),
/// or the working directory itself outside a checkout.
pub fn default_output_path() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        if dir.join(".git").exists() {
            return dir.join("BENCH_e2_scalability.json");
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd.join("BENCH_e2_scalability.json"),
        }
    }
}

/// Serializes the report, re-parses it, validates the schema, and
/// writes it to `path`.
///
/// # Errors
///
/// I/O failure writing the file.
///
/// # Panics
///
/// Panics if the emitted report fails its own schema validation (a
/// harness bug, not an environment problem).
pub fn write_report(report: &ScalabilityReport, path: &Path) -> std::io::Result<()> {
    let json = report.to_json();
    let text = json.to_string();
    let reparsed = crate::json::parse(&text).expect("emitter produced valid JSON");
    validate_report(&reparsed).expect("emitted report matches schema");
    std::fs::write(path, text + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: Scale = Scale { factor: 1, threads: &[1, 2] };

    #[test]
    fn sweep_covers_the_cross_product_and_validates() {
        let report = run_scalability(TINY);
        assert_eq!(report.points.len(), 2 * WORKLOADS.len() * IMPLS.len());
        assert_eq!(report.boost_points.len(), 2, "one boosted point per thread count");
        let json = report.to_json();
        let reparsed = crate::json::parse(&json.to_string()).unwrap();
        validate_report(&reparsed).unwrap();
        report.print_tables();
    }

    #[test]
    fn boosted_probe_commits_commuting_ops_without_semantic_aborts() {
        // The tentpole acceptance claim, asserted directly: at 2
        // threads on one bucket, the word-level side aborts and the
        // boosted side does not.
        let point = boost_point(Scale { factor: 1, threads: &[2] }, 2);
        assert!(point.word_aborts >= 1, "word-level probe must contend");
        assert_eq!(point.boosted_semantic_aborts, 0, "commuting ops must not conflict");
        assert!(point.lock_stats.acquires >= 1);
        assert_eq!(point.lock_stats.busy_failures, 0, "disjoint keys never contend on locks");
    }

    #[test]
    fn validation_rejects_a_missing_boost_block() {
        let report = run_scalability(Scale { factor: 1, threads: &[1] });
        let Json::Obj(members) = report.to_json() else { panic!("object") };
        let without: Vec<_> =
            members.into_iter().filter(|(key, _)| key != "boost_points").collect();
        let err = validate_report(&Json::Obj(without)).unwrap_err();
        assert!(err.contains("boost_points"), "unexpected error: {err}");
    }

    #[test]
    fn validation_rejects_semantic_aborts_in_the_boost_block() {
        let report = run_scalability(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        for (key, value) in &mut members {
            if key == "boost_points" {
                let Json::Arr(points) = value else { panic!("array") };
                let Json::Obj(fields) = &mut points[0] else { panic!("object") };
                for (field, v) in fields {
                    if field == "probe_boosted_semantic_aborts" {
                        *v = Json::Num(3.0);
                    }
                }
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("conflict-free"), "unexpected error: {err}");
    }

    #[test]
    fn validation_rejects_a_mislabeled_contention_probe_gate() {
        // Flip the gate to the disposition the swept axis did *not*
        // produce: both directions must be caught as inconsistent.
        for threads in [&[1][..], &[1, 2][..]] {
            let report = run_scalability(Scale { factor: 1, threads });
            let Json::Obj(mut members) = report.to_json() else { panic!("object") };
            for (key, value) in &mut members {
                if key == "e2_contention_probe_gate" {
                    let flipped = if value.as_str() == Some("passed") {
                        "skipped_host_conditional"
                    } else {
                        "passed"
                    };
                    *value = Json::Str(flipped.into());
                }
            }
            let err = validate_report(&Json::Obj(members)).unwrap_err();
            assert!(err.contains("e2_contention_probe_gate"), "unexpected error: {err}");
        }
    }

    #[test]
    fn single_thread_sweep_reports_the_probe_gate_as_skipped() {
        let report = run_scalability(Scale { factor: 1, threads: &[1] });
        let json = report.to_json();
        assert_eq!(
            json.get("e2_contention_probe_gate").and_then(Json::as_str),
            Some("skipped_host_conditional"),
            "a sweep that never contends must say so"
        );
        let reparsed = crate::json::parse(&json.to_string()).unwrap();
        validate_report(&reparsed).unwrap();
    }

    #[test]
    fn validation_rejects_missing_points() {
        let report = run_scalability(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        for (key, value) in &mut members {
            if key == "points" {
                let Json::Arr(points) = value else { panic!("array") };
                points.pop();
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("points"), "unexpected error: {err}");
    }

    #[test]
    fn validation_rejects_wrong_experiment() {
        let json = crate::json::parse("{\"experiment\": \"e1\"}").unwrap();
        assert!(validate_report(&json).is_err());
    }

    #[test]
    fn output_path_lands_at_a_repo_root_when_inside_one() {
        let path = default_output_path();
        assert!(path.ends_with("BENCH_e2_scalability.json"));
    }
}
