//! The measured E2/E3 scalability harness.
//!
//! Sweeps threads × workload × implementation and reports throughput in
//! two forms: human-readable tables (like the other experiments) and a
//! machine-readable JSON report, `BENCH_e2_scalability.json` at the
//! repository root, whose schema is validated by [`validate_report`]
//! (exercised by CI's bench smoke job).
//!
//! Each workload pits the direct-access STM against the two anchors of
//! the locking spectrum: a single coarse lock (cannot scale by
//! construction) and the hand-crafted fine-grained protocol the paper
//! competes with. STM instances run with statistics recording disabled
//! ([`omt_stm::StmConfig::record_stats`]) so the sweep measures the
//! runtime's hot path, not its accounting.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use omt_heap::Heap;
use omt_stm::{Stm, StmConfig};
use omt_workloads::{
    prefill, run_bank_workload, run_counter_throughput, run_set_workload, CoarseBank,
    CoarseCounterArray, CoarseStdSet, CounterArray, HandOverHandList, LockBank, OpMix, SetWorkload,
    StmBank, StmHashSet, StmSkipList, StripedCounterArray, StripedHashSet,
};

use crate::experiments::Scale;
use crate::harness::Table;
use crate::json::Json;

/// Workloads swept, in report order.
pub const WORKLOADS: [&str; 4] = ["counter", "bank", "stm_hash", "stm_skiplist"];

/// Implementations compared per workload, in report order.
pub const IMPLS: [&str; 3] = ["stm", "coarse", "fine"];

/// One measured cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct BenchPoint {
    /// Workload name (one of [`WORKLOADS`]).
    pub workload: &'static str,
    /// Implementation name (one of [`IMPLS`]).
    pub impl_name: &'static str,
    /// Threads driving the workload.
    pub threads: usize,
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl BenchPoint {
    /// Operations per second.
    pub fn ops_per_second(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ScalabilityReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// Thread counts swept.
    pub threads: Vec<usize>,
    /// One point per thread count × workload × implementation.
    pub points: Vec<BenchPoint>,
}

/// An STM configured for throughput measurement: identical to the
/// default except statistics recording is off.
fn throughput_stm() -> Arc<Stm> {
    Arc::new(Stm::with_config(
        Arc::new(Heap::new()),
        StmConfig { record_stats: false, ..StmConfig::default() },
    ))
}

/// Runs the sweep at the given scale.
pub fn run_scalability(scale: Scale) -> ScalabilityReport {
    let mut points = Vec::new();
    for &threads in scale.threads {
        points.extend(counter_points(scale, threads));
        points.extend(bank_points(scale, threads));
        points.extend(set_points(scale, threads, "stm_hash"));
        points.extend(set_points(scale, threads, "stm_skiplist"));
    }
    ScalabilityReport {
        mode: if scale == Scale::FULL { "full" } else { "quick" },
        threads: scale.threads.to_vec(),
        points,
    }
}

fn counter_points(scale: Scale, threads: usize) -> Vec<BenchPoint> {
    const CELLS: usize = 256;
    let ops_per_thread = 4_000 * scale.factor as usize;
    let ops = (threads * ops_per_thread) as u64;
    let point =
        |impl_name, elapsed| BenchPoint { workload: "counter", impl_name, threads, ops, elapsed };
    let stm = CounterArray::new(throughput_stm(), CELLS);
    let coarse = CoarseCounterArray::new(CELLS);
    let fine = StripedCounterArray::new(CELLS);
    vec![
        point("stm", run_counter_throughput(&stm, threads, ops_per_thread, 61)),
        point("coarse", run_counter_throughput(&coarse, threads, ops_per_thread, 61)),
        point("fine", run_counter_throughput(&fine, threads, ops_per_thread, 61)),
    ]
}

fn bank_points(scale: Scale, threads: usize) -> Vec<BenchPoint> {
    const ACCOUNTS: usize = 64;
    let transfers_per_thread = 2_000 * scale.factor as usize;
    let point = |impl_name, outcome: omt_workloads::BankOutcome| BenchPoint {
        workload: "bank",
        impl_name,
        threads,
        ops: outcome.transfers,
        elapsed: outcome.elapsed,
    };
    let stm = StmBank::new(throughput_stm(), ACCOUNTS, 1_000);
    let coarse = CoarseBank::new(ACCOUNTS, 1_000);
    let fine = LockBank::new(ACCOUNTS, 1_000);
    vec![
        point("stm", run_bank_workload(&stm, threads, transfers_per_thread, None, 67)),
        point("coarse", run_bank_workload(&coarse, threads, transfers_per_thread, None, 67)),
        point("fine", run_bank_workload(&fine, threads, transfers_per_thread, None, 67)),
    ]
}

fn set_points(scale: Scale, threads: usize, workload_name: &'static str) -> Vec<BenchPoint> {
    let workload = match workload_name {
        "stm_hash" => SetWorkload {
            initial_size: 256,
            key_range: 1024,
            mix: OpMix::READ_HEAVY,
            ops_per_thread: 2_000 * scale.factor as usize,
            seed: 71,
        },
        "stm_skiplist" => SetWorkload {
            initial_size: 128,
            key_range: 512,
            mix: OpMix::READ_HEAVY,
            ops_per_thread: 1_000 * scale.factor as usize,
            seed: 73,
        },
        other => unreachable!("unknown set workload {other}"),
    };
    let point = |impl_name, outcome: omt_workloads::SetOutcome| BenchPoint {
        workload: workload_name,
        impl_name,
        threads,
        ops: outcome.total_ops,
        elapsed: outcome.elapsed,
    };
    let mut points = Vec::with_capacity(IMPLS.len());
    // Fresh structures per point so earlier sweep cells cannot skew
    // later ones through size drift.
    if workload_name == "stm_hash" {
        let stm = StmHashSet::new(throughput_stm(), 64);
        prefill(&stm, &workload);
        points.push(point("stm", run_set_workload(&stm, &workload, threads)));
    } else {
        let stm = StmSkipList::new(throughput_stm());
        prefill(&stm, &workload);
        points.push(point("stm", run_set_workload(&stm, &workload, threads)));
    }
    let coarse = CoarseStdSet::new();
    prefill(&coarse, &workload);
    points.push(point("coarse", run_set_workload(&coarse, &workload, threads)));
    if workload_name == "stm_hash" {
        let fine = StripedHashSet::new(64);
        prefill(&fine, &workload);
        points.push(point("fine", run_set_workload(&fine, &workload, threads)));
    } else {
        let fine = HandOverHandList::new();
        prefill(&fine, &workload);
        points.push(point("fine", run_set_workload(&fine, &workload, threads)));
    }
    points
}

impl ScalabilityReport {
    /// Looks up one cell of the sweep.
    pub fn point(&self, workload: &str, impl_name: &str, threads: usize) -> Option<&BenchPoint> {
        self.points
            .iter()
            .find(|p| p.workload == workload && p.impl_name == impl_name && p.threads == threads)
    }

    /// Renders one throughput table per workload.
    pub fn print_tables(&self) {
        for workload in WORKLOADS {
            let mut headers: Vec<&'static str> = vec!["impl"];
            for &t in &self.threads {
                headers.push(Box::leak(format!("{t} thr (ops/s)").into_boxed_str()));
            }
            let mut table = Table::new(format!("E2/E3 scalability: {workload} ops/s"), &headers);
            for impl_name in IMPLS {
                let mut cells = vec![impl_name.to_string()];
                for &t in &self.threads {
                    let p = self.point(workload, impl_name, t).expect("complete sweep");
                    cells.push(format!("{:.0}", p.ops_per_second()));
                }
                table.row(cells);
            }
            table.print();
        }
    }

    /// The machine-readable form (schema checked by
    /// [`validate_report`]).
    pub fn to_json(&self) -> Json {
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Json::Obj(vec![
            ("experiment".into(), Json::Str("e2_scalability".into())),
            ("mode".into(), Json::Str(self.mode.into())),
            ("host_cores".into(), Json::Num(host_cores as f64)),
            (
                "threads".into(),
                Json::Arr(self.threads.iter().map(|&t| Json::Num(t as f64)).collect()),
            ),
            (
                "workloads".into(),
                Json::Arr(WORKLOADS.iter().map(|w| Json::Str((*w).into())).collect()),
            ),
            ("impls".into(), Json::Arr(IMPLS.iter().map(|i| Json::Str((*i).into())).collect())),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("workload".into(), Json::Str(p.workload.into())),
                                ("impl".into(), Json::Str(p.impl_name.into())),
                                ("threads".into(), Json::Num(p.threads as f64)),
                                ("ops".into(), Json::Num(p.ops as f64)),
                                ("elapsed_ms".into(), Json::Num(p.elapsed.as_secs_f64() * 1_000.0)),
                                ("ops_per_second".into(), Json::Num(p.ops_per_second())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Checks that `json` is a well-formed scalability report: required
/// keys, correct types, and a complete threads × workloads × impls
/// cross product with positive throughput in every cell.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_report(json: &Json) -> Result<(), String> {
    let experiment = json.get("experiment").and_then(Json::as_str).ok_or("missing `experiment`")?;
    if experiment != "e2_scalability" {
        return Err(format!("unexpected experiment `{experiment}`"));
    }
    let mode = json.get("mode").and_then(Json::as_str).ok_or("missing `mode`")?;
    if mode != "quick" && mode != "full" {
        return Err(format!("mode must be quick|full, got `{mode}`"));
    }
    json.get("host_cores")
        .and_then(Json::as_f64)
        .filter(|&n| n >= 1.0)
        .ok_or("missing or non-positive `host_cores`")?;

    let threads: Vec<usize> = json
        .get("threads")
        .and_then(Json::as_array)
        .ok_or("missing `threads`")?
        .iter()
        .map(|t| t.as_f64().filter(|&n| n >= 1.0).map(|n| n as usize))
        .collect::<Option<_>>()
        .ok_or("`threads` must be positive numbers")?;
    if threads.is_empty() {
        return Err("`threads` is empty".into());
    }
    let workloads: Vec<&str> = json
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or("missing `workloads`")?
        .iter()
        .map(|w| w.as_str())
        .collect::<Option<_>>()
        .ok_or("`workloads` must be strings")?;
    if workloads.len() < 3 {
        return Err(format!("need >= 3 workloads, got {}", workloads.len()));
    }
    let impls: Vec<&str> = json
        .get("impls")
        .and_then(Json::as_array)
        .ok_or("missing `impls`")?
        .iter()
        .map(|i| i.as_str())
        .collect::<Option<_>>()
        .ok_or("`impls` must be strings")?;
    for required in IMPLS {
        if !impls.contains(&required) {
            return Err(format!("missing impl `{required}`"));
        }
    }

    let points = json.get("points").and_then(Json::as_array).ok_or("missing `points`")?;
    let expected = threads.len() * workloads.len() * impls.len();
    if points.len() != expected {
        return Err(format!("expected {expected} points, got {}", points.len()));
    }
    let mut combos = Vec::with_capacity(expected);
    for &t in &threads {
        for &workload in &workloads {
            for &impl_name in &impls {
                combos.push((workload, impl_name, t));
            }
        }
    }
    for (workload, impl_name, t) in combos {
        let point = points
            .iter()
            .find(|p| {
                p.get("workload").and_then(Json::as_str) == Some(workload)
                    && p.get("impl").and_then(Json::as_str) == Some(impl_name)
                    && p.get("threads").and_then(Json::as_f64) == Some(t as f64)
            })
            .ok_or(format!("missing point {workload}/{impl_name}/{t}"))?;
        point
            .get("ops")
            .and_then(Json::as_f64)
            .filter(|&n| n >= 1.0)
            .ok_or(format!("{workload}/{impl_name}/{t}: bad `ops`"))?;
        point
            .get("elapsed_ms")
            .and_then(Json::as_f64)
            .filter(|&n| n > 0.0)
            .ok_or(format!("{workload}/{impl_name}/{t}: bad `elapsed_ms`"))?;
        point
            .get("ops_per_second")
            .and_then(Json::as_f64)
            .filter(|&n| n > 0.0)
            .ok_or(format!("{workload}/{impl_name}/{t}: bad `ops_per_second`"))?;
    }
    Ok(())
}

/// Where the report is written: `BENCH_e2_scalability.json` at the
/// repository root (found by walking up from the working directory),
/// or the working directory itself outside a checkout.
pub fn default_output_path() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        if dir.join(".git").exists() {
            return dir.join("BENCH_e2_scalability.json");
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd.join("BENCH_e2_scalability.json"),
        }
    }
}

/// Serializes the report, re-parses it, validates the schema, and
/// writes it to `path`.
///
/// # Errors
///
/// I/O failure writing the file.
///
/// # Panics
///
/// Panics if the emitted report fails its own schema validation (a
/// harness bug, not an environment problem).
pub fn write_report(report: &ScalabilityReport, path: &Path) -> std::io::Result<()> {
    let json = report.to_json();
    let text = json.to_string();
    let reparsed = crate::json::parse(&text).expect("emitter produced valid JSON");
    validate_report(&reparsed).expect("emitted report matches schema");
    std::fs::write(path, text + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: Scale = Scale { factor: 1, threads: &[1, 2] };

    #[test]
    fn sweep_covers_the_cross_product_and_validates() {
        let report = run_scalability(TINY);
        assert_eq!(report.points.len(), 2 * WORKLOADS.len() * IMPLS.len());
        let json = report.to_json();
        let reparsed = crate::json::parse(&json.to_string()).unwrap();
        validate_report(&reparsed).unwrap();
        report.print_tables();
    }

    #[test]
    fn validation_rejects_missing_points() {
        let report = run_scalability(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        for (key, value) in &mut members {
            if key == "points" {
                let Json::Arr(points) = value else { panic!("array") };
                points.pop();
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("points"), "unexpected error: {err}");
    }

    #[test]
    fn validation_rejects_wrong_experiment() {
        let json = crate::json::parse("{\"experiment\": \"e1\"}").unwrap();
        assert!(validate_report(&json).is_err());
    }

    #[test]
    fn output_path_lands_at_a_repo_root_when_inside_one() {
        let path = default_output_path();
        assert!(path.ends_with("BENCH_e2_scalability.json"));
    }
}
