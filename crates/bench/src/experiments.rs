//! The reproduction experiments E1–E9 (see DESIGN.md for the mapping to
//! the paper's tables and figures).

use std::sync::Arc;
use std::time::Instant;

use omt_heap::{Heap, RootSet};
use omt_opt::{compile, OptLevel};
use omt_stm::{CmPolicy, Stm, StmConfig};
use omt_vm::{BackendKind, VmConfig};
use omt_workloads::{
    prefill, run_bank_workload, run_contention_point, run_contention_storm, run_set_workload, Bank,
    CoarseStdSet, ConcurrentSet, CounterArray, HandOverHandList, LockBank, OpMix, RwStdSet,
    SetWorkload, StmBank, StmBst, StmHashSet, StmSkipList, StmSortedList, StripedHashSet,
};

use crate::harness::{ms, ratio, time_txil, time_txil_with, Table};
use crate::programs::{txil_benchmarks, COUNTER_CHURN};

/// Experiment sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Multiplier on iteration counts (1 = quick, 4 = full).
    pub factor: i64,
    /// Thread counts to sweep.
    pub threads: &'static [usize],
}

impl Scale {
    /// Fast sizes for CI and smoke runs.
    pub const QUICK: Scale = Scale { factor: 1, threads: &[1, 2, 4] };
    /// The sizes used for EXPERIMENTS.md numbers.
    pub const FULL: Scale = Scale { factor: 4, threads: &[1, 2, 4, 8] };
}

/// E1 — single-threaded overhead of each optimization level, normalized
/// to uninstrumented sequential execution (paper: the headline
/// "overhead reduction" figure).
pub fn e1_overhead(scale: Scale) {
    let mut table = Table::new(
        "E1: single-thread execution time, normalized to sequential (lower is better)",
        &["benchmark", "seq(ms)", "O0", "O1", "O2", "O3", "O4", "wstm"],
    );
    for (name, src, entry, base_n) in txil_benchmarks() {
        let n = base_n * scale.factor;
        let seq = crate::harness::time_txil_uninstrumented(src, entry, n);
        let mut cells = vec![name.to_string(), ms(seq.elapsed)];
        for level in OptLevel::ALL {
            let run = time_txil(src, level, BackendKind::DirectStm, entry, n);
            assert_eq!(run.result, seq.result, "{name}@{level} diverged");
            cells.push(ratio(run.elapsed, seq.elapsed));
        }
        // The buffered STM cannot exploit decomposed barriers; its level
        // is irrelevant, shown once.
        let wstm = time_txil(src, OptLevel::O2, BackendKind::Buffered, entry, n);
        assert_eq!(wstm.result, seq.result, "{name}@wstm diverged");
        cells.push(ratio(wstm.elapsed, seq.elapsed));
        table.row(cells);
    }
    table.print();
}

/// E2 — hash-table scalability: the paper's headline comparison against
/// coarse- and fine-grained locks.
pub fn e2_hashtable(scale: Scale) {
    for (mix_name, mix) in
        [("read-heavy 90/5/5", OpMix::READ_HEAVY), ("write-heavy 50/25/25", OpMix::WRITE_HEAVY)]
    {
        let workload = SetWorkload {
            initial_size: 256,
            key_range: 1024,
            mix,
            ops_per_thread: 4_000 * scale.factor as usize,
            seed: 42,
        };
        let mut table = Table::new(
            format!("E2: hash table ops/s, {mix_name} mix"),
            &header_with_threads("impl", scale.threads),
        );
        let coarse = CoarseStdSet::new();
        prefill(&coarse, &workload);
        table.row(sweep_row("coarse-lock", &coarse, &workload, scale.threads));
        let rw = RwStdSet::new();
        prefill(&rw, &workload);
        table.row(sweep_row("rwlock", &rw, &workload, scale.threads));
        let fine = StripedHashSet::new(64);
        prefill(&fine, &workload);
        table.row(sweep_row("fine (native mem)", &fine, &workload, scale.threads));
        let heap_fine = omt_workloads::HeapStripedHashSet::new(Arc::new(Heap::new()), 64);
        prefill(&heap_fine, &workload);
        table.row(sweep_row("fine (managed heap)", &heap_fine, &workload, scale.threads));
        let stm = StmHashSet::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 64);
        prefill(&stm, &workload);
        table.row(sweep_row("stm", &stm, &workload, scale.threads));
        table.print();
    }
}

/// E3 — scalability on list-, tree-, and skip-list-shaped structures.
pub fn e3_structures(scale: Scale) {
    let list_workload = SetWorkload {
        initial_size: 64,
        key_range: 128,
        mix: OpMix::READ_HEAVY,
        ops_per_thread: 600 * scale.factor as usize,
        seed: 43,
    };
    let mut table = Table::new(
        "E3a: sorted list ops/s (long transactions)",
        &header_with_threads("impl", scale.threads),
    );
    let coarse = CoarseStdSet::new();
    prefill(&coarse, &list_workload);
    table.row(sweep_row("coarse-lock", &coarse, &list_workload, scale.threads));
    let hoh = HandOverHandList::new();
    prefill(&hoh, &list_workload);
    table.row(sweep_row("fine (lock-coupling)", &hoh, &list_workload, scale.threads));
    let stm_list = StmSortedList::new(Arc::new(Stm::new(Arc::new(Heap::new()))));
    prefill(&stm_list, &list_workload);
    table.row(sweep_row("stm", &stm_list, &list_workload, scale.threads));
    table.print();

    let tree_workload = SetWorkload {
        initial_size: 512,
        key_range: 4096,
        mix: OpMix::READ_HEAVY,
        ops_per_thread: 3_000 * scale.factor as usize,
        seed: 44,
    };
    let mut table =
        Table::new("E3b: binary search tree ops/s", &header_with_threads("impl", scale.threads));
    let coarse = CoarseStdSet::new();
    prefill(&coarse, &tree_workload);
    table.row(sweep_row("coarse-lock", &coarse, &tree_workload, scale.threads));
    let rw = RwStdSet::new();
    prefill(&rw, &tree_workload);
    table.row(sweep_row("rwlock", &rw, &tree_workload, scale.threads));
    let stm_tree = StmBst::new(Arc::new(Stm::new(Arc::new(Heap::new()))));
    prefill(&stm_tree, &tree_workload);
    table.row(sweep_row("stm", &stm_tree, &tree_workload, scale.threads));
    table.print();

    let mut table = Table::new("E3c: skip list ops/s", &header_with_threads("impl", scale.threads));
    let coarse = CoarseStdSet::new();
    prefill(&coarse, &tree_workload);
    table.row(sweep_row("coarse-lock", &coarse, &tree_workload, scale.threads));
    let stm_skip = StmSkipList::new(Arc::new(Stm::new(Arc::new(Heap::new()))));
    prefill(&stm_skip, &tree_workload);
    table.row(sweep_row("stm", &stm_skip, &tree_workload, scale.threads));
    table.print();
}

/// E3d — the composite travel workload: multi-structure transactions
/// (three tree moves + a customer update per booking).
pub fn e3d_travel(scale: Scale) {
    use omt_workloads::{run_travel_workload, TravelSystem};
    let mut table = Table::new(
        "E3d: travel bookings (3-structure transactions), attempts/s",
        &header_with_threads("config", scale.threads),
    );
    for (label, resources) in [("64 resources/kind", 64usize), ("8 resources/kind", 8)] {
        let mut cells = vec![label.to_string()];
        for &threads in scale.threads {
            let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
            let travel = TravelSystem::new(stm, resources, 16);
            let outcome = run_travel_workload(&travel, threads, 500 * scale.factor as usize, 53);
            travel.check_invariants();
            cells.push(format!("{:.0}", outcome.attempts_per_second()));
        }
        table.row(cells);
    }
    table.print();
}

/// E4 — static and dynamic barrier counts per optimization level (the
/// compiler's contribution, measured directly).
pub fn e4_barrier_counts(scale: Scale) {
    for (name, src, entry, base_n) in txil_benchmarks() {
        let n = base_n * scale.factor;
        let mut table = Table::new(
            format!("E4: barriers for `{name}` (n = {n})"),
            &[
                "level",
                "static",
                "dyn open-read",
                "dyn open-update",
                "dyn log-undo",
                "barriers/access",
            ],
        );
        for level in OptLevel::ALL {
            let (_, report) = compile(src, level).expect("compiles");
            let (sr, su, sn) = report.static_barriers;
            let run = time_txil(src, level, BackendKind::DirectStm, entry, n);
            let c = run.counters;
            table.row(vec![
                level.to_string(),
                (sr + su + sn).to_string(),
                c.open_read.to_string(),
                c.open_update.to_string(),
                c.log_undo.to_string(),
                format!("{:.3}", c.barriers_per_access()),
            ]);
        }
        table.print();
    }
}

/// A list summed five times inside ONE transaction: 80% of its read
/// opens are loop-carried duplicates only the runtime filter can catch
/// at O1.
const LIST_RETRAVERSE: &str = "
    class Node { val key: int; var next: Node; }
    fn build(n: int) -> Node {
        let head: Node = null;
        let i = 0;
        while i < n { head = new Node(i, head); i = i + 1; }
        return head;
    }
    fn main(n: int) -> int {
        let list = build(100);
        let total = 0;
        let round = 0;
        while round < n {
            atomic {
                let pass = 0;
                while pass < 5 {
                    let p = list;
                    while p != null { total = total + p.key; p = p.next; }
                    pass = pass + 1;
                }
            }
            round = round + 1;
        }
        return total;
    }
";

/// E5 — runtime log filtering: entries appended vs suppressed, with the
/// filter on and off.
pub fn e5_filter(scale: Scale) {
    let mut table = Table::new(
        "E5: runtime log filter (direct STM, level O1 so duplicates reach the runtime)",
        &[
            "benchmark",
            "filter",
            "read entries",
            "read filtered",
            "undo entries",
            "undo filtered",
            "val fast-path",
            "val scanned",
            "time(ms)",
        ],
    );
    for (name, src, entry, base_n) in [
        ("counter-churn", COUNTER_CHURN, "main", 40),
        ("list-retraverse", LIST_RETRAVERSE, "main", 20),
    ] {
        let n = base_n * scale.factor;
        for filter in [true, false] {
            let (ir, _) = compile(src, OptLevel::O1).expect("compiles");
            let heap = Arc::new(Heap::new());
            let stm = Stm::with_config(
                heap.clone(),
                StmConfig { runtime_filter: filter, ..StmConfig::default() },
            );
            let backend = Arc::new(omt_vm::SyncBackend::DirectStm(stm));
            let vm = omt_vm::Vm::new(Arc::new(ir), heap, backend.clone());
            let start = Instant::now();
            vm.run(entry, &[omt_heap::Word::from_scalar(n)]).expect("runs");
            let elapsed = start.elapsed();
            let stats = backend.as_stm().expect("direct").stats();
            table.row(vec![
                name.to_string(),
                if filter { "on" } else { "off" }.to_string(),
                stats.read_entries.to_string(),
                stats.read_filtered.to_string(),
                stats.undo_entries.to_string(),
                stats.undo_filtered.to_string(),
                stats.validation_fast_path.to_string(),
                stats.validation_entries_scanned.to_string(),
                ms(elapsed),
            ]);
        }
    }
    table.print();
}

/// E6 — GC integration: log footprint of a long transaction with the
/// paper's GC-time trimming, versus a conventional GC that must treat
/// log entries as ordinary roots (pinning everything the transaction
/// ever touched).
pub fn e6_gc(scale: Scale) {
    let mut table = Table::new(
        "E6: GC / transaction-log integration for a long transaction",
        &[
            "gc treats logs as",
            "entries before",
            "entries after",
            "log bytes after",
            "objects swept",
            "gc(ms)",
        ],
    );
    for trim in [true, false] {
        let heap = Arc::new(Heap::new());
        let class = heap.define_class(omt_heap::ClassDesc::with_var_fields("Cell", &["v"]));
        let stm = Stm::new(heap.clone());
        let keeper = heap.alloc(class).expect("heap full");
        let mut tx = stm.begin();
        let n = 20_000 * scale.factor as usize;
        let mut touched = Vec::with_capacity(n);
        for _ in 0..n {
            let o = heap.alloc(class).expect("heap full");
            tx.read(o, 0).expect("read");
            touched.push(o);
        }
        tx.read(keeper, 0).expect("read");
        let before = tx.read_set_size();
        let mut roots = RootSet::from(vec![keeper]);
        if !trim {
            // A GC that does not understand transaction logs must keep
            // every logged object alive: model it by rooting them.
            roots.extend(touched.iter().copied());
        }
        let participants: &[&dyn omt_heap::GcParticipant] =
            if trim { &[stm.gc_participant()] } else { &[] };
        let start = Instant::now();
        let outcome = heap.collect(&roots, participants);
        let gc_time = start.elapsed();
        table.row(vec![
            if trim { "trimmable (paper)" } else { "roots (naive)" }.to_string(),
            before.to_string(),
            tx.read_set_size().to_string(),
            stm.registry().total_log_bytes().to_string(),
            outcome.swept.to_string(),
            ms(gc_time),
        ]);
        tx.commit().expect("no conflicts");
    }
    table.print();
}

/// The contention-management policies ablated in E7.
const CM_POLICIES: [CmPolicy; 4] =
    [CmPolicy::AbortSelf, CmPolicy::Spin { max_spins: 128 }, CmPolicy::OldestWins, CmPolicy::Karma];

/// E7 — contention management: throughput and abort rate as the hot-set
/// shrinks, the policy ablation (abort-self / spin / oldest-wins /
/// karma) with per-cause abort breakdowns, and the serial-mode-fallback
/// storm.
pub fn e7_contention(scale: Scale) {
    let threads = *scale.threads.last().unwrap_or(&4);
    let mut table = Table::new(
        format!("E7a: contention sweep ({threads} threads incrementing counters)"),
        &["hot cells", "ops/s", "aborts", "abort rate", "cm spins"],
    );
    for hot in [256usize, 64, 16, 4, 1] {
        let counters = CounterArray::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 256);
        let outcome =
            run_contention_point(&counters, threads, 2_000 * scale.factor as usize, hot, 7);
        table.row(vec![
            hot.to_string(),
            format!("{:.0}", outcome.ops_per_second()),
            outcome.stats.aborts().to_string(),
            format!("{:.4}", outcome.stats.abort_rate()),
            outcome.stats.cm_spins.to_string(),
        ]);
    }
    table.print();

    let cause_headers = [
        "policy",
        "ops/s",
        "aborts",
        "busy",
        "invalid",
        "doomed",
        "dooms",
        "serial",
        "cm spins",
        "val fast-path%",
        "val scans/commit",
        "clk cas-fail%",
        "clk bump-retry",
    ];
    let cause_row = |name: String, ops: f64, s: &omt_stm::StmStatsSnapshot| {
        vec![
            name,
            format!("{ops:.0}"),
            s.aborts().to_string(),
            s.aborts_busy.to_string(),
            s.aborts_invalid.to_string(),
            s.aborts_doomed.to_string(),
            s.dooms_issued.to_string(),
            s.serial_entries.to_string(),
            s.cm_spins.to_string(),
            format!("{:.1}", s.validation_fast_path_rate() * 100.0),
            format!("{:.2}", s.entries_scanned_per_commit()),
            format!("{:.2}", s.clock_cas_failure_rate() * 100.0),
            s.clock_bump_retries.to_string(),
        ]
    };

    let mut table = Table::new(
        format!("E7b: CM policy ablation, counter array ({threads} threads, 4 hot cells)"),
        &cause_headers,
    );
    for cm in CM_POLICIES {
        let stm = Arc::new(Stm::with_config(
            Arc::new(Heap::new()),
            StmConfig { cm, ..StmConfig::default() },
        ));
        let counters = CounterArray::new(stm, 256);
        let per_thread = 2_000 * scale.factor as usize;
        let outcome = run_contention_point(&counters, threads, per_thread, 4, 11);
        assert_eq!(counters.total(), (threads * per_thread) as i64, "{cm}: lost increments");
        table.row(cause_row(cm.to_string(), outcome.ops_per_second(), &outcome.stats));
    }
    table.print();

    let mut table = Table::new(
        format!("E7c: CM policy ablation, bank transfers ({threads} threads, 2 hot accounts)"),
        &cause_headers,
    );
    for cm in CM_POLICIES {
        let stm = Arc::new(Stm::with_config(
            Arc::new(Heap::new()),
            StmConfig { cm, ..StmConfig::default() },
        ));
        let bank = StmBank::new(stm.clone(), 2, 10_000);
        let before = stm.stats();
        let outcome = run_bank_workload(&bank, threads, 2_000 * scale.factor as usize, None, 19);
        assert_eq!(bank.total(), 20_000, "{cm}: money not conserved");
        let stats = stm.stats().delta_since(&before);
        table.row(cause_row(cm.to_string(), outcome.transfers_per_second(), &stats));
    }
    table.print();

    let mut table = Table::new(
        format!("E7d: serial-mode fallback storm ({threads} threads, 1 hot cell, abort-self CM)"),
        &["serial threshold", "ops/s", "aborts", "serial entries", "all committed"],
    );
    for serial_after in [None, Some(8u32)] {
        let stm = Arc::new(Stm::with_config(
            Arc::new(Heap::new()),
            StmConfig {
                cm: CmPolicy::AbortSelf,
                serial_after_aborts: serial_after,
                ..StmConfig::default()
            },
        ));
        let counters = CounterArray::new(stm, 1);
        let per_thread = 1_000 * scale.factor as usize;
        let outcome = run_contention_storm(&counters, threads, per_thread);
        let complete = outcome.per_thread.iter().all(|&c| c == per_thread as u64);
        assert!(complete, "storm livelocked: {:?}", outcome.per_thread);
        assert_eq!(counters.total(), (threads * per_thread) as i64);
        table.row(vec![
            serial_after.map_or("off".to_string(), |n| n.to_string()),
            format!("{:.0}", outcome.total() as f64 / outcome.elapsed.as_secs_f64()),
            outcome.stats.aborts().to_string(),
            outcome.stats.serial_entries.to_string(),
            "yes".to_string(),
        ]);
    }
    table.print();
}

/// E8 — design ablation: direct update + undo log vs buffered update
/// (the structural comparison the paper stakes its design on).
pub fn e8_direct_vs_buffered(scale: Scale) {
    let mut table = Table::new(
        "E8a: direct-access vs buffered STM (single-thread TxIL benchmarks)",
        &["benchmark", "direct(ms)", "buffered(ms)", "buffered/direct"],
    );
    for (name, src, entry, base_n) in txil_benchmarks() {
        let n = base_n * scale.factor;
        let direct = time_txil(src, OptLevel::O4, BackendKind::DirectStm, entry, n);
        let buffered = time_txil(src, OptLevel::O4, BackendKind::Buffered, entry, n);
        assert_eq!(direct.result, buffered.result, "{name} diverged");
        table.row(vec![
            name.to_string(),
            ms(direct.elapsed),
            ms(buffered.elapsed),
            ratio(buffered.elapsed, direct.elapsed),
        ]);
    }
    table.print();

    let mut table = Table::new(
        "E8b: bank transfers per second, direct STM vs fine-grained locks",
        &["impl", "transfers/s", "total conserved"],
    );
    let threads = *scale.threads.last().unwrap_or(&4);
    let transfers = 5_000 * scale.factor as usize;
    let stm_bank = StmBank::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 64, 1_000);
    let outcome = run_bank_workload(&stm_bank, threads, transfers, None, 29);
    table.row(vec![
        "stm (direct)".into(),
        format!("{:.0}", outcome.transfers_per_second()),
        (stm_bank.total() == 64_000).to_string(),
    ]);
    let lock_bank = LockBank::new(64, 1_000);
    let outcome = run_bank_workload(&lock_bank, threads, transfers, None, 29);
    table.row(vec![
        "fine-grained locks".into(),
        format!("{:.0}", outcome.transfers_per_second()),
        (lock_bank.total() == 64_000).to_string(),
    ]);
    table.print();
}

/// E8c — metadata placement: per-object header words (the paper's
/// design) versus a hashed ownership-record table, measured by false
/// conflicts on disjoint-object workloads.
pub fn e8c_metadata_placement(scale: Scale) {
    use omt_baselines::OrecStm;
    use omt_heap::{ClassDesc, Word};
    use omt_util::rng::StdRng;

    let threads = *scale.threads.last().unwrap_or(&4);
    let increments = 2_000 * scale.factor as usize;
    const OBJECTS: usize = 1024;

    let mut table = Table::new(
        format!("E8c: metadata placement — {threads} threads, {OBJECTS} disjoint counters"),
        &["metadata", "ops/s", "aborts", "false-share %"],
    );

    // Per-object header words (omt-stm): disjoint objects can never
    // share metadata, by construction.
    {
        let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
        let counters = CounterArray::new(stm.clone(), OBJECTS);
        let outcome = run_contention_point(&counters, threads, increments, OBJECTS, 37);
        table.row(vec![
            "object header (paper)".into(),
            format!("{:.0}", outcome.ops_per_second()),
            outcome.stats.aborts().to_string(),
            "0.00".into(),
        ]);
    }

    // Hashed orec tables of decreasing size: smaller tables mean more
    // distinct objects sharing one ownership record (false conflicts).
    for bits in [16u32, 8, 4] {
        let heap = Arc::new(Heap::new());
        let class = heap.define_class(ClassDesc::with_var_fields("Counter", &["value"]));
        let cells: Vec<_> = (0..OBJECTS).map(|_| heap.alloc(class).expect("heap full")).collect();
        let stm = OrecStm::new(heap.clone(), bits);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let stm = &stm;
                let cells = &cells;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(37 + t as u64 * 31337);
                    for _ in 0..increments {
                        let cell = cells[rng.gen_range(0..OBJECTS)];
                        stm.atomically(|tx| {
                            let v = tx.read(cell, 0)?.as_scalar().unwrap_or(0);
                            tx.write(cell, 0, Word::from_scalar(v + 1))
                        });
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        let total: i64 = cells.iter().map(|c| heap.load(*c, 0).as_scalar().unwrap_or(0)).sum();
        assert_eq!(total as usize, threads * increments, "lost updates");
        // Structural false-sharing probability: how often two random
        // *distinct* counters map to the same ownership record.
        let mut rng = StdRng::seed_from_u64(99);
        let mut collisions = 0u32;
        const SAMPLES: u32 = 20_000;
        for _ in 0..SAMPLES {
            let a = rng.gen_range(0..OBJECTS);
            let mut b = rng.gen_range(0..OBJECTS - 1);
            if b >= a {
                b += 1;
            }
            if stm.orec_index(cells[a], 0) == stm.orec_index(cells[b], 0) {
                collisions += 1;
            }
        }
        table.row(vec![
            format!("orec table 2^{bits}"),
            format!("{:.0}", (threads * increments) as f64 / elapsed.as_secs_f64()),
            stm.stats().aborts.to_string(),
            format!("{:.2}", collisions as f64 * 100.0 / SAMPLES as f64),
        ]);
    }
    table.print();
}

/// E9 — sandboxing and version overflow.
pub fn e9_sandbox_overflow(scale: Scale) {
    // (a) Back-edge validation cost: the counter-churn loop spends its
    // time inside one transactional loop; validating more often costs
    // more but bounds zombie lifetime.
    let mut table = Table::new(
        "E9a: back-edge validation period vs single-thread time (counter-churn)",
        &["validate every", "time(ms)", "back-edge validations"],
    );
    let n = 40 * scale.factor;
    for every in [Some(16u32), Some(256), Some(4096), None] {
        let run = time_txil_with(
            COUNTER_CHURN,
            OptLevel::O2,
            BackendKind::DirectStm,
            "main",
            n,
            VmConfig { validate_backedges_every: every, ..VmConfig::default() },
        );
        table.row(vec![
            every.map_or("off".to_string(), |e| e.to_string()),
            ms(run.elapsed),
            run.counters.backedge_validations.to_string(),
        ]);
    }
    table.print();

    // (b) Version-number width: tiny widths wrap constantly, each wrap
    // bumping the epoch and aborting concurrent transactions.
    let mut table = Table::new(
        "E9b: version width vs throughput (4 threads, 16 counters)",
        &["version bits", "ops/s", "epoch bumps", "epoch aborts"],
    );
    for bits in [6u32, 10, 62] {
        let stm = Arc::new(Stm::with_config(
            Arc::new(Heap::new()),
            StmConfig { version_bits: bits, ..StmConfig::default() },
        ));
        let counters = CounterArray::new(stm.clone(), 16);
        let outcome = run_contention_point(&counters, 4, 2_000 * scale.factor as usize, 16, 23);
        table.row(vec![
            bits.to_string(),
            format!("{:.0}", outcome.ops_per_second()),
            stm.epoch().to_string(),
            outcome.stats.aborts_epoch.to_string(),
        ]);
    }
    table.print();
}

/// Runs every experiment.
pub fn run_all(scale: Scale) {
    e1_overhead(scale);
    e2_hashtable(scale);
    e3_structures(scale);
    e3d_travel(scale);
    e4_barrier_counts(scale);
    e5_filter(scale);
    e6_gc(scale);
    e7_contention(scale);
    e8_direct_vs_buffered(scale);
    e8c_metadata_placement(scale);
    e9_sandbox_overflow(scale);
}

fn header_with_threads(first: &str, threads: &[usize]) -> Vec<&'static str> {
    // Leak tiny strings: simplest way to build &'static headers for a
    // handful of thread counts; bounded by the sweep size.
    let mut headers: Vec<&'static str> = vec![Box::leak(first.to_owned().into_boxed_str())];
    for t in threads {
        headers.push(Box::leak(format!("{t} thr (ops/s)").into_boxed_str()));
    }
    headers
}

fn sweep_row(
    name: &str,
    set: &dyn ConcurrentSet,
    workload: &SetWorkload,
    threads: &[usize],
) -> Vec<String> {
    let mut cells = vec![name.to_string()];
    for &t in threads {
        let outcome = run_set_workload(set, workload, t);
        cells.push(format!("{:.0}", outcome.ops_per_second()));
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests: each experiment must run end-to-end at tiny scale.
    const TINY: Scale = Scale { factor: 1, threads: &[1, 2] };

    #[test]
    fn e1_runs() {
        e1_overhead(TINY);
    }

    #[test]
    fn e3d_runs() {
        e3d_travel(TINY);
    }

    #[test]
    fn e4_and_e5_run() {
        e4_barrier_counts(TINY);
        e5_filter(TINY);
    }

    #[test]
    fn e6_and_e9_run() {
        e6_gc(TINY);
        e9_sandbox_overflow(TINY);
    }

    #[test]
    fn e7_and_e8_run() {
        e7_contention(TINY);
        e8_direct_vs_buffered(TINY);
        e8c_metadata_placement(TINY);
    }
}
