//! Regenerates the evaluation tables (experiments E1–E9).
//!
//! Usage:
//!   repro [--experiment e1|e2|...|e9|all] [--full]
//!
//! `--full` uses the larger sizes recorded in EXPERIMENTS.md; the
//! default quick sizes finish in well under a minute per experiment.
//!
//! `--experiment e2` (and `e3`, and `all`) additionally runs the
//! measured scalability sweep and writes the machine-readable report
//! `BENCH_e2_scalability.json` at the repository root.

use omt_bench::experiments::{self, Scale};
use omt_bench::scalability;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut scale = Scale::QUICK;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                experiment = iter
                    .next()
                    .unwrap_or_else(|| usage("missing value for --experiment"))
                    .to_ascii_lowercase();
            }
            "--full" => scale = Scale::FULL,
            "--quick" => scale = Scale::QUICK,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    println!("# omt reproduction — experiment {experiment} ({:?})", scale);
    println!("# host: {} core(s)", std::thread::available_parallelism().map_or(1, |n| n.get()));
    match experiment.as_str() {
        "e1" => experiments::e1_overhead(scale),
        "e2" => {
            experiments::e2_hashtable(scale);
            run_scalability_sweep(scale);
        }
        "e3" => {
            experiments::e3_structures(scale);
            experiments::e3d_travel(scale);
            run_scalability_sweep(scale);
        }
        "e4" => experiments::e4_barrier_counts(scale),
        "e5" => experiments::e5_filter(scale),
        "e6" => experiments::e6_gc(scale),
        "e7" => experiments::e7_contention(scale),
        "e8" => {
            experiments::e8_direct_vs_buffered(scale);
            experiments::e8c_metadata_placement(scale);
        }
        "e9" => experiments::e9_sandbox_overflow(scale),
        "all" => {
            experiments::run_all(scale);
            run_scalability_sweep(scale);
        }
        other => usage(&format!("unknown experiment `{other}`")),
    }
}

/// Runs the measured threads × workload × implementation sweep, prints
/// its tables, and writes the validated JSON report.
fn run_scalability_sweep(scale: Scale) {
    let report = scalability::run_scalability(scale);
    report.print_tables();
    let path = scalability::default_output_path();
    match scalability::write_report(&report, &path) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!("usage: repro [--experiment e1|..|e9|all] [--full|--quick]");
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
