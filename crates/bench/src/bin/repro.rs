//! Regenerates the evaluation tables (experiments E1–E9 and the
//! measured sweeps).
//!
//! Usage:
//!   repro [--experiment <id>|all] [--full|--quick]
//!
//! `--full` uses the larger sizes recorded in EXPERIMENTS.md; the
//! default quick sizes finish in well under a minute per experiment.
//! Both flags apply uniformly to every experiment, including the
//! measured sweeps.
//!
//! `--experiment e2` (and `e3`, and `all`) additionally runs the
//! measured scalability sweep and writes `BENCH_e2_scalability.json`
//! at the repository root; `e5b`/`e5c`/`e5d`/`e5e` (and `all`) run the
//! measured validation-cost sweep (one shared run, shared report) and
//! write `BENCH_e5_validation.json`; `e10`
//! (and `all`) runs the measured service-overload sweep and writes
//! `BENCH_e10_service.json`. `all` runs each measured sweep exactly
//! once, however many experiments share it.
//! Run `repro --help` (or pass an unknown id) for the experiment table.

use omt_bench::experiments::{self, Scale};
use omt_bench::{scalability, service, validation};

/// A measured sweep attached to one or more experiments. Sweeps are
/// the expensive part of a run, so `all` deduplicates them and runs
/// each exactly once (after the experiment bodies).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Sweep {
    /// Threads × workload × implementation throughput
    /// (`BENCH_e2_scalability.json`).
    Scalability,
    /// Commit-sequence validation cost (`BENCH_e5_validation.json`).
    Validation,
    /// Service overload robustness: rate × admission-policy grid plus
    /// the fault-injection storm (`BENCH_e10_service.json`).
    Service,
}

/// One dispatchable experiment: id, what it regenerates, a runner for
/// its body, and the measured sweep (if any) that accompanies it.
struct Experiment {
    id: &'static str,
    description: &'static str,
    run: fn(Scale),
    sweep: Option<Sweep>,
}

/// Every experiment id accepted by `--experiment`, in `all` order.
const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "e1",
        description: "single-thread overhead vs locks",
        run: experiments::e1_overhead,
        sweep: None,
    },
    Experiment {
        id: "e2",
        description: "hashtable scaling + measured sweep (BENCH_e2_scalability.json)",
        run: experiments::e2_hashtable,
        sweep: Some(Sweep::Scalability),
    },
    Experiment {
        id: "e3",
        description: "data structures, travel workload + measured sweep",
        run: run_e3_body,
        sweep: Some(Sweep::Scalability),
    },
    Experiment {
        id: "e4",
        description: "static barrier-elimination counts",
        run: experiments::e4_barrier_counts,
        sweep: None,
    },
    Experiment {
        id: "e5",
        description: "runtime log filtering ablation",
        run: experiments::e5_filter,
        sweep: None,
    },
    Experiment {
        id: "e5b",
        description: "commit-sequence validation cost (BENCH_e5_validation.json)",
        run: no_body,
        sweep: Some(Sweep::Validation),
    },
    Experiment {
        id: "e5c",
        description: "snapshot-read abort freedom; rides in BENCH_e5_validation.json",
        run: no_body,
        sweep: Some(Sweep::Validation),
    },
    Experiment {
        id: "e5d",
        description: "clock organization sweep; rides in BENCH_e5_validation.json",
        run: no_body,
        sweep: Some(Sweep::Validation),
    },
    Experiment {
        id: "e5e",
        description: "multi-version mv_depth sweep; rides in BENCH_e5_validation.json",
        run: no_body,
        sweep: Some(Sweep::Validation),
    },
    Experiment {
        id: "e6",
        description: "GC integration: log trimming",
        run: experiments::e6_gc,
        sweep: None,
    },
    Experiment {
        id: "e7",
        description: "contention management policies",
        run: experiments::e7_contention,
        sweep: None,
    },
    Experiment {
        id: "e8",
        description: "direct vs buffered update, metadata placement",
        run: run_e8,
        sweep: None,
    },
    Experiment {
        id: "e9",
        description: "sandboxing and version overflow",
        run: experiments::e9_sandbox_overflow,
        sweep: None,
    },
    Experiment {
        id: "e10",
        description: "service overload robustness (BENCH_e10_service.json)",
        run: no_body,
        sweep: Some(Sweep::Service),
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut scale = Scale::QUICK;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                experiment = iter
                    .next()
                    .unwrap_or_else(|| usage("missing value for --experiment"))
                    .to_ascii_lowercase();
            }
            "--full" => scale = Scale::FULL,
            "--quick" => scale = Scale::QUICK,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    println!("# omt reproduction — experiment {experiment} ({:?})", scale);
    println!("# host: {} core(s)", std::thread::available_parallelism().map_or(1, |n| n.get()));
    if experiment == "all" {
        for e in EXPERIMENTS {
            (e.run)(scale);
        }
        // Measured sweeps run last, each exactly once, however many
        // experiments reference them.
        let mut done: Vec<Sweep> = Vec::new();
        for sweep in EXPERIMENTS.iter().filter_map(|e| e.sweep) {
            if !done.contains(&sweep) {
                done.push(sweep);
                run_sweep(sweep, scale);
            }
        }
    } else {
        match EXPERIMENTS.iter().find(|e| e.id == experiment) {
            Some(e) => {
                (e.run)(scale);
                if let Some(sweep) = e.sweep {
                    run_sweep(sweep, scale);
                }
            }
            None => usage(&format!("unknown experiment `{experiment}`")),
        }
    }
}

/// Body for experiments that consist solely of their measured sweep.
fn no_body(_: Scale) {}

fn run_e3_body(scale: Scale) {
    experiments::e3_structures(scale);
    experiments::e3d_travel(scale);
}

fn run_e8(scale: Scale) {
    experiments::e8_direct_vs_buffered(scale);
    experiments::e8c_metadata_placement(scale);
}

fn run_sweep(sweep: Sweep, scale: Scale) {
    match sweep {
        Sweep::Scalability => run_scalability_sweep(scale),
        Sweep::Validation => run_validation_sweep(scale),
        Sweep::Service => run_service_sweep(scale),
    }
}

/// Runs the measured threads × workload × implementation sweep, prints
/// its tables, and writes the validated JSON report.
fn run_scalability_sweep(scale: Scale) {
    let report = scalability::run_scalability(scale);
    report.print_tables();
    let path = scalability::default_output_path();
    write_or_die(scalability::write_report(&report, &path), &path);
}

/// Runs the measured validation-cost sweep (E5b), prints its tables,
/// and writes the validated JSON report.
fn run_validation_sweep(scale: Scale) {
    let report = validation::run_validation(scale);
    report.print_tables();
    let path = validation::default_output_path();
    write_or_die(validation::write_report(&report, &path), &path);
}

/// Runs the measured service-overload sweep (E10), prints its tables,
/// and writes the validated JSON report.
fn run_service_sweep(scale: Scale) {
    let report = service::run_service(scale);
    report.print_tables();
    let path = service::default_output_path();
    write_or_die(service::write_report(&report, &path), &path);
}

fn write_or_die(result: std::io::Result<()>, path: &std::path::Path) {
    match result {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!("usage: repro [--experiment <id>|all] [--full|--quick]\n");
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:4}  {}", e.id, e.description);
    }
    eprintln!("  all   every experiment above, in order");
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
