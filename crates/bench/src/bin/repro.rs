//! Regenerates the evaluation tables (experiments E1–E9 and the
//! measured sweeps).
//!
//! Usage:
//!   repro [--experiment <id>|all] [--full|--quick]
//!
//! `--full` uses the larger sizes recorded in EXPERIMENTS.md; the
//! default quick sizes finish in well under a minute per experiment.
//! Both flags apply uniformly to every experiment, including the
//! measured sweeps.
//!
//! `--experiment e2` (and `e3`, and `all`) additionally runs the
//! measured scalability sweep and writes `BENCH_e2_scalability.json`
//! at the repository root; `e5b` (and `all`) runs the measured
//! validation-cost sweep and writes `BENCH_e5_validation.json`.
//! Run `repro --help` (or pass an unknown id) for the experiment table.

use omt_bench::experiments::{self, Scale};
use omt_bench::{scalability, validation};

/// One dispatchable experiment: id, what it regenerates, and a runner.
struct Experiment {
    id: &'static str,
    description: &'static str,
    run: fn(Scale),
}

/// Every experiment id accepted by `--experiment`, in `all` order.
const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "e1",
        description: "single-thread overhead vs locks",
        run: experiments::e1_overhead,
    },
    Experiment {
        id: "e2",
        description: "hashtable scaling + measured sweep (BENCH_e2_scalability.json)",
        run: run_e2,
    },
    Experiment {
        id: "e3",
        description: "data structures, travel workload + measured sweep",
        run: run_e3,
    },
    Experiment {
        id: "e4",
        description: "static barrier-elimination counts",
        run: experiments::e4_barrier_counts,
    },
    Experiment {
        id: "e5",
        description: "runtime log filtering ablation",
        run: experiments::e5_filter,
    },
    Experiment {
        id: "e5b",
        description: "commit-sequence validation cost (BENCH_e5_validation.json)",
        run: run_e5b,
    },
    Experiment { id: "e6", description: "GC integration: log trimming", run: experiments::e6_gc },
    Experiment {
        id: "e7",
        description: "contention management policies",
        run: experiments::e7_contention,
    },
    Experiment {
        id: "e8",
        description: "direct vs buffered update, metadata placement",
        run: run_e8,
    },
    Experiment {
        id: "e9",
        description: "sandboxing and version overflow",
        run: experiments::e9_sandbox_overflow,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut scale = Scale::QUICK;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                experiment = iter
                    .next()
                    .unwrap_or_else(|| usage("missing value for --experiment"))
                    .to_ascii_lowercase();
            }
            "--full" => scale = Scale::FULL,
            "--quick" => scale = Scale::QUICK,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    println!("# omt reproduction — experiment {experiment} ({:?})", scale);
    println!("# host: {} core(s)", std::thread::available_parallelism().map_or(1, |n| n.get()));
    if experiment == "all" {
        for e in EXPERIMENTS {
            (e.run)(scale);
        }
    } else {
        match EXPERIMENTS.iter().find(|e| e.id == experiment) {
            Some(e) => (e.run)(scale),
            None => usage(&format!("unknown experiment `{experiment}`")),
        }
    }
}

fn run_e2(scale: Scale) {
    experiments::e2_hashtable(scale);
    run_scalability_sweep(scale);
}

fn run_e3(scale: Scale) {
    experiments::e3_structures(scale);
    experiments::e3d_travel(scale);
    run_scalability_sweep(scale);
}

fn run_e8(scale: Scale) {
    experiments::e8_direct_vs_buffered(scale);
    experiments::e8c_metadata_placement(scale);
}

/// Runs the measured threads × workload × implementation sweep, prints
/// its tables, and writes the validated JSON report.
fn run_scalability_sweep(scale: Scale) {
    let report = scalability::run_scalability(scale);
    report.print_tables();
    let path = scalability::default_output_path();
    write_or_die(scalability::write_report(&report, &path), &path);
}

/// Runs the measured validation-cost sweep (E5b), prints its tables,
/// and writes the validated JSON report.
fn run_e5b(scale: Scale) {
    let report = validation::run_validation(scale);
    report.print_tables();
    let path = validation::default_output_path();
    write_or_die(validation::write_report(&report, &path), &path);
}

fn write_or_die(result: std::io::Result<()>, path: &std::path::Path) {
    match result {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!("usage: repro [--experiment <id>|all] [--full|--quick]\n");
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:4}  {}", e.id, e.description);
    }
    eprintln!("  all   every experiment above, in order");
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
