//! Timing and table-rendering helpers shared by the `repro` binary and
//! the criterion benches.

use std::sync::Arc;
use std::time::{Duration, Instant};

use omt_heap::{Heap, Word};
use omt_opt::{compile, OptLevel};
use omt_vm::{BackendKind, SyncBackend, Vm, VmConfig, VmCountersSnapshot};

/// A plain-text table, printed in the style of the paper's result
/// tables.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:>width$} | ", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "-", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Result of one timed VM run.
#[derive(Debug, Clone, Copy)]
pub struct VmRun {
    /// Wall-clock duration of the timed run.
    pub elapsed: Duration,
    /// Dynamic counters of the timed run.
    pub counters: VmCountersSnapshot,
    /// The program's scalar result (for cross-checking).
    pub result: i64,
}

/// Compiles `src` at `level`, runs `entry(n)` once under `kind`, and
/// measures it.
///
/// # Panics
///
/// Panics on compile errors or runtime traps (benchmark programs are
/// trusted).
pub fn time_txil(src: &str, level: OptLevel, kind: BackendKind, entry: &str, n: i64) -> VmRun {
    time_txil_with(src, level, kind, entry, n, VmConfig::default())
}

/// Like [`time_txil`] with an explicit VM configuration.
pub fn time_txil_with(
    src: &str,
    level: OptLevel,
    kind: BackendKind,
    entry: &str,
    n: i64,
    config: VmConfig,
) -> VmRun {
    let (ir, _) = compile(src, level).expect("benchmark compiles");
    time_ir(Arc::new(ir), kind, entry, n, config)
}

/// Times a run of the program *without any barrier insertion* — the
/// paper's uninstrumented sequential baseline.
pub fn time_txil_uninstrumented(src: &str, entry: &str, n: i64) -> VmRun {
    let program = omt_lang::parse(src).expect("parses");
    let info = omt_lang::check(&program).expect("checks");
    let ir = omt_ir::lower(&program, &info);
    time_ir(Arc::new(ir), BackendKind::Sequential, entry, n, VmConfig::default())
}

fn time_ir(
    ir: Arc<omt_ir::IrProgram>,
    kind: BackendKind,
    entry: &str,
    n: i64,
    config: VmConfig,
) -> VmRun {
    let heap = Arc::new(Heap::new());
    let backend = Arc::new(SyncBackend::new(kind, heap.clone()));
    let vm = Vm::with_config(ir, heap, backend, config);
    // Warm-up run at a small size to touch code paths and the heap.
    vm.run(entry, &[Word::from_scalar(1)]).expect("warmup");

    // Median of three timed runs (the host may be a busy single core).
    let mut best: Option<VmRun> = None;
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        vm.reset_counters();
        let start = Instant::now();
        let result = vm
            .run(entry, &[Word::from_scalar(n)])
            .expect("benchmark runs")
            .map(|w| w.as_scalar().unwrap_or(0))
            .unwrap_or(0);
        let run = VmRun { elapsed: start.elapsed(), counters: vm.counters(), result };
        samples.push(run.elapsed);
        best = Some(run);
    }
    samples.sort();
    let mut run = best.expect("three samples taken");
    run.elapsed = samples[1];
    run
}

/// Median wall-clock of `runs` invocations of `f`.
pub fn median_duration(runs: usize, mut f: impl FnMut() -> Duration) -> Duration {
    assert!(runs >= 1);
    let mut samples: Vec<Duration> = (0..runs).map(|_| f()).collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Formats a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Formats a ratio like `2.41x`.
pub fn ratio(num: Duration, den: Duration) -> String {
    if den.as_nanos() == 0 {
        return "-".to_owned();
    }
    format!("{:.2}x", num.as_secs_f64() / den.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| long-name |"));
        assert!(s.lines().filter(|l| l.starts_with('|')).count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn time_txil_returns_result_and_counters() {
        let run = time_txil(
            crate::programs::COUNTER_CHURN,
            OptLevel::O2,
            BackendKind::DirectStm,
            "main",
            3,
        );
        assert!(run.counters.tx_committed >= 3);
        assert!(run.elapsed.as_nanos() > 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Duration::from_millis(1)), "1.000");
        assert_eq!(ratio(Duration::from_millis(4), Duration::from_millis(2)), "2.00x");
    }
}
