//! The TxIL benchmark programs used by the compiler-side experiments
//! (E1, E4, E9).
//!
//! Each program stresses a different barrier pattern:
//!
//! - [`LIST_TRAVERSE`]: long read-only transactions over a linked list
//!   (read barriers dominate; `val` keys reward immutability elision);
//! - [`BST_INSERT`]: short read-write transactions with allocation
//!   inside the transaction (rewards tx-local elision);
//! - [`COUNTER_CHURN`]: repeated read-modify-write of a few objects in
//!   a loop (rewards CSE, subsumption, and hoisting);
//! - [`BANK_TRANSFER`]: two-object transactions selected by walking an
//!   object chain (a mix of all barrier kinds).

/// A named TxIL benchmark: `(name, source, entry, default_n)`.
pub type TxilBenchmark = (&'static str, &'static str, &'static str, i64);

/// Long read-only traversals.
pub const LIST_TRAVERSE: &str = "
    class Node { val key: int; var next: Node; }
    fn build(n: int) -> Node {
        let head: Node = null;
        let i = 0;
        while i < n { head = new Node(i, head); i = i + 1; }
        return head;
    }
    fn main(n: int) -> int {
        let list = build(200);
        let total = 0;
        let round = 0;
        while round < n {
            atomic {
                let p = list;
                while p != null { total = total + p.key; p = p.next; }
            }
            round = round + 1;
        }
        return total;
    }
";

/// Insert-heavy tree construction with transaction-local allocation.
pub const BST_INSERT: &str = "
    class Tree { var root: TreeNode; }
    class TreeNode { var key: int; var left: TreeNode; var right: TreeNode; }
    fn insert(t: Tree, key: int) {
        atomic {
            let parent: TreeNode = null;
            let goleft = false;
            let p = t.root;
            while p != null {
                parent = p;
                if key < p.key { goleft = true; p = p.left; }
                else { goleft = false; p = p.right; }
            }
            let fresh = new TreeNode(key, null, null);
            if parent == null { t.root = fresh; }
            else if goleft { parent.left = fresh; }
            else { parent.right = fresh; }
        }
    }
    fn depth(p: TreeNode) -> int {
        if p == null { return 0; }
        let l = depth(p.left);
        let r = depth(p.right);
        if l > r { return l + 1; }
        return r + 1;
    }
    fn main(n: int) -> int {
        let t = new Tree();
        let i = 0;
        let key = 17;
        while i < n {
            key = (key * 31 + 7) % 4096;
            insert(t, key);
            i = i + 1;
        }
        return depth(t.root);
    }
";

/// Tight read-modify-write loops over a handful of shared objects.
pub const COUNTER_CHURN: &str = "
    class Counter { var value: int; }
    fn churn(a: Counter, b: Counter, c: Counter, rounds: int) -> int {
        atomic {
            let i = 0;
            while i < rounds {
                a.value = a.value + 1;
                b.value = b.value + a.value;
                c.value = c.value + b.value % 97;
                i = i + 1;
            }
        }
        return c.value;
    }
    fn main(n: int) -> int {
        let a = new Counter();
        let b = new Counter();
        let c = new Counter();
        let round = 0;
        let out = 0;
        while round < n {
            out = churn(a, b, c, 50);
            round = round + 1;
        }
        return out;
    }
";

/// Transfers between accounts held in a linked chain.
pub const BANK_TRANSFER: &str = "
    class Account { var balance: int; var next: Account; }
    fn build(n: int) -> Account {
        let head: Account = null;
        let i = 0;
        while i < n {
            head = new Account(1000, head);
            i = i + 1;
        }
        return head;
    }
    fn nth(head: Account, i: int) -> Account {
        let p = head;
        while i > 0 { p = p.next; i = i - 1; }
        return p;
    }
    fn main(n: int) -> int {
        let accounts = build(16);
        let i = 0;
        let x = 5;
        while i < n {
            x = (x * 1103515245 + 12345) % 16384;
            let from = x % 16;
            let to = (x / 16) % 16;
            if from != to {
                atomic {
                    let fa = nth(accounts, from);
                    let ta = nth(accounts, to);
                    fa.balance = fa.balance - 10;
                    ta.balance = ta.balance + 10;
                }
            }
            i = i + 1;
        }
        let total = 0;
        atomic {
            let p = accounts;
            while p != null { total = total + p.balance; p = p.next; }
        }
        return total;
    }
";

/// All compiler-side benchmarks with default sizes.
pub fn txil_benchmarks() -> Vec<TxilBenchmark> {
    vec![
        ("list-traverse", LIST_TRAVERSE, "main", 50),
        ("bst-insert", BST_INSERT, "main", 400),
        ("counter-churn", COUNTER_CHURN, "main", 40),
        ("bank-transfer", BANK_TRANSFER, "main", 500),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_opt::{compile, OptLevel};

    #[test]
    fn all_benchmarks_compile_at_every_level() {
        for (name, src, _, _) in txil_benchmarks() {
            for level in OptLevel::ALL {
                let (ir, _) =
                    compile(src, level).unwrap_or_else(|e| panic!("{name} failed at {level}: {e}"));
                omt_ir::verify(&ir).unwrap_or_else(|e| panic!("{name} invalid at {level}: {e}"));
            }
        }
    }

    #[test]
    fn benchmarks_produce_stable_answers_across_levels() {
        use std::sync::Arc;
        for (name, src, entry, n) in txil_benchmarks() {
            let mut answers = Vec::new();
            for level in OptLevel::ALL {
                let (ir, _) = compile(src, level).unwrap();
                let heap = Arc::new(omt_heap::Heap::new());
                let backend = Arc::new(omt_vm::SyncBackend::new(
                    omt_vm::BackendKind::DirectStm,
                    heap.clone(),
                ));
                let vm = omt_vm::Vm::new(Arc::new(ir), heap, backend);
                let out = vm
                    .run(entry, &[omt_heap::Word::from_scalar(n / 10)])
                    .unwrap()
                    .unwrap()
                    .as_scalar()
                    .unwrap();
                answers.push(out);
            }
            assert!(
                answers.windows(2).all(|w| w[0] == w[1]),
                "{name}: answers diverged across levels: {answers:?}"
            );
        }
    }

    #[test]
    fn benchmarks_print_parse_print_fixpoint() {
        for (name, src, _, _) in txil_benchmarks() {
            let first = omt_lang::pretty(&omt_lang::parse(src).expect("parse"));
            let second = omt_lang::pretty(&omt_lang::parse(&first).expect("reparse"));
            assert_eq!(first, second, "{name}: printer not a fixpoint");
        }
    }

    #[test]
    fn bank_transfer_conserves_money() {
        use std::sync::Arc;
        let (ir, _) = compile(BANK_TRANSFER, OptLevel::O4).unwrap();
        let heap = Arc::new(omt_heap::Heap::new());
        let backend =
            Arc::new(omt_vm::SyncBackend::new(omt_vm::BackendKind::DirectStm, heap.clone()));
        let vm = omt_vm::Vm::new(Arc::new(ir), heap, backend);
        let total = vm
            .run("main", &[omt_heap::Word::from_scalar(300)])
            .unwrap()
            .unwrap()
            .as_scalar()
            .unwrap();
        assert_eq!(total, 16 * 1000);
    }
}
