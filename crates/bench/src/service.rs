//! The measured E10 service-overload experiment.
//!
//! Drives the `omt-server` transactional bank with open-loop traffic
//! across an arrival-rate × admission-policy grid, then runs a fault
//! storm (probabilistic mid-transaction kills and stalls) under
//! continuous invariant auditing. The report captures the overload
//! story quantitatively:
//!
//! - per point: goodput, shed rate, deadline misses, and latency
//!   percentiles measured from *scheduled arrival* (queueing counts);
//! - per policy: the saturation knee — the highest offered rate whose
//!   goodput ratio stays ≥ 90%;
//! - the storm: injected kills/stalls with the number of orphans
//!   recovered and — the headline robustness invariant — **zero**
//!   conservation violations across every concurrent audit.
//!
//! Output mirrors E2/E5b: human tables plus machine-readable
//! `BENCH_e10_service.json` whose schema is enforced by
//! [`validate_report`] and CI's bench-smoke job. Latency numbers and
//! knee positions are machine-dependent and deliberately *not*
//! schema-checked; the accounting identities and the zero-violation
//! invariant are.

use std::path::{Path, PathBuf};
use std::time::Duration;

use omt_server::{run_open_loop, Service, ServiceConfig, TrafficConfig, TrafficOutcome};
use omt_stm::failpoint::{sites, FailAction, Trigger};

use crate::experiments::Scale;
use crate::harness::Table;
use crate::json::Json;

/// Admission policies compared, in report order.
pub const POLICIES: [&str; 2] = ["admit", "noadmit"];

/// Goodput ratio a point must keep for its rate to count as below the
/// saturation knee.
pub const KNEE_RATIO: f64 = 0.9;

/// One measured cell of the rate × policy sweep.
#[derive(Debug, Clone)]
pub struct ServicePoint {
    /// Admission policy (one of [`POLICIES`]).
    pub policy: &'static str,
    /// Offered arrival rate, requests per second.
    pub rate: f64,
    /// Requests the open-loop schedule offered.
    pub offered: u64,
    /// Requests that committed.
    pub completed: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Requests that missed their deadline after admission.
    pub deadline_misses: u64,
    /// Requests whose conflict retry budget ran out.
    pub retry_exhausted: u64,
    /// Requests admitted via starvation escalation.
    pub escalations: u64,
    /// Concurrent audits completed during the run.
    pub audits: u64,
    /// Audits that saw a broken conservation invariant (must be 0).
    pub invariant_violations: u64,
    /// Whether the post-run audit balanced.
    pub final_audit_ok: bool,
    /// Committed requests per wall-clock second.
    pub goodput_per_sec: f64,
    /// completed / offered.
    pub goodput_ratio: f64,
    /// shed / offered.
    pub shed_rate: f64,
    /// Median latency (µs, from scheduled arrival).
    pub p50_us: u64,
    /// 95th-percentile latency (µs).
    pub p95_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Wall-clock duration of the point (ms).
    pub elapsed_ms: f64,
}

/// Outcome of the fault-injection storm.
#[derive(Debug, Clone)]
pub struct StormOutcome {
    /// Transactions killed mid-flight while holding ownership.
    pub kills: u64,
    /// Injected stall fires.
    pub stalls: u64,
    /// Orphans recovered by concurrent transactions.
    pub orphans_recovered: u64,
    /// Requests offered during the storm.
    pub offered: u64,
    /// Requests that committed during the storm.
    pub completed: u64,
    /// Concurrent audits completed during the storm.
    pub audits: u64,
    /// Audits that saw a broken invariant (must be 0).
    pub invariant_violations: u64,
    /// Whether the ledger balanced after the storm.
    pub final_audit_ok: bool,
}

/// The full E10 result.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// Arrival rates swept (requests/second).
    pub rates: Vec<f64>,
    /// One point per policy × rate.
    pub points: Vec<ServicePoint>,
    /// The fault-injection storm run.
    pub storm: StormOutcome,
}

/// Worker threads driving the open loop (bounded so the sweep behaves
/// on small hosts).
fn workers() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get()).clamp(2, 4)
}

/// Shared service tuning for every sweep point (admission per policy).
///
/// The in-flight cap is deliberately tight — half the worker pool — so
/// the gate is *reachable*: a cap the workers can never fill would
/// leave admission control unmeasured and both policies identical.
/// With a tight gate, shedding is load-proportional (overlap between
/// workers grows with the arrival rate), which is the behaviour the
/// sweep is after.
fn service_config(policy: &str) -> ServiceConfig {
    ServiceConfig {
        accounts: 256,
        initial_balance: 1_000,
        deadline: Duration::from_millis(5),
        max_inflight: (workers() / 2).max(1),
        shed_abort_rate: 0.85,
        shed_serial_per_sec: 100.0,
        signal_window: Duration::from_millis(5),
        starvation_sheds: 8,
        admission: policy == "admit",
        ..ServiceConfig::default()
    }
}

fn traffic_config(scale: Scale, rate: f64) -> TrafficConfig {
    TrafficConfig {
        sessions: 2_000,
        workers: workers(),
        arrival_rate: rate,
        duration: Duration::from_millis(if scale == Scale::FULL { 500 } else { 200 }),
        zipf_exponent: 1.0,
        read_fraction: 0.5,
        audit_period: Some(Duration::from_millis(5)),
        seed: 1213,
    }
}

fn point_from_outcome(policy: &'static str, rate: f64, outcome: &TrafficOutcome) -> ServicePoint {
    ServicePoint {
        policy,
        rate,
        offered: outcome.offered,
        completed: outcome.completed,
        shed: outcome.shed,
        deadline_misses: outcome.deadline_misses,
        retry_exhausted: outcome.retry_exhausted,
        escalations: outcome.escalations,
        audits: outcome.audits,
        invariant_violations: outcome.invariant_violations,
        final_audit_ok: outcome.final_audit_ok,
        goodput_per_sec: outcome.goodput_per_sec(),
        goodput_ratio: outcome.goodput_ratio(),
        shed_rate: outcome.shed_rate(),
        p50_us: outcome.latency_us.percentile(50.0),
        p95_us: outcome.latency_us.percentile(95.0),
        p99_us: outcome.latency_us.percentile(99.0),
        elapsed_ms: outcome.elapsed.as_secs_f64() * 1_000.0,
    }
}

/// Runs the rate × policy sweep plus the fault storm.
pub fn run_service(scale: Scale) -> ServiceReport {
    let rates: Vec<f64> = if scale == Scale::FULL {
        vec![2_000.0, 8_000.0, 32_000.0, 128_000.0, 512_000.0]
    } else {
        vec![2_000.0, 8_000.0, 32_000.0, 128_000.0]
    };
    let mut points = Vec::new();
    for policy in POLICIES {
        for &rate in &rates {
            let service = Service::new(service_config(policy));
            let outcome = run_open_loop(&service, &traffic_config(scale, rate));
            points.push(point_from_outcome(policy, rate, &outcome));
        }
    }
    let storm = run_storm(scale);
    ServiceReport {
        mode: if scale == Scale::FULL { "full" } else { "quick" },
        rates,
        points,
        storm,
    }
}

/// The storm: probabilistic kills at update acquisition (so every kill
/// orphans held ownership) and stalls ahead of validation, under
/// moderate open-loop traffic with the continuous auditor running.
fn run_storm(scale: Scale) -> StormOutcome {
    let service = Service::new(service_config("admit"));
    let stm = service.stm().clone();
    stm.failpoints().set(
        sites::OPEN_UPDATE_AFTER_ACQUIRE,
        FailAction::Kill,
        Trigger::Prob { p: 0.01, seed: 0xB10C },
    );
    stm.failpoints().set(
        sites::COMMIT_BEFORE_VALIDATE,
        FailAction::Delay(20_000),
        Trigger::Prob { p: 0.05, seed: 0x57A1 },
    );
    let traffic = TrafficConfig {
        arrival_rate: 4_000.0,
        duration: Duration::from_millis(if scale == Scale::FULL { 600 } else { 300 }),
        ..traffic_config(scale, 4_000.0)
    };
    let before = stm.stats();
    let outcome = run_open_loop(&service, &traffic);
    stm.failpoints().reset();
    let delta = stm.stats().delta_since(&before);
    // One clean audit with injection disarmed: recovery (including the
    // validation-path recovery for read-side stumbles) must have left
    // an intact, balanced ledger.
    let final_audit_ok = outcome.final_audit_ok
        && service.audit_total() == service.expected_total()
        && stm.registry().orphan_count() == 0;
    StormOutcome {
        kills: delta.txs_killed,
        stalls: delta.failpoint_fires.saturating_sub(delta.txs_killed),
        orphans_recovered: stm.stats().orphans_recovered,
        offered: outcome.offered,
        completed: outcome.completed,
        audits: outcome.audits,
        invariant_violations: outcome.invariant_violations,
        final_audit_ok,
    }
}

impl ServiceReport {
    /// Looks up one cell of the sweep.
    pub fn point(&self, policy: &str, rate: f64) -> Option<&ServicePoint> {
        self.points.iter().find(|p| p.policy == policy && p.rate == rate)
    }

    /// The saturation knee for `policy`: the highest swept rate whose
    /// goodput ratio stays at or above [`KNEE_RATIO`] (0.0 when even
    /// the lowest rate saturates).
    pub fn knee(&self, policy: &str) -> f64 {
        self.points
            .iter()
            .filter(|p| p.policy == policy && p.goodput_ratio >= KNEE_RATIO)
            .map(|p| p.rate)
            .fold(0.0, f64::max)
    }

    /// Renders one table per policy plus the storm summary.
    pub fn print_tables(&self) {
        for policy in POLICIES {
            let mut table = Table::new(
                format!("E10 service overload: policy = {policy}"),
                &["rate/s", "offered", "goodput/s", "ratio", "shed%", "p50 µs", "p95 µs", "p99 µs"],
            );
            for &rate in &self.rates {
                let p = self.point(policy, rate).expect("complete sweep");
                table.row(vec![
                    format!("{rate:.0}"),
                    format!("{}", p.offered),
                    format!("{:.0}", p.goodput_per_sec),
                    format!("{:.2}", p.goodput_ratio),
                    format!("{:.1}", p.shed_rate * 100.0),
                    format!("{}", p.p50_us),
                    format!("{}", p.p95_us),
                    format!("{}", p.p99_us),
                ]);
            }
            table.print();
            println!("  saturation knee ({policy}): {:.0} req/s\n", self.knee(policy));
        }
        let s = &self.storm;
        println!(
            "E10 fault storm: {} kills, {} stalls, {} orphans recovered, \
             {}/{} requests committed, {} audits, {} invariant violations, final audit {}",
            s.kills,
            s.stalls,
            s.orphans_recovered,
            s.completed,
            s.offered,
            s.audits,
            s.invariant_violations,
            if s.final_audit_ok { "balanced" } else { "BROKEN" }
        );
    }

    /// The machine-readable form (schema checked by
    /// [`validate_report`]).
    pub fn to_json(&self) -> Json {
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let point_json = |p: &ServicePoint| {
            Json::Obj(vec![
                ("policy".into(), Json::Str(p.policy.into())),
                ("rate".into(), Json::Num(p.rate)),
                ("offered".into(), Json::Num(p.offered as f64)),
                ("completed".into(), Json::Num(p.completed as f64)),
                ("shed".into(), Json::Num(p.shed as f64)),
                ("deadline_misses".into(), Json::Num(p.deadline_misses as f64)),
                ("retry_exhausted".into(), Json::Num(p.retry_exhausted as f64)),
                ("escalations".into(), Json::Num(p.escalations as f64)),
                ("audits".into(), Json::Num(p.audits as f64)),
                ("invariant_violations".into(), Json::Num(p.invariant_violations as f64)),
                ("final_audit_ok".into(), Json::Bool(p.final_audit_ok)),
                ("goodput_per_sec".into(), Json::Num(p.goodput_per_sec)),
                ("goodput_ratio".into(), Json::Num(p.goodput_ratio)),
                ("shed_rate".into(), Json::Num(p.shed_rate)),
                ("p50_us".into(), Json::Num(p.p50_us as f64)),
                ("p95_us".into(), Json::Num(p.p95_us as f64)),
                ("p99_us".into(), Json::Num(p.p99_us as f64)),
                ("elapsed_ms".into(), Json::Num(p.elapsed_ms)),
            ])
        };
        let s = &self.storm;
        Json::Obj(vec![
            ("experiment".into(), Json::Str("e10_service".into())),
            ("mode".into(), Json::Str(self.mode.into())),
            ("host_cores".into(), Json::Num(host_cores as f64)),
            ("rates".into(), Json::Arr(self.rates.iter().map(|&r| Json::Num(r)).collect())),
            (
                "policies".into(),
                Json::Arr(POLICIES.iter().map(|p| Json::Str((*p).into())).collect()),
            ),
            ("points".into(), Json::Arr(self.points.iter().map(point_json).collect())),
            (
                "knees".into(),
                Json::Obj(
                    POLICIES.iter().map(|&p| (p.to_string(), Json::Num(self.knee(p)))).collect(),
                ),
            ),
            (
                "storm".into(),
                Json::Obj(vec![
                    ("kills".into(), Json::Num(s.kills as f64)),
                    ("stalls".into(), Json::Num(s.stalls as f64)),
                    ("orphans_recovered".into(), Json::Num(s.orphans_recovered as f64)),
                    ("offered".into(), Json::Num(s.offered as f64)),
                    ("completed".into(), Json::Num(s.completed as f64)),
                    ("audits".into(), Json::Num(s.audits as f64)),
                    ("invariant_violations".into(), Json::Num(s.invariant_violations as f64)),
                    ("final_audit_ok".into(), Json::Bool(s.final_audit_ok)),
                ]),
            ),
        ])
    }
}

fn req_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key).and_then(Json::as_f64).filter(|n| *n >= 0.0).ok_or(format!("{ctx}: bad `{key}`"))
}

/// Checks that `json` is a well-formed E10 report: required keys, a
/// complete policies × rates cross product, exact request accounting
/// (offered = completed + shed + deadline misses + retry exhausted),
/// monotone latency percentiles, shedding only under the `admit`
/// policy — and the robustness headline: **zero invariant violations
/// everywhere**, a balanced final audit everywhere, and a storm that
/// actually killed transactions (kills ≥ 1, orphans recovered ≥ 1)
/// while the service kept committing requests.
///
/// Latency magnitudes, goodput, and knee positions are machine-
/// dependent and not constrained beyond internal consistency.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_report(json: &Json) -> Result<(), String> {
    let experiment = json.get("experiment").and_then(Json::as_str).ok_or("missing `experiment`")?;
    if experiment != "e10_service" {
        return Err(format!("unexpected experiment `{experiment}`"));
    }
    let mode = json.get("mode").and_then(Json::as_str).ok_or("missing `mode`")?;
    if mode != "quick" && mode != "full" {
        return Err(format!("mode must be quick|full, got `{mode}`"));
    }
    json.get("host_cores")
        .and_then(Json::as_f64)
        .filter(|&n| n >= 1.0)
        .ok_or("missing or non-positive `host_cores`")?;

    let rates: Vec<f64> = json
        .get("rates")
        .and_then(Json::as_array)
        .ok_or("missing `rates`")?
        .iter()
        .map(|r| r.as_f64().filter(|&n| n > 0.0))
        .collect::<Option<_>>()
        .ok_or("`rates` must be positive numbers")?;
    if rates.is_empty() {
        return Err("`rates` is empty".into());
    }
    let policies: Vec<&str> = json
        .get("policies")
        .and_then(Json::as_array)
        .ok_or("missing `policies`")?
        .iter()
        .map(|p| p.as_str())
        .collect::<Option<_>>()
        .ok_or("`policies` must be strings")?;
    for required in POLICIES {
        if !policies.contains(&required) {
            return Err(format!("missing policy `{required}`"));
        }
    }

    let points = json.get("points").and_then(Json::as_array).ok_or("missing `points`")?;
    let expected = rates.len() * policies.len();
    if points.len() != expected {
        return Err(format!("expected {expected} points, got {}", points.len()));
    }
    let find = |policy: &str, rate: f64| {
        points.iter().find(|p| {
            p.get("policy").and_then(Json::as_str) == Some(policy)
                && p.get("rate").and_then(Json::as_f64) == Some(rate)
        })
    };
    for &policy in &policies {
        for &rate in &rates {
            let ctx = format!("{policy}/{rate:.0}");
            let point = find(policy, rate).ok_or(format!("missing point {ctx}"))?;
            let offered = req_num(point, "offered", &ctx)?;
            if offered < 1.0 {
                return Err(format!("{ctx}: no requests offered"));
            }
            let completed = req_num(point, "completed", &ctx)?;
            if completed < 1.0 {
                return Err(format!("{ctx}: no request committed"));
            }
            let shed = req_num(point, "shed", &ctx)?;
            let deadline = req_num(point, "deadline_misses", &ctx)?;
            let retries = req_num(point, "retry_exhausted", &ctx)?;
            if completed + shed + deadline + retries != offered {
                return Err(format!("{ctx}: request accounting does not sum to offered"));
            }
            if policy == "noadmit" && shed != 0.0 {
                return Err(format!("{ctx}: admission off but requests were shed"));
            }
            let violations = req_num(point, "invariant_violations", &ctx)?;
            if violations != 0.0 {
                return Err(format!("{ctx}: {violations} invariant violations"));
            }
            if point.get("final_audit_ok") != Some(&Json::Bool(true)) {
                return Err(format!("{ctx}: final audit did not balance"));
            }
            let audits = req_num(point, "audits", &ctx)?;
            if audits < 1.0 {
                return Err(format!("{ctx}: the continuous auditor never ran"));
            }
            let p50 = req_num(point, "p50_us", &ctx)?;
            let p95 = req_num(point, "p95_us", &ctx)?;
            let p99 = req_num(point, "p99_us", &ctx)?;
            if p50 > p95 || p95 > p99 {
                return Err(format!("{ctx}: percentiles not monotone ({p50}/{p95}/{p99})"));
            }
            point
                .get("elapsed_ms")
                .and_then(Json::as_f64)
                .filter(|&n| n > 0.0)
                .ok_or(format!("{ctx}: bad `elapsed_ms`"))?;
            let ratio = req_num(point, "goodput_ratio", &ctx)?;
            if (ratio - completed / offered).abs() > 1e-9 {
                return Err(format!("{ctx}: `goodput_ratio` inconsistent with counts"));
            }
            let shed_rate = req_num(point, "shed_rate", &ctx)?;
            if (shed_rate - shed / offered).abs() > 1e-9 {
                return Err(format!("{ctx}: `shed_rate` inconsistent with counts"));
            }
        }
    }

    let knees = json.get("knees").ok_or("missing `knees`")?;
    for &policy in &policies {
        let knee = knees
            .get(policy)
            .and_then(Json::as_f64)
            .ok_or(format!("missing knee for `{policy}`"))?;
        if knee != 0.0 && !rates.contains(&knee) {
            return Err(format!("knee {knee} for `{policy}` is not a swept rate"));
        }
    }

    let storm = json.get("storm").ok_or("missing `storm`")?;
    let kills = req_num(storm, "kills", "storm")?;
    if kills < 1.0 {
        return Err("storm: no transaction was killed".into());
    }
    if req_num(storm, "orphans_recovered", "storm")? < 1.0 {
        return Err("storm: kills happened but no orphan was recovered".into());
    }
    if req_num(storm, "completed", "storm")? < 1.0 {
        return Err("storm: the service stopped committing under faults".into());
    }
    if req_num(storm, "audits", "storm")? < 1.0 {
        return Err("storm: the continuous auditor never ran".into());
    }
    if req_num(storm, "invariant_violations", "storm")? != 0.0 {
        return Err("storm: conservation invariant violated".into());
    }
    if storm.get("final_audit_ok") != Some(&Json::Bool(true)) {
        return Err("storm: final audit did not balance".into());
    }
    Ok(())
}

/// Where the report is written: `BENCH_e10_service.json` at the
/// repository root (found by walking up from the working directory),
/// or the working directory itself outside a checkout.
pub fn default_output_path() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        if dir.join(".git").exists() {
            return dir.join("BENCH_e10_service.json");
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd.join("BENCH_e10_service.json"),
        }
    }
}

/// Serializes the report, re-parses it, validates the schema, and
/// writes it to `path`.
///
/// # Errors
///
/// I/O failure writing the file.
///
/// # Panics
///
/// Panics if the emitted report fails its own schema validation (a
/// harness bug, not an environment problem).
pub fn write_report(report: &ServiceReport, path: &Path) -> std::io::Result<()> {
    let json = report.to_json();
    let text = json.to_string();
    let reparsed = crate::json::parse(&text).expect("emitter produced valid JSON");
    validate_report(&reparsed).expect("emitted report matches schema");
    std::fs::write(path, text + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_a_schema_valid_report() {
        let report = run_service(Scale { factor: 1, threads: &[1, 2] });
        assert_eq!(report.points.len(), POLICIES.len() * report.rates.len());
        assert_eq!(report.storm.invariant_violations, 0, "lost update under faults");
        assert!(report.storm.kills >= 1, "storm injected no kills");
        assert!(report.storm.final_audit_ok);
        let json = report.to_json();
        let reparsed = crate::json::parse(&json.to_string()).unwrap();
        validate_report(&reparsed).unwrap();
        report.print_tables();
    }

    #[test]
    fn validation_rejects_an_invariant_violation() {
        let report = run_service(Scale { factor: 1, threads: &[1] });
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        for (key, value) in &mut members {
            if key == "storm" {
                let Json::Obj(fields) = value else { panic!("object") };
                for (k, v) in fields.iter_mut() {
                    if k == "invariant_violations" {
                        *v = Json::Num(1.0);
                    }
                }
            }
        }
        let err = validate_report(&Json::Obj(members)).unwrap_err();
        assert!(err.contains("invariant"), "got: {err}");
    }

    #[test]
    fn validation_rejects_wrong_experiment() {
        let json = crate::json::parse("{\"experiment\": \"e2_scalability\"}").unwrap();
        assert!(validate_report(&json).is_err());
    }

    #[test]
    fn output_path_lands_at_a_repo_root_when_inside_one() {
        let path = default_output_path();
        assert!(path.ends_with("BENCH_e10_service.json"));
    }
}
