//! The STM word: per-object transactional metadata in one header word.
//!
//! The PLDI 2006 design attaches exactly one word of STM metadata to each
//! object. When the object is *quiescent* the word holds a version
//! number; when a transaction has the object open for update the word
//! points at that transaction's update-log entry:
//!
//! ```text
//! bit 0 = 0:  [ version : 63 ][0]
//! bit 0 = 1:  [ update-log entry index : 31 ][ owner token : 32 ][1]
//! ```
//!
//! The owner token identifies the owning transaction (for the cheap
//! "already open by me?" test) and the entry index lets the owner find
//! the original version it recorded when acquiring the object.
//! Validation always *decodes* owned words instead of comparing them
//! bitwise, so token reuse cannot produce ABA false positives.

use std::fmt;

/// Identifies a transaction for the duration of its execution.
///
/// Tokens are drawn from a global wrapping counter, but allocation is
/// **reuse-safe in every build**: `Stm::begin` redraws any candidate
/// that is still registered to a live transaction, so a counter wrap
/// (after 2³² begins) can never reissue a token two concurrent
/// transactions would both answer to. Token 0 is never issued — the
/// abstract-lock table ([`crate::boost`]) reserves it as the "free"
/// encoding of a lock word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxToken(pub(crate) u32);

impl TxToken {
    /// Raw token value.
    pub fn to_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TxToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// Maximum update-log entry index encodable in an STM word.
pub const MAX_UPDATE_ENTRIES: u32 = (1 << 31) - 1;

/// Maximum version number encodable in an STM word.
pub const MAX_VERSION: u64 = (1 << 63) - 1;

/// Decoded view of an object's STM word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmWord {
    /// Quiescent: the object's current version number.
    Version(u64),
    /// Open for update by `owner`; `entry` indexes the owner's update log.
    Owned {
        /// The owning transaction's token.
        owner: TxToken,
        /// Index of the acquiring entry in the owner's update log.
        entry: u32,
    },
}

impl StmWord {
    /// Decodes a raw header word.
    pub fn decode(bits: u64) -> StmWord {
        if bits & 1 == 0 {
            StmWord::Version(bits >> 1)
        } else {
            StmWord::Owned { owner: TxToken((bits >> 1) as u32), entry: (bits >> 33) as u32 }
        }
    }

    /// Encodes this view back into a raw header word.
    ///
    /// # Panics
    ///
    /// Panics if a version exceeds [`MAX_VERSION`] or an entry index
    /// exceeds [`MAX_UPDATE_ENTRIES`].
    pub fn encode(self) -> u64 {
        match self {
            StmWord::Version(v) => {
                assert!(v <= MAX_VERSION, "version {v} out of range");
                v << 1
            }
            StmWord::Owned { owner, entry } => {
                assert!(entry <= MAX_UPDATE_ENTRIES, "update entry {entry} out of range");
                (u64::from(entry) << 33) | (u64::from(owner.0) << 1) | 1
            }
        }
    }

    /// True if the word encodes ownership.
    pub fn is_owned(self) -> bool {
        matches!(self, StmWord::Owned { .. })
    }

    /// The version, if quiescent.
    pub fn version(self) -> Option<u64> {
        match self {
            StmWord::Version(v) => Some(v),
            StmWord::Owned { .. } => None,
        }
    }

    /// The snapshot-read acceptance test (DESIGN.md §4.10): true if the
    /// word is quiescent at a version no newer than `read_ver`, i.e.
    /// the object's last publishing commit is already covered by the
    /// reader's commit-clock snapshot. Owned words never pass —
    /// ownership has to be resolved (waited out or fallen back from)
    /// before the version can be judged.
    pub fn covered_by(self, read_ver: u64) -> bool {
        matches!(self, StmWord::Version(v) if v <= read_ver)
    }
}

/// Encodes a version number (convenience for hot paths).
///
/// # Panics
///
/// Panics if `v` exceeds [`MAX_VERSION`] — in release builds too,
/// matching [`StmWord::encode`]. A `debug_assert!` here once let a
/// wrapped version shift into bit 0 in release mode, silently turning a
/// version word into an ownership word; a hard assert costs one
/// predicted compare against a constant and can never corrupt a header.
#[inline]
pub(crate) fn version_bits(v: u64) -> u64 {
    assert!(v <= MAX_VERSION, "version {v} out of range");
    v << 1
}

/// Encodes an ownership word (convenience for hot paths).
///
/// # Panics
///
/// Panics if `entry` exceeds [`MAX_UPDATE_ENTRIES`] — in release builds
/// too, matching [`StmWord::encode`] (the same unification as
/// [`version_bits`]; an oversized index would silently alias another
/// transaction's entry otherwise).
#[inline]
pub(crate) fn owned_bits(owner: TxToken, entry: u32) -> u64 {
    assert!(entry <= MAX_UPDATE_ENTRIES, "update entry {entry} out of range");
    (u64::from(entry) << 33) | (u64::from(owner.0) << 1) | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_round_trip() {
        for v in [0u64, 1, 42, 1 << 20, MAX_VERSION] {
            let bits = StmWord::Version(v).encode();
            assert_eq!(StmWord::decode(bits), StmWord::Version(v));
            assert_eq!(bits & 1, 0);
        }
    }

    #[test]
    fn owned_round_trip() {
        for owner in [0u32, 1, u32::MAX] {
            for entry in [0u32, 1, MAX_UPDATE_ENTRIES] {
                let w = StmWord::Owned { owner: TxToken(owner), entry };
                let bits = w.encode();
                assert_eq!(StmWord::decode(bits), w);
                assert_eq!(bits & 1, 1);
            }
        }
    }

    #[test]
    fn fresh_header_is_version_zero() {
        assert_eq!(StmWord::decode(0), StmWord::Version(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn version_overflow_panics() {
        let _ = StmWord::Version(MAX_VERSION + 1).encode();
    }

    #[test]
    fn helpers_match_encode() {
        assert_eq!(version_bits(7), StmWord::Version(7).encode());
        assert_eq!(
            owned_bits(TxToken(9), 3),
            StmWord::Owned { owner: TxToken(9), entry: 3 }.encode()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn version_bits_helper_panics_like_encode() {
        // The hot-path helper and `encode` must agree in every build
        // profile: a wrapped version must never silently shift into the
        // owned bit (this assert fires in release builds too).
        let _ = version_bits(MAX_VERSION + 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owned_bits_helper_panics_like_encode() {
        let _ = owned_bits(TxToken(1), MAX_UPDATE_ENTRIES + 1);
    }

    #[test]
    fn accessors() {
        assert!(StmWord::decode(owned_bits(TxToken(1), 0)).is_owned());
        assert_eq!(StmWord::Version(5).version(), Some(5));
        assert_eq!(StmWord::Owned { owner: TxToken(1), entry: 0 }.version(), None);
    }

    #[test]
    fn snapshot_coverage_rejects_newer_versions_and_ownership() {
        assert!(StmWord::Version(5).covered_by(5));
        assert!(StmWord::Version(0).covered_by(0));
        assert!(!StmWord::Version(6).covered_by(5));
        assert!(!StmWord::Owned { owner: TxToken(1), entry: 0 }.covered_by(u64::MAX));
    }
}
