//! Runtime configuration: contention management, filtering, versioning.

use std::fmt;

/// Contention-management policy applied when `OpenForUpdate` finds the
/// object owned by another transaction.
///
/// The paper uses simple policies (the decomposed interface is the
/// contribution, not contention management); both classics are provided
/// for the ablation in experiment E7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmPolicy {
    /// Abort immediately and let the retry loop back off.
    AbortSelf,
    /// Spin re-reading the STM word up to the given number of times
    /// before giving up and aborting.
    Spin {
        /// Maximum number of re-reads before aborting.
        max_spins: u32,
    },
}

impl Default for CmPolicy {
    fn default() -> CmPolicy {
        CmPolicy::Spin { max_spins: 128 }
    }
}

/// Configuration for an [`crate::Stm`] instance.
///
/// # Examples
///
/// ```
/// use omt_stm::{StmConfig, CmPolicy};
///
/// let config = StmConfig {
///     runtime_filter: false,          // ablate the log filter (E5)
///     cm: CmPolicy::AbortSelf,
///     ..StmConfig::default()
/// };
/// assert!(!config.runtime_filter);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmConfig {
    /// Enable the per-transaction hash filter that suppresses duplicate
    /// read-log and undo-log entries (the paper's runtime filtering).
    pub runtime_filter: bool,
    /// log2 of the filter's slot count.
    pub filter_bits: u32,
    /// Number of bits of version number to use before wrapping.
    ///
    /// The real system uses the full header word; small widths exist to
    /// exercise the overflow path (global epoch bump) in tests and in
    /// experiment E9. Must be in `1..=62`.
    pub version_bits: u32,
    /// Contention-management policy.
    pub cm: CmPolicy,
    /// Re-validate the read set every `n` reads, catching "zombie"
    /// transactions early (the managed-runtime sandboxing knob).
    /// `None` validates only at commit.
    pub validate_every: Option<u32>,
    /// Retry budget for [`crate::Stm::try_atomically`].
    pub max_retries: u32,
}

impl Default for StmConfig {
    fn default() -> StmConfig {
        StmConfig {
            runtime_filter: true,
            filter_bits: 8,
            version_bits: 62,
            cm: CmPolicy::default(),
            validate_every: None,
            max_retries: 1_000_000,
        }
    }
}

impl StmConfig {
    /// Largest version number before wrap-around under this config.
    pub fn max_version(&self) -> u64 {
        (1u64 << self.version_bits) - 1
    }

    /// Validates invariants, panicking on nonsense values.
    ///
    /// # Panics
    ///
    /// Panics if `version_bits` is outside `1..=62` or `filter_bits`
    /// outside `1..=24`.
    pub fn validate(&self) {
        assert!(
            (1..=62).contains(&self.version_bits),
            "version_bits must be in 1..=62, got {}",
            self.version_bits
        );
        assert!(
            (1..=24).contains(&self.filter_bits),
            "filter_bits must be in 1..=24, got {}",
            self.filter_bits
        );
    }
}

impl fmt::Display for StmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "filter={} ({} slots), version_bits={}, cm={:?}, validate_every={:?}",
            self.runtime_filter,
            1u64 << self.filter_bits,
            self.version_bits,
            self.cm,
            self.validate_every
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = StmConfig::default();
        c.validate();
        assert!(c.runtime_filter);
        assert_eq!(c.max_version(), (1 << 62) - 1);
    }

    #[test]
    #[should_panic(expected = "version_bits")]
    fn zero_version_bits_rejected() {
        StmConfig { version_bits: 0, ..StmConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "version_bits")]
    fn oversized_version_bits_rejected() {
        StmConfig { version_bits: 63, ..StmConfig::default() }.validate();
    }

    #[test]
    fn tiny_version_space() {
        let c = StmConfig { version_bits: 4, ..StmConfig::default() };
        c.validate();
        assert_eq!(c.max_version(), 15);
    }
}
