//! Runtime configuration: contention management, filtering, versioning,
//! backoff, and serial-mode fallback.

use std::fmt;
use std::time::Duration;

pub use crate::cm::CmPolicy;

/// How the STM's two commit-ordering clocks are implemented (the TL2
/// GV4–GV7 design space; see DESIGN.md §4.11).
///
/// Every mode preserves the same semantics — versions remain monotone
/// per word, `validate()`'s quiescence fast path remains sound, and
/// snapshot reads keep their `version <= read_ver` acceptance rule —
/// but the modes trade CAS contention on the shared clock words for
/// laziness in how far the published global value may lag reality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// The baseline: both the commit clock and the acquisition clock
    /// are single global words bumped with `fetch_add`. Exact but a
    /// coherence hot spot at high thread counts.
    #[default]
    Global,
    /// GV6-style commit bumps: a publishing commit tries one
    /// `compare_exchange` to advance the commit clock and, on failure,
    /// *adopts the winner's value* instead of retrying — at most one
    /// CAS per commit, never a retry loop. Duplicate stamps are
    /// tolerated (same-object stamps still strictly increase). The
    /// acquisition clock stays global.
    PassOnFail,
    /// GV5-style deferred commit stamps: a committing writer claims a
    /// stamp strictly above the global clock from a per-thread-stripe
    /// reservation — no shared CAS on the commit clock at all — and the
    /// global word is only raised lazily by readers that meet a leading
    /// stamp (timestamp extension raises it first, then revalidates).
    /// The acquisition clock is striped as in [`ClockMode::Striped`].
    Deferred,
    /// Striped acquisition clock: `open_for_update`'s post-CAS bump
    /// lands on a cache-line-padded per-thread home stripe
    /// (`omt_util::pad::ShardArray`); validation sums the stripes.
    /// The commit clock stays a global `fetch_add`.
    Striped,
}

impl ClockMode {
    /// All modes, in documentation order (benchmark sweeps iterate
    /// this).
    pub const ALL: [ClockMode; 4] =
        [ClockMode::Global, ClockMode::PassOnFail, ClockMode::Deferred, ClockMode::Striped];

    /// The short lowercase name used in configs, reports, and tables.
    pub fn name(self) -> &'static str {
        match self {
            ClockMode::Global => "global",
            ClockMode::PassOnFail => "pass_on_fail",
            ClockMode::Deferred => "deferred",
            ClockMode::Striped => "striped",
        }
    }
}

impl fmt::Display for ClockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration for an [`crate::Stm`] instance.
///
/// # Examples
///
/// ```
/// use omt_stm::{StmConfig, CmPolicy};
///
/// let config = StmConfig {
///     runtime_filter: false,          // ablate the log filter (E5)
///     cm: CmPolicy::AbortSelf,
///     serial_after_aborts: Some(8),   // degrade to serial mode early
///     ..StmConfig::default()
/// };
/// assert!(!config.runtime_filter);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmConfig {
    /// Enable the per-transaction hash filter that suppresses duplicate
    /// read-log and undo-log entries (the paper's runtime filtering).
    pub runtime_filter: bool,
    /// log2 of the filter's slot count.
    pub filter_bits: u32,
    /// Number of bits of version number to use before wrapping.
    ///
    /// The real system uses the full header word; small widths exist to
    /// exercise the overflow path (global epoch bump) in tests and in
    /// experiment E9. Must be in `1..=62`.
    pub version_bits: u32,
    /// Contention-management policy.
    pub cm: CmPolicy,
    /// Re-validate the read set every `n` reads, catching "zombie"
    /// transactions early (the managed-runtime sandboxing knob).
    /// `None` validates only at commit.
    pub validate_every: Option<u32>,
    /// Retry budget for [`crate::Stm::try_atomically`].
    pub max_retries: u32,
    /// Default deadline for every atomic block, measured from the first
    /// attempt. The fallible entry points
    /// ([`crate::Stm::try_atomically`] /
    /// [`crate::Stm::try_atomically_within`]) give up with a typed
    /// [`RetryExhausted::DeadlineExceeded`](crate::RetryExhausted) when
    /// it passes; the infallible [`crate::Stm::atomically`] instead
    /// escalates into exclusive serial mode (which cannot lose a
    /// conflict race), so a deadline bounds its completion time without
    /// changing its signature. `None` (the default) disables the
    /// deadline; per-call deadlines override this knob.
    pub tx_deadline: Option<Duration>,
    /// Graceful degradation: after this many *consecutive* aborts of
    /// one atomic block, the retry loop escalates into exclusive serial
    /// mode — it waits for in-flight transactions to drain and runs
    /// alone, guaranteeing progress. `None` disables the fallback.
    pub serial_after_aborts: Option<u32>,
    /// log2 of the maximum randomized-backoff spin count; the backoff
    /// window doubles per attempt up to `2^backoff_cap_log2`. Must be
    /// in `1..=31`.
    pub backoff_cap_log2: u32,
    /// After this many attempts, backoff also yields the thread to the
    /// scheduler instead of pure spinning.
    pub backoff_yield_after: u32,
    /// Bound on how long a winning transaction waits for a doomed owner
    /// to notice its doom flag and release ownership (spin iterations)
    /// before giving up and aborting itself. Keeps priority policies
    /// deadlock-free even if the victim is descheduled.
    pub doom_wait_spins: u32,
    /// Record runtime statistics ([`crate::StmStats`]). Counters are
    /// sharded so recording is cheap even under contention; disabling
    /// them reduces every record to a single branch, for throughput
    /// benchmarks that want the runtime alone on the hot path.
    pub record_stats: bool,
    /// Use the global commit-sequence clock to short-circuit read-set
    /// validation (see DESIGN.md §4.7). Writers bump the clock when
    /// they publish updates; a validation that observes the clock
    /// unchanged since the transaction's last successful validation
    /// returns without rescanning the read log, making read-only
    /// commits O(1) under low write traffic. Disabling the knob
    /// restores the unconditional full-rescan slow path (the ablation
    /// baseline for experiment E5b).
    pub commit_sequence: bool,
    /// TL2-style snapshot reads (see DESIGN.md §4.10). Versions become
    /// commit-clock timestamps: every publishing commit releases its
    /// entries at the post-bump clock value, and each transaction keeps
    /// a read-version snapshot of the clock. `open_for_read` accepts a
    /// word whose version is `<= read_ver` in O(1) — no read-set walk —
    /// and on a too-new version performs *timestamp extension*
    /// (revalidate the read set against the current clock and advance
    /// `read_ver` in place) instead of aborting. Read-only transactions
    /// whose every read was snapshot-verified commit without any
    /// validation at all, making them abort-free in the common case.
    /// Requires `commit_sequence` and the full `version_bits = 62`
    /// space (timestamps never wrap).
    pub snapshot_reads: bool,
    /// Implementation of the commit/acquisition clock pair (see
    /// [`ClockMode`] and DESIGN.md §4.11). The default,
    /// [`ClockMode::Global`], is the pre-existing single-word behavior;
    /// the decentralized modes shed CAS contention on the two hot clock
    /// words at high thread counts. Non-`Global` modes require
    /// `commit_sequence` (they reorganize the clocks that knob
    /// creates).
    pub clock_mode: ClockMode,
    /// Multi-version objects (see DESIGN.md §4.13): keep up to this
    /// many retired `(value, version)` pairs per written field, so a
    /// snapshot reader that meets a version newer than its `read_ver`
    /// can be served the newest retired version its snapshot covers
    /// instead of paying a timestamp extension — or, in a read-write
    /// mix, an extension-failure abort. `0` (the default) disables the
    /// chains entirely and is bit-for-bit today's behavior; any depth
    /// `>= 1` requires `snapshot_reads` (a chain entry's validity
    /// interval is expressed in commit-clock timestamps).
    pub mv_depth: usize,
}

impl Default for StmConfig {
    fn default() -> StmConfig {
        StmConfig {
            runtime_filter: true,
            filter_bits: 8,
            version_bits: 62,
            cm: CmPolicy::default(),
            validate_every: None,
            max_retries: 1_000_000,
            tx_deadline: None,
            serial_after_aborts: Some(32),
            backoff_cap_log2: 12,
            backoff_yield_after: 8,
            doom_wait_spins: 4096,
            record_stats: true,
            commit_sequence: true,
            snapshot_reads: false,
            clock_mode: ClockMode::Global,
            mv_depth: 0,
        }
    }
}

impl StmConfig {
    /// Largest version number before wrap-around under this config.
    pub fn max_version(&self) -> u64 {
        (1u64 << self.version_bits) - 1
    }

    /// Validates invariants, panicking on nonsense values.
    ///
    /// # Panics
    ///
    /// Panics if `version_bits` is outside `1..=62`, `filter_bits`
    /// outside `1..=24`, `backoff_cap_log2` outside `1..=31`,
    /// `serial_after_aborts` is `Some(0)`, or `snapshot_reads` is set
    /// without `commit_sequence` and the full 62-bit version space.
    pub fn validate(&self) {
        assert!(
            (1..=62).contains(&self.version_bits),
            "version_bits must be in 1..=62, got {}",
            self.version_bits
        );
        assert!(
            (1..=24).contains(&self.filter_bits),
            "filter_bits must be in 1..=24, got {}",
            self.filter_bits
        );
        assert!(
            (1..=31).contains(&self.backoff_cap_log2),
            "backoff_cap_log2 must be in 1..=31, got {}",
            self.backoff_cap_log2
        );
        assert!(
            self.serial_after_aborts != Some(0),
            "serial_after_aborts must be None or >= 1; Some(0) would serialize everything"
        );
        if self.snapshot_reads {
            assert!(
                self.commit_sequence,
                "snapshot_reads requires commit_sequence: the read-version snapshot \
                 is taken from the commit-sequence clock"
            );
            assert!(
                self.version_bits == 62,
                "snapshot_reads requires version_bits = 62: versions are commit-clock \
                 timestamps and must never wrap, got {}",
                self.version_bits
            );
        }
        if self.clock_mode != ClockMode::Global {
            assert!(
                self.commit_sequence,
                "clock_mode={} requires commit_sequence: the decentralized modes \
                 reorganize the commit-sequence clocks, which that knob creates",
                self.clock_mode
            );
        }
        if self.mv_depth > 0 {
            assert!(
                self.snapshot_reads,
                "mv_depth={} requires snapshot_reads: a version chain entry's \
                 validity interval is expressed in commit-clock timestamps",
                self.mv_depth
            );
        }
    }
}

impl fmt::Display for StmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "filter={} ({} slots), version_bits={}, cm={}, validate_every={:?}, \
             serial_after_aborts={:?}, commit_sequence={}, snapshot_reads={}, \
             clock_mode={}, mv_depth={}, tx_deadline={:?}",
            self.runtime_filter,
            1u64 << self.filter_bits,
            self.version_bits,
            self.cm,
            self.validate_every,
            self.serial_after_aborts,
            self.commit_sequence,
            self.snapshot_reads,
            self.clock_mode,
            self.mv_depth,
            self.tx_deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = StmConfig::default();
        c.validate();
        assert!(c.runtime_filter);
        assert!(c.record_stats, "stats recording defaults on");
        assert!(c.commit_sequence, "commit-sequence clock defaults on (opt-out knob)");
        assert_eq!(c.max_version(), (1 << 62) - 1);
        assert_eq!(c.serial_after_aborts, Some(32));
        assert_eq!(c.tx_deadline, None, "deadlines are opt-in");
    }

    #[test]
    #[should_panic(expected = "version_bits")]
    fn zero_version_bits_rejected() {
        StmConfig { version_bits: 0, ..StmConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "version_bits")]
    fn oversized_version_bits_rejected() {
        StmConfig { version_bits: 63, ..StmConfig::default() }.validate();
    }

    #[test]
    fn tiny_version_space() {
        let c = StmConfig { version_bits: 4, ..StmConfig::default() };
        c.validate();
        assert_eq!(c.max_version(), 15);
    }

    #[test]
    #[should_panic(expected = "backoff_cap_log2")]
    fn oversized_backoff_cap_rejected() {
        StmConfig { backoff_cap_log2: 32, ..StmConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "serial_after_aborts")]
    fn zero_serial_threshold_rejected() {
        StmConfig { serial_after_aborts: Some(0), ..StmConfig::default() }.validate();
    }

    #[test]
    fn display_mentions_policy_and_fallback() {
        let c = StmConfig { cm: CmPolicy::OldestWins, ..StmConfig::default() };
        let s = c.to_string();
        assert!(s.contains("oldest-wins"));
        assert!(s.contains("serial_after_aborts"));
        assert!(s.contains("commit_sequence=true"));
        assert!(s.contains("snapshot_reads=false"));
        assert!(s.contains("clock_mode=global"));
    }

    #[test]
    fn every_clock_mode_validates_with_the_clock_on() {
        for mode in ClockMode::ALL {
            let c = StmConfig { clock_mode: mode, ..StmConfig::default() };
            c.validate();
            let snap = StmConfig { clock_mode: mode, snapshot_reads: true, ..StmConfig::default() };
            snap.validate();
        }
        assert_eq!(StmConfig::default().clock_mode, ClockMode::Global, "baseline is the default");
    }

    #[test]
    fn clock_mode_names_are_stable() {
        let names: Vec<&str> = ClockMode::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["global", "pass_on_fail", "deferred", "striped"]);
        assert_eq!(ClockMode::Deferred.to_string(), "deferred");
    }

    #[test]
    #[should_panic(expected = "requires commit_sequence")]
    fn decentralized_clock_without_the_sequence_rejected() {
        StmConfig {
            clock_mode: ClockMode::Striped,
            commit_sequence: false,
            ..StmConfig::default()
        }
        .validate();
    }

    #[test]
    fn snapshot_reads_composes_with_the_clock() {
        let c = StmConfig { snapshot_reads: true, ..StmConfig::default() };
        c.validate();
        assert!(c.commit_sequence);
        assert!(!StmConfig::default().snapshot_reads, "snapshot reads are opt-in");
    }

    #[test]
    #[should_panic(expected = "requires commit_sequence")]
    fn snapshot_reads_without_the_clock_rejected() {
        StmConfig { snapshot_reads: true, commit_sequence: false, ..StmConfig::default() }
            .validate();
    }

    #[test]
    #[should_panic(expected = "requires version_bits")]
    fn snapshot_reads_with_tiny_versions_rejected() {
        StmConfig { snapshot_reads: true, version_bits: 8, ..StmConfig::default() }.validate();
    }

    #[test]
    fn mv_depth_defaults_off_and_composes_with_snapshots() {
        assert_eq!(StmConfig::default().mv_depth, 0, "version chains are opt-in");
        let c = StmConfig { snapshot_reads: true, mv_depth: 4, ..StmConfig::default() };
        c.validate();
        assert!(c.to_string().contains("mv_depth=4"));
    }

    #[test]
    #[should_panic(expected = "requires snapshot_reads")]
    fn mv_depth_without_snapshot_reads_rejected() {
        StmConfig { mv_depth: 1, ..StmConfig::default() }.validate();
    }
}
