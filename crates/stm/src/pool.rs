//! Thread-local pool of reusable transaction contexts.
//!
//! Every transaction needs a `Box<TxLogs>` (three entry vectors plus an
//! allocation log) and, with runtime filtering on, a [`LogFilter`]
//! table. Allocating these per transaction puts the allocator on the
//! hot path of every attempt — including every *retry* of a contended
//! atomic block. The pool instead recycles contexts per thread: a
//! finished transaction's logs keep their vector capacities and its
//! filter is cleared in O(1) (generation bump, see [`crate::filter`]),
//! so a steady-state thread begins transactions without touching the
//! allocator at all.
//!
//! The pool is keyed by thread (a `thread_local!` stack), so acquiring
//! and releasing takes no lock and can never contend. Contexts are not
//! tied to one [`crate::Stm`]: a recycled filter is reconciled with the
//! acquiring STM's configuration (present/absent, table size) on the
//! way out.

use std::cell::RefCell;

use crate::filter::LogFilter;
use crate::logs::TxLogs;

/// The reusable allocation-heavy parts of a transaction.
#[derive(Debug)]
pub(crate) struct TxCtx {
    /// Read/update/undo/alloc logs; empty but warm (capacity retained).
    pub(crate) logs: Box<TxLogs>,
    /// Duplicate-suppression filter, if the releasing STM used one.
    pub(crate) filter: Option<LogFilter>,
}

/// Contexts retained per thread. Nested manual transactions are rare,
/// so a small stack bounds memory while covering real usage.
const MAX_POOLED: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<TxCtx>> = const { RefCell::new(Vec::new()) };
}

/// Takes a context for a new transaction, recycling a pooled one when
/// available. The returned logs are empty; the filter matches the
/// requested configuration and remembers nothing.
pub(crate) fn acquire(runtime_filter: bool, filter_bits: u32) -> TxCtx {
    let mut ctx = POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| TxCtx { logs: Box::new(TxLogs::new()), filter: None });
    debug_assert!(
        ctx.logs.lens() == (0, 0, 0) && ctx.logs.allocs.is_empty(),
        "pooled logs must be empty"
    );
    // Reconcile the recycled filter with this STM's configuration.
    if runtime_filter {
        match &mut ctx.filter {
            Some(f) if f.bits() == filter_bits => f.clear(),
            slot => *slot = Some(LogFilter::new(filter_bits)),
        }
    } else {
        ctx.filter = None;
    }
    ctx
}

/// Returns a finished transaction's context to the calling thread's
/// pool (or drops it if the pool is full).
pub(crate) fn release(mut ctx: TxCtx) {
    ctx.logs.clear();
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(ctx);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterKind;
    use crate::logs::ReadEntry;

    /// Empties this thread's pool so a test observes only its own
    /// releases (unit tests share threads with each other).
    fn drain() {
        POOL.with(|p| p.borrow_mut().clear());
    }

    #[test]
    fn acquire_reuses_released_capacity() {
        drain();
        let heap = omt_heap::Heap::new();
        let class = heap.define_class(omt_heap::ClassDesc::with_var_fields("C", &["v"]));
        let obj = heap.alloc(class).unwrap();

        let mut ctx = acquire(false, 8);
        for _ in 0..100 {
            ctx.logs.read.push(ReadEntry { obj, observed: 0 });
        }
        let warmed = ctx.logs.read.capacity();
        release(ctx);

        let ctx = acquire(false, 8);
        assert!(ctx.logs.read.is_empty(), "recycled logs start empty");
        assert_eq!(ctx.logs.read.capacity(), warmed, "capacity survived the round trip");
    }

    #[test]
    fn recycled_filter_is_cleared_and_resized() {
        drain();
        let mut ctx = acquire(true, 8);
        let f = ctx.filter.as_mut().unwrap();
        assert!(!f.check_and_set(FilterKind::Read, 42, 0));
        release(ctx);

        // Same size: reused, but remembers nothing.
        let mut ctx = acquire(true, 8);
        let f = ctx.filter.as_mut().unwrap();
        assert_eq!(f.bits(), 8);
        assert!(!f.check_and_set(FilterKind::Read, 42, 0), "stale filter claim leaked");
        release(ctx);

        // Different size: rebuilt.
        let ctx = acquire(true, 4);
        assert_eq!(ctx.filter.as_ref().unwrap().bits(), 4);
        release(ctx);

        // Filtering off: dropped.
        let ctx = acquire(false, 8);
        assert!(ctx.filter.is_none());
        release(ctx);
    }

    #[test]
    fn pool_is_bounded() {
        drain();
        let contexts: Vec<TxCtx> = (0..2 * MAX_POOLED).map(|_| acquire(false, 8)).collect();
        for ctx in contexts {
            release(ctx);
        }
        assert_eq!(POOL.with(|p| p.borrow().len()), MAX_POOLED);
    }
}
