//! Transactional error types.

use std::fmt;

/// Why a transaction could not proceed.
///
/// All variants except [`TxError::HeapFull`] and
/// [`TxError::DeadlineExceeded`] are *retryable*: aborting the
/// transaction and re-executing it may succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// A conflict with another transaction (retryable).
    Conflict(ConflictKind),
    /// The heap's slot table is exhausted (not retryable).
    HeapFull,
    /// The atomic block's deadline passed (see
    /// [`StmConfig::tx_deadline`](crate::StmConfig) and
    /// [`crate::Stm::try_atomically_within`]). Not retryable: the retry
    /// loop gives up rather than re-running the closure. A closure may
    /// also return this explicitly to bail out of a long transaction it
    /// knows cannot finish in time.
    DeadlineExceeded,
}

/// The kind of conflict that doomed a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// `OpenForUpdate` found the object owned by another transaction and
    /// the contention manager chose to abort.
    Busy,
    /// Read-set validation failed: an object read by this transaction
    /// was committed by another transaction in the meantime.
    Invalid,
    /// The global version-renumbering epoch advanced (version-number
    /// overflow handling); all in-flight transactions must restart.
    Epoch,
    /// The user requested a retry (explicit abort).
    Explicit,
    /// A contention manager running on behalf of another transaction
    /// doomed this one (priority-based policies abort the *other*
    /// transaction; the victim observes this at its next open or
    /// validate).
    Doomed,
}

impl TxError {
    /// Shorthand for [`TxError::Conflict`] with [`ConflictKind::Busy`].
    pub const BUSY: TxError = TxError::Conflict(ConflictKind::Busy);
    /// Shorthand for [`TxError::Conflict`] with [`ConflictKind::Invalid`].
    pub const INVALID: TxError = TxError::Conflict(ConflictKind::Invalid);
    /// Shorthand for [`TxError::Conflict`] with [`ConflictKind::Epoch`].
    pub const EPOCH: TxError = TxError::Conflict(ConflictKind::Epoch);
    /// Shorthand for [`TxError::Conflict`] with [`ConflictKind::Explicit`].
    pub const EXPLICIT: TxError = TxError::Conflict(ConflictKind::Explicit);
    /// Shorthand for [`TxError::Conflict`] with [`ConflictKind::Doomed`].
    pub const DOOMED: TxError = TxError::Conflict(ConflictKind::Doomed);

    /// True if re-running the transaction may succeed.
    pub fn is_retryable(self) -> bool {
        matches!(self, TxError::Conflict(_))
    }
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Conflict(ConflictKind::Busy) => {
                write!(f, "object owned by a concurrent transaction")
            }
            TxError::Conflict(ConflictKind::Invalid) => {
                write!(f, "read-set validation failed")
            }
            TxError::Conflict(ConflictKind::Epoch) => {
                write!(f, "version renumbering epoch advanced")
            }
            TxError::Conflict(ConflictKind::Explicit) => {
                write!(f, "transaction requested retry")
            }
            TxError::Conflict(ConflictKind::Doomed) => {
                write!(f, "doomed by a higher-priority transaction's contention manager")
            }
            TxError::HeapFull => write!(f, "heap slot table exhausted"),
            TxError::DeadlineExceeded => write!(f, "transaction deadline exceeded"),
        }
    }
}

impl std::error::Error for TxError {}

impl From<omt_heap::HeapFullError> for TxError {
    fn from(_: omt_heap::HeapFullError) -> TxError {
        TxError::HeapFull
    }
}

/// Result type of transactional operations.
pub type TxResult<T> = Result<T, TxError>;

/// Why [`crate::Stm::try_atomically`] (or
/// [`crate::Stm::try_atomically_within`]) gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryExhausted {
    /// The retry budget was consumed by conflicts.
    Conflicts {
        /// Number of attempts made.
        attempts: u32,
        /// The conflict that doomed the final attempt.
        last: ConflictKind,
    },
    /// The deadline passed before an attempt committed.
    DeadlineExceeded {
        /// Number of attempts made before the deadline struck.
        attempts: u32,
    },
    /// The heap filled up; retrying cannot help.
    HeapFull,
}

impl RetryExhausted {
    /// Number of attempts the loop made before giving up (0 when the
    /// deadline had already passed at entry, or on heap exhaustion).
    pub fn attempts(&self) -> u32 {
        match *self {
            RetryExhausted::Conflicts { attempts, .. } => attempts,
            RetryExhausted::DeadlineExceeded { attempts } => attempts,
            RetryExhausted::HeapFull => 0,
        }
    }
}

impl fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryExhausted::Conflicts { attempts, last } => {
                write!(f, "transaction failed after {attempts} attempts (last: {last:?})")
            }
            RetryExhausted::DeadlineExceeded { attempts } => {
                write!(f, "transaction deadline exceeded after {attempts} attempts")
            }
            RetryExhausted::HeapFull => write!(f, "heap slot table exhausted"),
        }
    }
}

impl std::error::Error for RetryExhausted {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every conflict kind, for exhaustive per-variant checks.
    const ALL_KINDS: [ConflictKind; 5] = [
        ConflictKind::Busy,
        ConflictKind::Invalid,
        ConflictKind::Epoch,
        ConflictKind::Explicit,
        ConflictKind::Doomed,
    ];

    #[test]
    fn retryability() {
        assert!(TxError::BUSY.is_retryable());
        assert!(TxError::INVALID.is_retryable());
        assert!(TxError::EPOCH.is_retryable());
        assert!(TxError::EXPLICIT.is_retryable());
        assert!(TxError::DOOMED.is_retryable());
        assert!(!TxError::HeapFull.is_retryable());
        assert!(!TxError::DeadlineExceeded.is_retryable());
    }

    #[test]
    fn every_conflict_kind_is_retryable() {
        for kind in ALL_KINDS {
            assert!(
                TxError::Conflict(kind).is_retryable(),
                "{kind:?} must be retryable — only HeapFull is terminal"
            );
        }
    }

    #[test]
    fn display_is_never_empty() {
        for kind in ALL_KINDS {
            assert!(!TxError::Conflict(kind).to_string().is_empty(), "{kind:?} display empty");
        }
        assert!(!TxError::HeapFull.to_string().is_empty());
        assert!(TxError::DeadlineExceeded.to_string().contains("deadline"));
        let r = RetryExhausted::Conflicts { attempts: 3, last: ConflictKind::Busy };
        assert!(r.to_string().contains('3'));
        let d = RetryExhausted::DeadlineExceeded { attempts: 4 };
        assert!(d.to_string().contains("deadline") && d.to_string().contains('4'));
        assert_eq!(d.attempts(), 4);
        assert_eq!(RetryExhausted::HeapFull.attempts(), 0);
        for kind in ALL_KINDS {
            let r = RetryExhausted::Conflicts { attempts: 1, last: kind };
            assert!(!r.to_string().is_empty(), "{kind:?} retry-exhausted display empty");
        }
    }

    #[test]
    fn doomed_display_mentions_contention() {
        assert!(TxError::DOOMED.to_string().contains("doomed"));
    }

    #[test]
    fn heap_full_converts() {
        let e: TxError = omt_heap::HeapFullError.into();
        assert_eq!(e, TxError::HeapFull);
    }
}
