//! Registry of in-flight transactions, for GC integration, contention
//! management, and orphan recovery.
//!
//! The paper's collector understands transaction logs: undo-log old
//! values are roots (abort may write them back into the heap), and log
//! entries for dead objects are trimmed. To give the collector access to
//! logs that live on mutator stacks, every active transaction registers
//! a pointer to its [`TxLogs`] here, and unregisters on completion.
//!
//! Two further indexes serve the robustness layer:
//!
//! - a token → [`TxCtl`] map lets a transaction that loses an
//!   `OpenForUpdate` race inspect the *owner's* priority and doom or
//!   wait on it (priority contention management);
//! - an **orphan pool** holds the undo logs of transactions whose
//!   thread "died" (a `Kill` failpoint) while owning objects. Any
//!   transaction that later stumbles on an orphaned owner calls
//!   [`TxRegistry::recover`], which replays the orphan's undo log and
//!   releases its ownership — exactly what the victim's own rollback
//!   would have done.
//!
//! # Lock striping
//!
//! Every transaction registers at begin and unregisters at
//! commit/abort, so these maps are on the hot path of *all* threads.
//! The registry is therefore striped: [`REGISTRY_STRIPES`] shards, each
//! with its own `active` / `ctls` / `orphans` maps and mutexes. A row
//! lives in the shard selected by its key (serial for `active`, token
//! for `ctls` and `orphans`); serials and tokens are allocated
//! sequentially, so concurrent transactions land on different shards
//! and never contend on registration. The per-map protocols are
//! unchanged — each operation still locks exactly the one map it needs,
//! and `ctls`/`orphans` rows for one token share a shard, preserving
//! the recovery ordering (orphan logs out **before** ctl removal).
//!
//! # Stop-the-world contract
//!
//! The registry dereferences the raw [`TxLogs`] pointers only from
//! [`GcParticipant`] callbacks, which [`omt_heap::Heap::collect`]
//! documents may run only while all mutators are paused. Outside a
//! collection the pointers are never touched. (Orphan logs are owned
//! `Box`es, not raw pointers, and are safe to touch any time under the
//! shard mutex.)

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use omt_util::sync::Mutex;

use omt_heap::{GcParticipant, Heap, ObjRef};

use crate::cm::TxCtl;
use crate::logs::TxLogs;
use crate::word::{version_bits, TxToken};

/// Number of lock stripes. A power of two; serials/tokens are assigned
/// sequentially so consecutive transactions hash to distinct stripes.
const REGISTRY_STRIPES: usize = 16;

/// A registered pointer to a transaction's logs.
///
/// SAFETY invariant: the pointee is a `Box<TxLogs>` owned by a live
/// `Transaction` that unregisters before the box is dropped; it is only
/// dereferenced under the stop-the-world contract above.
struct LogsPtr(*mut TxLogs);

// SAFETY: see the struct invariant; access is serialized by the GC's
// stop-the-world contract plus the shard mutex.
unsafe impl Send for LogsPtr {}

/// One lock stripe: the slice of each index whose keys hash here.
#[derive(Default)]
struct RegistryShard {
    active: Mutex<HashMap<u64, LogsPtr>>,
    /// Control blocks of in-flight transactions, keyed by token. An
    /// entry outlives its `active` row for killed transactions: it
    /// stays (with `killed` set) until the orphan is recovered, so
    /// contenders can tell "owner died" from "owner released".
    ctls: Mutex<HashMap<TxToken, Arc<TxCtl>>>,
    /// Undo logs of killed transactions, awaiting recovery.
    orphans: Mutex<HashMap<TxToken, Box<TxLogs>>>,
}

/// Registry of all active transactions of one [`crate::Stm`].
pub struct TxRegistry {
    shards: Box<[RegistryShard]>,
    stats: Arc<crate::stats::StmStats>,
}

impl Default for TxRegistry {
    fn default() -> TxRegistry {
        TxRegistry::new(Default::default())
    }
}

impl TxRegistry {
    pub(crate) fn new(stats: Arc<crate::stats::StmStats>) -> TxRegistry {
        TxRegistry {
            shards: (0..REGISTRY_STRIPES).map(|_| RegistryShard::default()).collect(),
            stats,
        }
    }

    #[inline]
    fn shard_for_serial(&self, serial: u64) -> &RegistryShard {
        &self.shards[serial as usize & (REGISTRY_STRIPES - 1)]
    }

    #[inline]
    fn shard_for_token(&self, token: TxToken) -> &RegistryShard {
        &self.shards[token.0 as usize & (REGISTRY_STRIPES - 1)]
    }

    pub(crate) fn register(&self, serial: u64, ctl: Arc<TxCtl>, logs: *mut TxLogs) {
        self.shard_for_serial(serial).active.lock().insert(serial, LogsPtr(logs));
        self.shard_for_token(ctl.token).ctls.lock().insert(ctl.token, ctl);
    }

    pub(crate) fn unregister(&self, serial: u64, token: TxToken) {
        self.shard_for_serial(serial).active.lock().remove(&serial);
        self.shard_for_token(token).ctls.lock().remove(&token);
    }

    /// Control block of the in-flight (or killed-but-unrecovered)
    /// transaction holding `token`, if any.
    pub(crate) fn ctl_of(&self, token: TxToken) -> Option<Arc<TxCtl>> {
        self.shard_for_token(token).ctls.lock().get(&token).cloned()
    }

    /// Parks a killed transaction's logs for later recovery. The
    /// serial row is dropped (the thread is gone; there is no stack
    /// slot to trace) but the control block stays until recovery so
    /// contenders can detect the death.
    pub(crate) fn park_orphan(&self, serial: u64, token: TxToken, logs: Box<TxLogs>) {
        self.shard_for_serial(serial).active.lock().remove(&serial);
        self.shard_for_token(token).orphans.lock().insert(token, logs);
    }

    /// Recovers the orphaned transaction holding `token`: replays its
    /// undo log (restoring every field it had updated in place) and
    /// releases its ownership records — exactly the rollback its own
    /// thread would have performed, including burning a version on
    /// dirtied entries (a reader may have loaded the dead transaction's
    /// uncommitted stores; see `Transaction::rollback`). `max_version`
    /// is the configured wrap point and `bump_epoch` is invoked once,
    /// before any wrapped header store, if a burned version wraps.
    ///
    /// `fresh_burn` supplies the burn policy: it is called at most once
    /// — and only if some dirtied entry needs burning — and returns
    /// `Some(stamp)` to release every dirtied entry at that one fresh
    /// commit-clock timestamp (snapshot-reads mode, where burned
    /// versions must never exceed the clock) or `None` for the legacy
    /// per-entry `original + 1` increment.
    ///
    /// Idempotent and race-free: the first caller takes the logs out of
    /// the pool; concurrent callers find nothing and return `false`.
    pub(crate) fn recover(
        &self,
        heap: &Heap,
        token: TxToken,
        max_version: u64,
        fresh_burn: &mut dyn FnMut() -> Option<u64>,
        bump_epoch: &mut dyn FnMut(),
    ) -> bool {
        let shard = self.shard_for_token(token);
        let Some(logs) = shard.orphans.lock().remove(&token) else {
            return false;
        };
        omt_util::sched::yield_point(crate::schedpt::RECOVER_PRE_UNDO);
        for entry in logs.undo.iter().rev() {
            heap.field_atomic(entry.obj, entry.field as usize)
                .store(entry.old_bits, Ordering::Relaxed);
        }
        let any_burn = logs.update.iter().any(|e| !e.dead && e.dirtied);
        let stamp = if any_burn { fresh_burn() } else { None };
        let burned = |original: u64| stamp.unwrap_or(original + 1);
        let will_wrap = logs
            .update
            .iter()
            .any(|e| !e.dead && e.dirtied && burned(e.original_version) > max_version);
        if will_wrap {
            bump_epoch();
        }
        for entry in &logs.update {
            if entry.dead {
                continue;
            }
            let released = if entry.dirtied {
                let next = burned(entry.original_version);
                if next > max_version {
                    0
                } else {
                    next
                }
            } else {
                entry.original_version
            };
            omt_util::sched::yield_point_keyed(
                crate::schedpt::RECOVER_PRE_RELEASE,
                entry.obj.to_raw() as usize,
            );
            heap.header_atomic(entry.obj).store(version_bits(released), Ordering::Release);
        }
        // Only now does the token disappear: contenders that raced with
        // us kept seeing `killed` rather than a stale "still running".
        shard.ctls.lock().remove(&token);
        self.stats.add(|c| &c.orphans_recovered, 1);
        true
    }

    /// The minimum `read_ver` across all registered control blocks
    /// (including killed-but-unrecovered ones, whose last snapshot
    /// conservatively pins reclamation), or `None` when no transaction
    /// is in flight. This is the floor below which version-chain
    /// entries are unreachable: every active transaction sits at or
    /// above it, and future transactions begin at or past the current
    /// clock. Control blocks that never published a `read_ver` report
    /// `u64::MAX` and do not constrain the minimum.
    pub(crate) fn min_active_read_ver(&self) -> Option<u64> {
        let mut min = None;
        for shard in self.shards.iter() {
            for ctl in shard.ctls.lock().values() {
                let rv = ctl.read_ver.load(Ordering::Acquire);
                if rv != u64::MAX && min.is_none_or(|m| rv < m) {
                    min = Some(rv);
                }
            }
        }
        min
    }

    /// Number of registered (active) transactions.
    pub fn active_count(&self) -> usize {
        self.shards.iter().map(|s| s.active.lock().len()).sum()
    }

    /// Number of killed transactions awaiting recovery.
    pub fn orphan_count(&self) -> usize {
        self.shards.iter().map(|s| s.orphans.lock().len()).sum()
    }

    /// Total byte footprint of all registered logs (including orphans).
    ///
    /// Only meaningful while mutators are paused (same contract as GC).
    pub fn total_log_bytes(&self) -> usize {
        let mut total = 0;
        for shard in self.shards.iter() {
            // SAFETY: stop-the-world contract (see module docs).
            total +=
                shard.active.lock().values().map(|p| unsafe { &*p.0 }.byte_size()).sum::<usize>();
            total += shard.orphans.lock().values().map(|l| l.byte_size()).sum::<usize>();
        }
        total
    }

    /// Total `(read, update, undo)` entry counts across registered logs
    /// (including orphans).
    ///
    /// Only meaningful while mutators are paused (same contract as GC).
    pub fn total_log_entries(&self) -> (usize, usize, usize) {
        let mut totals = (0, 0, 0);
        for shard in self.shards.iter() {
            for p in shard.active.lock().values() {
                // SAFETY: stop-the-world contract (see module docs).
                let (r, u, n) = unsafe { &*p.0 }.lens();
                totals.0 += r;
                totals.1 += u;
                totals.2 += n;
            }
            for logs in shard.orphans.lock().values() {
                let (r, u, n) = logs.lens();
                totals.0 += r;
                totals.1 += u;
                totals.2 += n;
            }
        }
        totals
    }
}

impl GcParticipant for TxRegistry {
    // Trimming yields at each shard *boundary* — never while a shard
    // lock is held or a raw `LogsPtr` is live. In production the yields
    // are no-ops and the stop-the-world contract holds verbatim. Under
    // the `omt-sched` explorer (which serializes all threads, so there
    // are no data races) the boundary placement is what keeps the raw
    // derefs sound while mutator steps interleave with the trim:
    // registration changes take the same shard lock the traversal
    // holds, so a pointer observed inside the lock cannot dangle;
    // between shards no pointer is held; and `Heap::collect` frees
    // storage only after every participant trimmed, so a mutator step
    // validating a not-yet-trimmed dead entry still finds an intact
    // header. Tracing takes *no* yields: without write barriers, a
    // mutator store interleaved mid-mark could hide a live object from
    // the trace (the undo entry recording the overwritten reference may
    // sit in an already-traced shard).

    fn trace_roots(&self, mark: &mut dyn FnMut(ObjRef)) {
        for shard in self.shards.iter() {
            for p in shard.active.lock().values() {
                // SAFETY: stop-the-world contract (see module docs).
                unsafe { &*p.0 }.trace_rollback_roots(mark);
            }
            // Orphan undo logs are rollback roots too: recovery will
            // write their old values back into the heap.
            for logs in shard.orphans.lock().values() {
                logs.trace_rollback_roots(mark);
            }
        }
    }

    fn after_sweep(&self, is_live: &dyn Fn(ObjRef) -> bool) {
        let mut trimmed = 0u64;
        for shard in self.shards.iter() {
            omt_util::sched::yield_point(crate::schedpt::GC_PRE_TRIM_SHARD);
            for p in shard.active.lock().values() {
                // SAFETY: stop-the-world contract (see module docs); the
                // mutable access is exclusive because mutators are paused.
                trimmed += unsafe { &mut *p.0 }.trim(is_live) as u64;
            }
            for logs in shard.orphans.lock().values_mut() {
                trimmed += logs.trim(is_live) as u64;
            }
        }
        self.stats.add(|c| &c.gc_trimmed_entries, trimmed);
    }
}

impl std::fmt::Debug for TxRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxRegistry")
            .field("stripes", &self.shards.len())
            .field("active", &self.active_count())
            .field("orphans", &self.orphan_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(token: u32, serial: u64) -> Arc<TxCtl> {
        Arc::new(TxCtl::new(TxToken(token), serial, 0))
    }

    #[test]
    fn register_and_unregister() {
        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        registry.register(1, ctl(9, 1), &mut *logs);
        assert_eq!(registry.active_count(), 1);
        assert!(registry.ctl_of(TxToken(9)).is_some());
        assert!(registry.ctl_of(TxToken(8)).is_none());
        registry.unregister(1, TxToken(9));
        assert_eq!(registry.active_count(), 0);
        assert!(registry.ctl_of(TxToken(9)).is_none());
    }

    #[test]
    fn rows_spread_across_stripes_but_aggregate_exactly() {
        // Register transactions whose serials/tokens cover every stripe
        // (and wrap around); global counts must see all of them.
        let registry = TxRegistry::new(Default::default());
        let mut logs: Vec<Box<TxLogs>> =
            (0..3 * REGISTRY_STRIPES).map(|_| Box::new(TxLogs::new())).collect();
        for (i, l) in logs.iter_mut().enumerate() {
            registry.register(i as u64, ctl(i as u32, i as u64), &mut **l);
        }
        assert_eq!(registry.active_count(), 3 * REGISTRY_STRIPES);
        for i in 0..3 * REGISTRY_STRIPES {
            assert!(registry.ctl_of(TxToken(i as u32)).is_some(), "token {i} lost");
        }
        for i in 0..3 * REGISTRY_STRIPES {
            registry.unregister(i as u64, TxToken(i as u32));
        }
        assert_eq!(registry.active_count(), 0);
    }

    #[test]
    fn serial_and_token_may_hash_to_different_stripes() {
        // serial 1 → stripe 1, token 18 → stripe 2: registration rows
        // split across stripes and both must still resolve and clean up.
        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        registry.register(1, ctl(18, 1), &mut *logs);
        assert_eq!(registry.active_count(), 1);
        assert!(registry.ctl_of(TxToken(18)).is_some());
        registry.park_orphan(1, TxToken(18), logs);
        assert_eq!(registry.active_count(), 0);
        assert_eq!(registry.orphan_count(), 1);
        assert!(registry.ctl_of(TxToken(18)).is_some(), "ctl survives park in its own stripe");
        assert!(registry.recover(
            &omt_heap::Heap::new(),
            TxToken(18),
            u64::MAX,
            &mut || None,
            &mut || ()
        ));
        assert_eq!(registry.orphan_count(), 0);
        assert!(registry.ctl_of(TxToken(18)).is_none());
    }

    #[test]
    fn log_footprint_visible_through_registry() {
        let heap = omt_heap::Heap::new();
        let class = heap.define_class(omt_heap::ClassDesc::with_var_fields("C", &["v"]));
        let obj = heap.alloc(class).unwrap();

        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        logs.read.push(crate::logs::ReadEntry { obj, observed: 0 });
        registry.register(7, ctl(1, 7), &mut *logs);
        let (r, u, n) = registry.total_log_entries();
        assert_eq!((r, u, n), (1, 0, 0));
        assert!(registry.total_log_bytes() > 0);
        registry.unregister(7, TxToken(1));
    }

    #[test]
    fn orphan_recovery_restores_and_releases() {
        use crate::logs::{UndoEntry, UpdateEntry};
        use omt_heap::Word;

        let heap = omt_heap::Heap::new();
        let class = heap.define_class(omt_heap::ClassDesc::with_var_fields("C", &["v"]));
        let obj = heap.alloc(class).unwrap();
        heap.store(obj, 0, Word::from_scalar(41));
        let old_bits = heap.field_atomic(obj, 0).load(Ordering::Relaxed);

        // Simulate a killed transaction: field overwritten in place,
        // header left owned.
        heap.store(obj, 0, Word::from_scalar(99));
        let token = TxToken(5);
        heap.header_atomic(obj).store(crate::word::owned_bits(token, 0), Ordering::Release);

        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        logs.undo.push(UndoEntry { obj, field: 0, old_bits });
        logs.update.push(UpdateEntry { obj, original_version: 3, dead: false, dirtied: true });
        registry.register(1, ctl(5, 1), &mut *logs);
        registry.park_orphan(1, token, logs);
        assert_eq!(registry.orphan_count(), 1);
        assert!(registry.ctl_of(token).is_some(), "ctl survives until recovery");

        let mut epoch_bumps = 0;
        assert!(registry.recover(&heap, token, u64::MAX, &mut || None, &mut || epoch_bumps += 1));
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(41), "undo restored the field");
        assert_eq!(
            heap.header_atomic(obj).load(Ordering::Acquire),
            version_bits(4),
            "ownership released one past the original version (the entry was dirtied, \
             so a reader may have seen the dead store; abort burns a version)"
        );
        assert_eq!(epoch_bumps, 0, "no wrap, no epoch bump");
        assert_eq!(registry.orphan_count(), 0);
        assert!(registry.ctl_of(token).is_none());
        assert!(
            !registry.recover(&heap, token, u64::MAX, &mut || None, &mut || ()),
            "second recovery is a no-op"
        );
    }

    #[test]
    fn recovery_of_clean_entries_keeps_the_original_version() {
        use crate::logs::UpdateEntry;

        let heap = omt_heap::Heap::new();
        let class = heap.define_class(omt_heap::ClassDesc::with_var_fields("C", &["v"]));
        let obj = heap.alloc(class).unwrap();
        let token = TxToken(6);
        heap.header_atomic(obj).store(crate::word::owned_bits(token, 0), Ordering::Release);

        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        // Acquired but never cleared for in-place stores: no reader can
        // have observed anything but the pre-acquisition state.
        logs.update.push(UpdateEntry { obj, original_version: 3, dead: false, dirtied: false });
        registry.register(1, ctl(6, 1), &mut *logs);
        registry.park_orphan(1, token, logs);
        assert!(registry.recover(&heap, token, u64::MAX, &mut || None, &mut || ()));
        assert_eq!(heap.header_atomic(obj).load(Ordering::Acquire), version_bits(3));
    }

    #[test]
    fn recovery_wrap_bumps_epoch_before_release() {
        use crate::logs::UpdateEntry;

        let heap = omt_heap::Heap::new();
        let class = heap.define_class(omt_heap::ClassDesc::with_var_fields("C", &["v"]));
        let obj = heap.alloc(class).unwrap();
        let token = TxToken(7);
        heap.header_atomic(obj).store(crate::word::owned_bits(token, 0), Ordering::Release);

        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        // Dirtied at the maximum version: burning one must wrap to 0 and
        // announce a new epoch.
        logs.update.push(UpdateEntry { obj, original_version: 15, dead: false, dirtied: true });
        registry.register(1, ctl(7, 1), &mut *logs);
        registry.park_orphan(1, token, logs);
        let mut epoch_bumps = 0;
        assert!(registry.recover(&heap, token, 15, &mut || None, &mut || epoch_bumps += 1));
        assert_eq!(heap.header_atomic(obj).load(Ordering::Acquire), version_bits(0));
        assert_eq!(epoch_bumps, 1);
    }

    #[test]
    fn orphans_in_distinct_stripes_recover_independently() {
        let heap = omt_heap::Heap::new();
        let registry = TxRegistry::new(Default::default());
        // Two orphans whose tokens land in different stripes.
        for (serial, token) in [(1u64, TxToken(3)), (2, TxToken(4))] {
            let mut logs = Box::new(TxLogs::new());
            registry.register(serial, ctl(token.0, serial), &mut *logs);
            registry.park_orphan(serial, token, logs);
        }
        assert_eq!(registry.orphan_count(), 2);
        assert!(registry.recover(&heap, TxToken(3), u64::MAX, &mut || None, &mut || ()));
        assert_eq!(registry.orphan_count(), 1, "other stripe's orphan untouched");
        assert!(registry.ctl_of(TxToken(4)).is_some());
        assert!(registry.recover(&heap, TxToken(4), u64::MAX, &mut || None, &mut || ()));
        assert_eq!(registry.orphan_count(), 0);
    }
}
