//! Registry of in-flight transactions, for GC integration.
//!
//! The paper's collector understands transaction logs: undo-log old
//! values are roots (abort may write them back into the heap), and log
//! entries for dead objects are trimmed. To give the collector access to
//! logs that live on mutator stacks, every active transaction registers
//! a pointer to its [`TxLogs`] here, and unregisters on completion.
//!
//! # Stop-the-world contract
//!
//! The registry dereferences those raw pointers only from
//! [`GcParticipant`] callbacks, which [`omt_heap::Heap::collect`]
//! documents may run only while all mutators are paused. Outside a
//! collection the pointers are never touched.

use std::collections::HashMap;
use std::sync::atomic::Ordering;

use parking_lot::Mutex;

use omt_heap::{GcParticipant, ObjRef};

use crate::logs::TxLogs;

/// A registered pointer to a transaction's logs.
///
/// SAFETY invariant: the pointee is a `Box<TxLogs>` owned by a live
/// `Transaction` that unregisters before the box is dropped; it is only
/// dereferenced under the stop-the-world contract above.
struct LogsPtr(*mut TxLogs);

// SAFETY: see the struct invariant; access is serialized by the GC's
// stop-the-world contract plus the registry mutex.
unsafe impl Send for LogsPtr {}

/// Registry of all active transactions of one [`crate::Stm`].
#[derive(Default)]
pub struct TxRegistry {
    active: Mutex<HashMap<u64, LogsPtr>>,
    stats: std::sync::Arc<crate::stats::StmStats>,
}

impl TxRegistry {
    pub(crate) fn new(stats: std::sync::Arc<crate::stats::StmStats>) -> TxRegistry {
        TxRegistry { active: Mutex::new(HashMap::new()), stats }
    }

    pub(crate) fn register(&self, serial: u64, logs: *mut TxLogs) {
        self.active.lock().insert(serial, LogsPtr(logs));
    }

    pub(crate) fn unregister(&self, serial: u64) {
        self.active.lock().remove(&serial);
    }

    /// Number of registered (active) transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Total byte footprint of all registered logs.
    ///
    /// Only meaningful while mutators are paused (same contract as GC).
    pub fn total_log_bytes(&self) -> usize {
        let active = self.active.lock();
        // SAFETY: stop-the-world contract (see module docs).
        active.values().map(|p| unsafe { &*p.0 }.byte_size()).sum()
    }

    /// Total `(read, update, undo)` entry counts across registered logs.
    ///
    /// Only meaningful while mutators are paused (same contract as GC).
    pub fn total_log_entries(&self) -> (usize, usize, usize) {
        let active = self.active.lock();
        let mut totals = (0, 0, 0);
        for p in active.values() {
            // SAFETY: stop-the-world contract (see module docs).
            let (r, u, n) = unsafe { &*p.0 }.lens();
            totals.0 += r;
            totals.1 += u;
            totals.2 += n;
        }
        totals
    }
}

impl GcParticipant for TxRegistry {
    fn trace_roots(&self, mark: &mut dyn FnMut(ObjRef)) {
        let active = self.active.lock();
        for p in active.values() {
            // SAFETY: stop-the-world contract (see module docs).
            unsafe { &*p.0 }.trace_rollback_roots(mark);
        }
    }

    fn after_sweep(&self, is_live: &dyn Fn(ObjRef) -> bool) {
        let active = self.active.lock();
        let mut trimmed = 0u64;
        for p in active.values() {
            // SAFETY: stop-the-world contract (see module docs); the
            // mutable access is exclusive because mutators are paused.
            trimmed += unsafe { &mut *p.0 }.trim(is_live) as u64;
        }
        self.stats.gc_trimmed_entries.fetch_add(trimmed, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for TxRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxRegistry").field("active", &self.active_count()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_unregister() {
        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        registry.register(1, &mut *logs);
        assert_eq!(registry.active_count(), 1);
        registry.unregister(1);
        assert_eq!(registry.active_count(), 0);
    }

    #[test]
    fn log_footprint_visible_through_registry() {
        let heap = omt_heap::Heap::new();
        let class = heap.define_class(omt_heap::ClassDesc::with_var_fields("C", &["v"]));
        let obj = heap.alloc(class).unwrap();

        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        logs.read.push(crate::logs::ReadEntry { obj, observed: 0 });
        registry.register(7, &mut *logs);
        let (r, u, n) = registry.total_log_entries();
        assert_eq!((r, u, n), (1, 0, 0));
        assert!(registry.total_log_bytes() > 0);
        registry.unregister(7);
    }
}
