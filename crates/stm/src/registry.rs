//! Registry of in-flight transactions, for GC integration, contention
//! management, and orphan recovery.
//!
//! The paper's collector understands transaction logs: undo-log old
//! values are roots (abort may write them back into the heap), and log
//! entries for dead objects are trimmed. To give the collector access to
//! logs that live on mutator stacks, every active transaction registers
//! a pointer to its [`TxLogs`] here, and unregisters on completion.
//!
//! Two further indexes serve the robustness layer:
//!
//! - a token → [`TxCtl`] map lets a transaction that loses an
//!   `OpenForUpdate` race inspect the *owner's* priority and doom or
//!   wait on it (priority contention management);
//! - an **orphan pool** holds the undo logs of transactions whose
//!   thread "died" (a `Kill` failpoint) while owning objects. Any
//!   transaction that later stumbles on an orphaned owner calls
//!   [`TxRegistry::recover`], which replays the orphan's undo log and
//!   releases its ownership — exactly what the victim's own rollback
//!   would have done.
//!
//! # Stop-the-world contract
//!
//! The registry dereferences the raw [`TxLogs`] pointers only from
//! [`GcParticipant`] callbacks, which [`omt_heap::Heap::collect`]
//! documents may run only while all mutators are paused. Outside a
//! collection the pointers are never touched. (Orphan logs are owned
//! `Box`es, not raw pointers, and are safe to touch any time under the
//! registry mutex.)

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use omt_util::sync::Mutex;

use omt_heap::{GcParticipant, Heap, ObjRef};

use crate::cm::TxCtl;
use crate::logs::TxLogs;
use crate::word::{version_bits, TxToken};

/// A registered pointer to a transaction's logs.
///
/// SAFETY invariant: the pointee is a `Box<TxLogs>` owned by a live
/// `Transaction` that unregisters before the box is dropped; it is only
/// dereferenced under the stop-the-world contract above.
struct LogsPtr(*mut TxLogs);

// SAFETY: see the struct invariant; access is serialized by the GC's
// stop-the-world contract plus the registry mutex.
unsafe impl Send for LogsPtr {}

/// Registry of all active transactions of one [`crate::Stm`].
#[derive(Default)]
pub struct TxRegistry {
    active: Mutex<HashMap<u64, LogsPtr>>,
    /// Control blocks of in-flight transactions, keyed by token. An
    /// entry outlives its `active` row for killed transactions: it
    /// stays (with `killed` set) until the orphan is recovered, so
    /// contenders can tell "owner died" from "owner released".
    ctls: Mutex<HashMap<TxToken, Arc<TxCtl>>>,
    /// Undo logs of killed transactions, awaiting recovery.
    orphans: Mutex<HashMap<TxToken, Box<TxLogs>>>,
    stats: std::sync::Arc<crate::stats::StmStats>,
}

impl TxRegistry {
    pub(crate) fn new(stats: std::sync::Arc<crate::stats::StmStats>) -> TxRegistry {
        TxRegistry {
            active: Mutex::new(HashMap::new()),
            ctls: Mutex::new(HashMap::new()),
            orphans: Mutex::new(HashMap::new()),
            stats,
        }
    }

    pub(crate) fn register(&self, serial: u64, ctl: Arc<TxCtl>, logs: *mut TxLogs) {
        self.active.lock().insert(serial, LogsPtr(logs));
        self.ctls.lock().insert(ctl.token, ctl);
    }

    pub(crate) fn unregister(&self, serial: u64, token: TxToken) {
        self.active.lock().remove(&serial);
        self.ctls.lock().remove(&token);
    }

    /// Control block of the in-flight (or killed-but-unrecovered)
    /// transaction holding `token`, if any.
    pub(crate) fn ctl_of(&self, token: TxToken) -> Option<Arc<TxCtl>> {
        self.ctls.lock().get(&token).cloned()
    }

    /// Parks a killed transaction's logs for later recovery. The
    /// serial row is dropped (the thread is gone; there is no stack
    /// slot to trace) but the control block stays until recovery so
    /// contenders can detect the death.
    pub(crate) fn park_orphan(&self, serial: u64, token: TxToken, logs: Box<TxLogs>) {
        self.active.lock().remove(&serial);
        self.orphans.lock().insert(token, logs);
    }

    /// Recovers the orphaned transaction holding `token`: replays its
    /// undo log (restoring every field it had updated in place) and
    /// releases its ownership records at their original versions —
    /// exactly the rollback its own thread would have performed.
    ///
    /// Idempotent and race-free: the first caller takes the logs out of
    /// the pool; concurrent callers find nothing and return `false`.
    pub(crate) fn recover(&self, heap: &Heap, token: TxToken) -> bool {
        let Some(logs) = self.orphans.lock().remove(&token) else {
            return false;
        };
        for entry in logs.undo.iter().rev() {
            heap.field_atomic(entry.obj, entry.field as usize)
                .store(entry.old_bits, Ordering::Relaxed);
        }
        for entry in &logs.update {
            if entry.dead {
                continue;
            }
            heap.header_atomic(entry.obj)
                .store(version_bits(entry.original_version), Ordering::Release);
        }
        // Only now does the token disappear: contenders that raced with
        // us kept seeing `killed` rather than a stale "still running".
        self.ctls.lock().remove(&token);
        self.stats.orphans_recovered.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of registered (active) transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Number of killed transactions awaiting recovery.
    pub fn orphan_count(&self) -> usize {
        self.orphans.lock().len()
    }

    /// Total byte footprint of all registered logs (including orphans).
    ///
    /// Only meaningful while mutators are paused (same contract as GC).
    pub fn total_log_bytes(&self) -> usize {
        let active = self.active.lock();
        // SAFETY: stop-the-world contract (see module docs).
        let live: usize = active.values().map(|p| unsafe { &*p.0 }.byte_size()).sum();
        live + self.orphans.lock().values().map(|l| l.byte_size()).sum::<usize>()
    }

    /// Total `(read, update, undo)` entry counts across registered logs
    /// (including orphans).
    ///
    /// Only meaningful while mutators are paused (same contract as GC).
    pub fn total_log_entries(&self) -> (usize, usize, usize) {
        let active = self.active.lock();
        let mut totals = (0, 0, 0);
        for p in active.values() {
            // SAFETY: stop-the-world contract (see module docs).
            let (r, u, n) = unsafe { &*p.0 }.lens();
            totals.0 += r;
            totals.1 += u;
            totals.2 += n;
        }
        for logs in self.orphans.lock().values() {
            let (r, u, n) = logs.lens();
            totals.0 += r;
            totals.1 += u;
            totals.2 += n;
        }
        totals
    }
}

impl GcParticipant for TxRegistry {
    fn trace_roots(&self, mark: &mut dyn FnMut(ObjRef)) {
        let active = self.active.lock();
        for p in active.values() {
            // SAFETY: stop-the-world contract (see module docs).
            unsafe { &*p.0 }.trace_rollback_roots(mark);
        }
        drop(active);
        // Orphan undo logs are rollback roots too: recovery will write
        // their old values back into the heap.
        for logs in self.orphans.lock().values() {
            logs.trace_rollback_roots(mark);
        }
    }

    fn after_sweep(&self, is_live: &dyn Fn(ObjRef) -> bool) {
        let active = self.active.lock();
        let mut trimmed = 0u64;
        for p in active.values() {
            // SAFETY: stop-the-world contract (see module docs); the
            // mutable access is exclusive because mutators are paused.
            trimmed += unsafe { &mut *p.0 }.trim(is_live) as u64;
        }
        drop(active);
        for logs in self.orphans.lock().values_mut() {
            trimmed += logs.trim(is_live) as u64;
        }
        self.stats.gc_trimmed_entries.fetch_add(trimmed, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for TxRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxRegistry")
            .field("active", &self.active_count())
            .field("orphans", &self.orphan_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(token: u32, serial: u64) -> Arc<TxCtl> {
        Arc::new(TxCtl::new(TxToken(token), serial, 0))
    }

    #[test]
    fn register_and_unregister() {
        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        registry.register(1, ctl(9, 1), &mut *logs);
        assert_eq!(registry.active_count(), 1);
        assert!(registry.ctl_of(TxToken(9)).is_some());
        assert!(registry.ctl_of(TxToken(8)).is_none());
        registry.unregister(1, TxToken(9));
        assert_eq!(registry.active_count(), 0);
        assert!(registry.ctl_of(TxToken(9)).is_none());
    }

    #[test]
    fn log_footprint_visible_through_registry() {
        let heap = omt_heap::Heap::new();
        let class = heap.define_class(omt_heap::ClassDesc::with_var_fields("C", &["v"]));
        let obj = heap.alloc(class).unwrap();

        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        logs.read.push(crate::logs::ReadEntry { obj, observed: 0 });
        registry.register(7, ctl(1, 7), &mut *logs);
        let (r, u, n) = registry.total_log_entries();
        assert_eq!((r, u, n), (1, 0, 0));
        assert!(registry.total_log_bytes() > 0);
        registry.unregister(7, TxToken(1));
    }

    #[test]
    fn orphan_recovery_restores_and_releases() {
        use crate::logs::{UndoEntry, UpdateEntry};
        use omt_heap::Word;

        let heap = omt_heap::Heap::new();
        let class = heap.define_class(omt_heap::ClassDesc::with_var_fields("C", &["v"]));
        let obj = heap.alloc(class).unwrap();
        heap.store(obj, 0, Word::from_scalar(41));
        let old_bits = heap.field_atomic(obj, 0).load(Ordering::Relaxed);

        // Simulate a killed transaction: field overwritten in place,
        // header left owned.
        heap.store(obj, 0, Word::from_scalar(99));
        let token = TxToken(5);
        heap.header_atomic(obj).store(crate::word::owned_bits(token, 0), Ordering::Release);

        let registry = TxRegistry::new(Default::default());
        let mut logs = Box::new(TxLogs::new());
        logs.undo.push(UndoEntry { obj, field: 0, old_bits });
        logs.update.push(UpdateEntry { obj, original_version: 3, dead: false });
        registry.register(1, ctl(5, 1), &mut *logs);
        registry.park_orphan(1, token, logs);
        assert_eq!(registry.orphan_count(), 1);
        assert!(registry.ctl_of(token).is_some(), "ctl survives until recovery");

        assert!(registry.recover(&heap, token));
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(41), "undo restored the field");
        assert_eq!(
            heap.header_atomic(obj).load(Ordering::Acquire),
            version_bits(3),
            "ownership released at the original version"
        );
        assert_eq!(registry.orphan_count(), 0);
        assert!(registry.ctl_of(token).is_none());
        assert!(!registry.recover(&heap, token), "second recovery is a no-op");
    }
}
